//! Vendored, offline facade over the `criterion` API surface this
//! workspace's benches use.
//!
//! Timing is a simple adaptive loop (run the closure until ~200 ms or
//! 10 000 iterations, whichever comes first) reporting the mean wall
//! time per iteration. No statistics, plots, or baselines — just enough
//! to keep `cargo bench` working without registry access.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry / runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group (grouping is cosmetic here).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint — accepted and ignored (the shim is adaptive).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iterations > 0 {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iterations);
        println!("{name:<50} {per_iter:>12} ns/iter ({} iters)", b.iterations);
    } else {
        println!("{name:<50} (no measurement)");
    }
}

/// Measures one closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < budget && iterations < 10_000 {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
