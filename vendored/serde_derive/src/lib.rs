//! Vendored `#[derive(Serialize, Deserialize)]` for the offline serde
//! subset.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input `TokenStream` is walked by hand and the generated impl is built
//! as a string, then re-parsed. Supports exactly the shapes this
//! workspace derives on:
//!
//! * structs with named fields (honoring `#[serde(default)]`),
//! * enums whose variants are all unit variants (serialized as the
//!   variant-name string),
//! * tuple structs (newtypes pass the inner value through; wider tuples
//!   become sequences).
//!
//! Generics and data-carrying enum variants are rejected with a
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Shape {
    Named {
        name: String,
        /// `(field_name, has_serde_default)`
        fields: Vec<(String, bool)>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    UnitEnum {
        name: String,
        variants: Vec<String>,
    },
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape).parse().expect("generated impl must tokenize"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error must tokenize"),
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility ahead of `struct`/`enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                // `pub` (possibly `pub(crate)` — the paren group is a
                // separate token consumed by the loop's fallthrough).
            }
            Some(_) => {}
            None => return Err("serde derive: unexpected end of input".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };
    match tokens.next() {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if kind == "enum" {
                parse_unit_enum(name, body.stream())
            } else {
                parse_named_struct(name, body.stream())
            }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple {
                name,
                arity: count_top_level_fields(body.stream()),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "serde derive: generic type `{name}` is not supported by the vendored derive"
        )),
        other => Err(format!(
            "serde derive: unsupported item body for `{name}`: {other:?}"
        )),
    }
}

fn parse_named_struct(name: String, body: TokenStream) -> Result<Shape, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Field attributes: look for `#[serde(default)]`.
        let mut has_default = false;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(attr)) = tokens.next() {
                        if attr_is_serde_default(&attr.stream()) {
                            has_default = true;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    // Swallow a `(crate)`-style restriction if present.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break; // trailing comma / end of body
        };
        fields.push((field.to_string(), has_default));
        // Skip `: Type` up to the next top-level comma. Parens/brackets
        // arrive as single Group tokens; only `<`/`>` need depth tracking.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Ok(Shape::Named { name, fields })
}

fn parse_unit_enum(name: String, body: TokenStream) -> Result<Shape, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // attribute body
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                match tokens.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        tokens.next();
                    }
                    Some(_) => {
                        return Err(format!(
                            "serde derive: enum `{name}` has a data-carrying variant \
                             (unsupported by the vendored derive)"
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "serde derive: unexpected token in enum `{name}`: {other:?}"
                ))
            }
        }
    }
    Ok(Shape::UnitEnum { name, variants })
}

/// True for the token stream of a `[serde(default)]` attribute group.
fn attr_is_serde_default(attr: &TokenStream) -> bool {
    let mut it = attr.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut entries = String::new();
            for (field, _) in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from({field:?}), \
                     ::serde::Serialize::to_value(&self.{field})),"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Seq(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for (field, has_default) in fields {
                let missing = if *has_default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"missing field `{field}` in `{name}`\"))"
                    )
                };
                inits.push_str(&format!(
                    "{field}: match ::serde::value::lookup(__map, {field:?}) {{\n\
                         ::std::option::Option::Some(__x) => \
                             ::serde::Deserialize::from_value(__x)?,\n\
                         ::std::option::Option::None => {missing},\n\
                     }},"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         let __map = __v.as_map().ok_or_else(|| \
                             ::serde::de::Error::custom(\
                                 \"expected map for `{name}`\"))?;\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::value::Value) \
                     -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                     ::std::result::Result::Ok(Self(\
                         ::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         __items.get({i}).unwrap_or(&::serde::value::Value::Null))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         let ::serde::value::Value::Seq(__items) = __v else {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::de::Error::custom(\
                                     \"expected sequence for `{name}`\"));\n\
                         }};\n\
                         ::std::result::Result::Ok(Self({items}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some({v:?}) => \
                             ::std::result::Result::Ok(Self::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::de::Error::custom(::std::format!(\
                                     \"unknown `{name}` variant {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
