//! Vendored, offline ChaCha8 random generator.
//!
//! Implements the standard ChaCha block function (8 rounds) over the
//! vendored `rand` traits. Deterministic and statistically strong for
//! simulation workloads; the word stream is **not** guaranteed to match
//! upstream `rand_chacha` (the simulator never depends on specific
//! stream values, only on determinism).

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

impl ChaCha8Rng {
    /// Exports the complete generator state as `(key, counter, buf, idx)`
    /// word vectors, for checkpointing. [`ChaCha8Rng::import_state`]
    /// rebuilds a generator that continues the exact same word stream.
    #[must_use]
    pub fn export_state(&self) -> (Vec<u32>, u64, Vec<u32>, usize) {
        (self.key.to_vec(), self.counter, self.buf.to_vec(), self.idx)
    }

    /// Rebuilds a generator from [`ChaCha8Rng::export_state`] output.
    /// Returns `None` when the word vectors have the wrong lengths or the
    /// buffer index is out of range (a corrupt snapshot).
    #[must_use]
    pub fn import_state(key: &[u32], counter: u64, buf: &[u32], idx: usize) -> Option<Self> {
        if key.len() != 8 || buf.len() != 16 || idx > 16 {
            return None;
        }
        let mut rng = ChaCha8Rng {
            key: [0u32; 8],
            counter,
            buf: [0u32; 16],
            idx,
        };
        rng.key.copy_from_slice(key);
        rng.buf.copy_from_slice(buf);
        Some(rng)
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut w = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = w[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0u32; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated");
    }

    #[test]
    fn exported_state_resumes_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..37 {
            a.next_u32(); // land mid-buffer
        }
        let (key, counter, buf, idx) = a.export_state();
        let mut b = ChaCha8Rng::import_state(&key, counter, &buf, idx).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn import_rejects_malformed_state() {
        assert!(ChaCha8Rng::import_state(&[0; 7], 0, &[0; 16], 0).is_none());
        assert!(ChaCha8Rng::import_state(&[0; 8], 0, &[0; 15], 0).is_none());
        assert!(ChaCha8Rng::import_state(&[0; 8], 0, &[0; 16], 17).is_none());
    }

    #[test]
    fn bits_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 ones; allow 3 %.
        assert!((31_000..33_000).contains(&ones), "ones = {ones}");
    }
}
