//! Vendored, offline shim for the subset of the `proptest` API this
//! workspace uses.
//!
//! The `proptest!` macro expands each property into a plain `#[test]`
//! that samples its strategies from a deterministic per-case PRNG and
//! runs the body for `ProptestConfig::cases` iterations. There is **no
//! shrinking**: a failing case reports its case index (cases are
//! deterministic, so an index is reproducible).
//!
//! Strategy support matches what the test suites need: integer and
//! float ranges, tuples of strategies (up to 4), `collection::vec`,
//! `sample::select`, `bool::ANY`, and `any::<T>()` for primitives.

/// Deterministic test-case PRNG and failure plumbing.
pub mod test_runner {
    /// A property-assertion failure (returned, not panicked, so the
    /// harness can report the case index).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 — deterministic per-case randomness.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` (stable across runs).
        #[must_use]
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0x05EE_D0FC_A3B5 ^ ((u64::from(case) << 32) | u64::from(case)),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Run-count configuration.
pub mod config {
    /// Mirrors `proptest::prelude::ProptestConfig` for the fields used
    /// here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Types that can draw a value from a [`TestRng`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (f64::from(self.start) + unit * f64::from(self.end - self.start)) as f32
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// A strategy over `T`'s full domain.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `collection::vec` support.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element` samples with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `sample::select` support.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// A strategy choosing uniformly among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_u64() as usize % self.0.len()].clone()
        }
    }
}

/// `bool::ANY` support.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors the `prop::` module alias of upstream's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::config::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        ::std::panic!("proptest case {} failed: {}", __case, e);
                    }
                }
            }
        )*
    };
}

/// Skips the current case when its inputs don't meet a precondition.
/// (The shim treats a rejection as a vacuous pass for that case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            ::std::stringify!($left),
            ::std::stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            ::std::stringify!($left),
            ::std::stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}
