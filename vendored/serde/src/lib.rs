//! Vendored, offline subset of the `serde` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal name-compatible implementation of the
//! pieces it actually uses. Serialization is value-based: [`Serialize`]
//! lowers a type to a [`value::Value`] tree and [`Deserialize`] rebuilds
//! it from one. The companion `serde_derive` crate generates impls for
//! the shapes this workspace contains (named-field structs, unit-variant
//! enums, and tuple structs).
//!
//! This is **not** upstream serde: there is no `Serializer`/`Deserializer`
//! visitor machinery, and only the `#[serde(default)]` field attribute is
//! honored. Formats (`serde_json`) consume the `Value` tree directly.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing intermediate representation.

    /// A serialized value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Absent / JSON `null`.
        Null,
        /// Boolean.
        Bool(bool),
        /// Non-negative integer.
        U64(u64),
        /// Negative integer.
        I64(i64),
        /// Floating point.
        F64(f64),
        /// String.
        Str(String),
        /// Ordered sequence.
        Seq(Vec<Value>),
        /// Ordered string-keyed map (insertion order preserved).
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The entries of a map value, or `None` for any other shape.
        #[must_use]
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(entries) => Some(entries),
                _ => None,
            }
        }

        /// The string payload, or `None` for any other shape.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    /// First value stored under `key` in `entries` (map-field lookup).
    #[must_use]
    pub fn lookup<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

pub mod de {
    //! Deserialization errors.

    /// A deserialization failure with a human-readable message.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl Error {
        /// An error carrying `msg`.
        pub fn custom(msg: impl std::fmt::Display) -> Self {
            Error(msg.to_string())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

use value::Value;

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape/range mismatches as errors.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    _ => {
                        return Err(de::Error::custom(format!(
                            "expected unsigned integer, got {v:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    de::Error::custom(format!(
                        "{raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::U64(*self)
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            _ => Err(de::Error::custom(format!(
                "expected unsigned integer, got {v:?}"
            ))),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        u64::from_value(v)
            .and_then(|x| usize::try_from(x).map_err(|_| de::Error::custom("usize overflow")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| de::Error::custom("integer overflow"))?,
                    _ => {
                        return Err(de::Error::custom(format!(
                            "expected integer, got {v:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    de::Error::custom(format!(
                        "{raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::I64(*self)
    }
}
impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            Value::I64(x) => Ok(x),
            Value::U64(x) => i64::try_from(x).map_err(|_| de::Error::custom("integer overflow")),
            _ => Err(de::Error::custom(format!("expected integer, got {v:?}"))),
        }
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        i64::from_value(v)
            .and_then(|x| isize::try_from(x).map_err(|_| de::Error::custom("isize overflow")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            _ => Err(de::Error::custom(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(de::Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::custom(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::custom(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let Value::Seq(items) = v else {
                    return Err(de::Error::custom(format!(
                        "expected sequence for tuple, got {v:?}"
                    )));
                };
                Ok(($($name::from_value(
                    items.get($idx).unwrap_or(&Value::Null)
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for &'static str {
    /// Rebuilds a `&'static str` by leaking the parsed string. Only
    /// static-lifetime string fields (benchmark names) hit this path,
    /// and only if such a struct is ever deserialized — an explicit,
    /// bounded trade-off so derive on those structs keeps working
    /// without upstream serde's borrowed-lifetime machinery.
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| de::Error::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    /// Identity: a value tree is already in serialized form. Lets raw
    /// `Value`s (e.g. snapshot state) pass through `serde_json` directly.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
