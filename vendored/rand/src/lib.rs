//! Vendored, offline subset of the `rand` API.
//!
//! Provides the `RngCore`/`SeedableRng`/`Rng` trait surface the workload
//! generators use. The streams produced by vendored generators are
//! deterministic but are **not** bit-identical to upstream `rand`; the
//! simulator only relies on determinism and uniformity, never on
//! specific stream values.

/// Core random-word source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator (deterministic, well-mixed for adjacent states).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// One uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring upstream's prelude layout.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}
