//! Vendored, offline **sequential** fallback for the `rayon` API surface
//! this workspace uses (`par_iter`/`into_par_iter`).
//!
//! The build environment has no registry access, so experiment sweeps run
//! on one core here: `into_par_iter()`/`par_iter()` simply return the
//! standard sequential iterators, which expose the same adapter methods
//! (`map`, `collect`, …) the callers rely on. Results are identical to a
//! parallel run — sweeps are embarrassingly parallel and order is
//! restored by the callers — only wall-clock time differs.

pub mod prelude {
    //! Drop-in traits mirroring `rayon::prelude`.

    /// `into_par_iter()` for owned collections (sequential fallback).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the standard sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` for borrowed collections (sequential fallback).
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Yielded item type.
        type Item;

        /// Returns the standard sequential iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;
        type Item = <&'data I as IntoIterator>::Item;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}
