//! Vendored, offline **multi-threaded** implementation of the `rayon`
//! API surface this workspace uses (`par_iter`/`into_par_iter`, `map`,
//! `collect`, `ThreadPoolBuilder::install`).
//!
//! The build environment has no registry access, so this crate stands in
//! for the real rayon. Unlike the original sequential stub it actually
//! fans work out over `std::thread` workers:
//!
//! * Items are frozen into an indexed vector and workers claim the next
//!   unclaimed index through a shared atomic cursor — dynamic load
//!   balancing (a degenerate work-stealing scheme whose only deque is
//!   the shared injector), so a slow item never idles the other workers.
//! * Results land in per-index slots, so the collected output order is
//!   **always the input order**, independent of the number of workers or
//!   the interleaving of their claims. Callers get determinism for free.
//! * A worker panic is caught, parked in the item's slot, and re-raised
//!   on the calling thread (first panicking index wins) once every other
//!   item has finished — one bad item cannot tear down its siblings
//!   mid-flight.
//!
//! Thread count: `ThreadPoolBuilder::new().num_threads(n)` >
//! `RAYON_NUM_THREADS` (environment) > `available_parallelism()`.

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] for the
    /// duration of the installed closure (affects this thread only).
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parses a `RAYON_NUM_THREADS`-style value: a positive integer wins,
/// anything else (empty, `0`, garbage) is ignored.
fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The number of worker threads a parallel operation started *now* would
/// use: a [`ThreadPool::install`] override, else `RAYON_NUM_THREADS`,
/// else the machine's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_thread_override)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring rayon's builder API; this vendored pool cannot
/// actually fail to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("vendored rayon thread pool failed to build (unreachable)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "decide automatically" (the
    /// environment override or available parallelism), matching rayon.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here; the `Result` mirrors rayon.
    ///
    /// # Errors
    /// Never fails in this vendored implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle carrying a thread-count choice. Workers are spawned per
/// operation (scoped threads), not parked persistently — adequate for
/// coarse-grained simulation jobs where spawn cost is noise.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count parallel operations inside [`install`] will use.
    ///
    /// [`install`]: ThreadPool::install
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }

    /// Runs `op` with this pool's thread count installed: parallel
    /// iterators invoked inside (from this thread) use it instead of the
    /// environment/default choice.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let n = self.current_num_threads();
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(n)));
        // Restore on unwind too, so a panicking op cannot leak the
        // override into unrelated later work on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Applies `f` to every item on the current pool, returning results in
/// input order. Worker panics are re-raised on the caller (first index
/// wins) after all other items have completed.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let workers = current_num_threads().min(len.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..len).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("each index is claimed exactly once");
                let out = catch_unwind(AssertUnwindSafe(|| f(item)));
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let out = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every slot is filled before the scope ends");
            match out {
                Ok(r) => r,
                Err(payload) => resume_unwind(payload),
            }
        })
        .collect()
}

pub mod iter {
    //! Parallel-iterator types: [`ParIter`] (the source), [`Map`] (the
    //! only adapter this workspace needs), and the conversion traits.

    use super::par_apply;

    /// A frozen, indexed parallel iterator over owned items.
    #[derive(Debug)]
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// The `map` adapter over a parallel iterator.
    #[derive(Debug)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    /// Operations on a parallel iterator. `run` materializes the items
    /// in input order, executing adapter stages on the current pool.
    pub trait ParallelIterator: Sized + Send {
        /// The yielded item type.
        type Item: Send;

        /// Executes the pipeline and returns items in input order
        /// (implementation detail of this vendored crate; real rayon
        /// drives consumers instead).
        fn run(self) -> Vec<Self::Item>;

        /// Applies `f` to every item in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Collects into `C`, preserving input order regardless of the
        /// worker count or scheduling.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;

        fn run(self) -> Vec<T> {
            self.items
        }
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync + Send,
    {
        type Item = R;

        fn run(self) -> Vec<R> {
            par_apply(self.base.run(), self.f)
        }
    }

    /// Collections buildable from an ordered parallel iterator.
    pub trait FromParallelIterator<T: Send>: Sized {
        /// Builds `Self` from the iterator's ordered items.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
            iter.run()
        }
    }

    /// Collecting `Result` items runs **every** item to completion (they
    /// may have side effects worth keeping), then yields `Ok(all)` or
    /// the first error in input order — deterministic regardless of
    /// which worker failed first in wall-clock terms.
    impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_par_iter<I: ParallelIterator<Item = Result<T, E>>>(iter: I) -> Self {
            iter.run().into_iter().collect()
        }
    }

    /// `into_par_iter()` for owned collections.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The yielded item type.
        type Item: Send;

        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = ParIter<T>;
        type Item = T;

        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T: Send> IntoParallelIterator for ParIter<T> {
        type Iter = Self;
        type Item = T;

        fn into_par_iter(self) -> Self {
            self
        }
    }

    /// `par_iter()` for borrowed collections.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The yielded item type (a shared reference).
        type Item: Send + 'data;

        /// Borrows into a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<&'data T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<&'data T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            self.as_slice().par_iter()
        }
    }
}

pub mod prelude {
    //! Drop-in traits mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_thread_override, ThreadPool, ThreadPoolBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    /// The determinism contract of the sweep supervisor: the collected
    /// order is the input order for every thread count, even when item
    /// runtimes are adversarially skewed so claims interleave
    /// differently on every run.
    #[test]
    fn result_order_is_independent_of_thread_count() {
        let input: Vec<u64> = (0..97).collect();
        let run = |threads: usize| {
            pool(threads).install(|| {
                input
                    .clone()
                    .into_par_iter()
                    .map(|i| {
                        // Early items sleep longest: with >1 worker the
                        // completion order inverts the input order.
                        std::thread::sleep(Duration::from_micros((97 - i) * 20));
                        i * 1_000_003
                    })
                    .collect::<Vec<u64>>()
            })
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(5));
        assert_eq!(sequential, run(16));
        assert_eq!(
            sequential,
            (0..97).map(|i| i * 1_000_003).collect::<Vec<u64>>()
        );
    }

    /// Work actually fans out over multiple OS threads.
    #[test]
    fn work_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        pool(4).install(|| {
            (0..64u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(Duration::from_millis(2));
                })
                .collect::<Vec<_>>()
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "4-thread pool used a single thread"
        );
    }

    /// A panicking item must not prevent its siblings from completing,
    /// and the panic resurfaces on the caller.
    #[test]
    fn panic_is_isolated_then_propagated() {
        let completed = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool(3).install(|| {
                (0..24u32)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|i| {
                        if i == 5 {
                            panic!("injected");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                    .collect::<Vec<u32>>()
            })
        }));
        assert!(outcome.is_err(), "the item panic must propagate");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            23,
            "all sibling items still ran to completion"
        );
    }

    /// `collect::<Result<…>>` returns the first error in *input* order,
    /// not wall-clock order, and still runs every item.
    #[test]
    fn result_collect_reports_first_error_in_input_order() {
        let ran = AtomicUsize::new(0);
        let out: Result<Vec<u32>, String> = pool(4).install(|| {
            (0..32u32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 30 {
                        // Fails instantly …
                        return Err(format!("late-index error {i}"));
                    }
                    if i == 7 {
                        // … while the earlier-index failure takes longer.
                        std::thread::sleep(Duration::from_millis(20));
                        return Err(format!("early-index error {i}"));
                    }
                    Ok(i)
                })
                .collect()
        });
        assert_eq!(out.unwrap_err(), "early-index error 7");
        assert_eq!(ran.load(Ordering::Relaxed), 32, "every item still ran");
    }

    /// `par_iter` borrows; results keep slice order.
    #[test]
    fn par_iter_borrows_in_order() {
        let words = ["alpha", "beta", "gamma", "delta"];
        let out: Vec<usize> = pool(3).install(|| words.par_iter().map(|w| w.len()).collect());
        assert_eq!(out, vec![5, 4, 5, 5]);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 12 "), Some(12));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("many"), None);
    }

    /// `install` restores the previous override even when the closure
    /// panics.
    #[test]
    fn install_restores_override_on_unwind() {
        let p1 = pool(1);
        p1.install(|| {
            assert_eq!(super::current_num_threads(), 1);
            let _ = std::panic::catch_unwind(|| pool(7).install(|| panic!("boom")));
            assert_eq!(
                super::current_num_threads(),
                1,
                "unwound install leaked its override"
            );
        });
    }

    #[test]
    fn empty_input_collects_empty() {
        let out: Vec<u32> = pool(8).install(|| {
            Vec::<u32>::new()
                .into_par_iter()
                .map(|x| x + 1)
                .collect::<Vec<u32>>()
        });
        assert!(out.is_empty());
    }
}
