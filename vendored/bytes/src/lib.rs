//! Vendored, offline subset of the `bytes` crate: just the little-endian
//! cursor reads ([`Buf`]), builder writes ([`BufMut`]/[`BytesMut`]), and
//! the frozen [`Bytes`] handle that the trace file format uses.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append-only write sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends another buffer's contents.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] handle.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}
