//! Vendored, offline JSON serializer/deserializer over the workspace's
//! value-based serde subset.
//!
//! Supports exactly what the simulator needs: `to_string`,
//! `to_string_pretty`, and `from_str` over the [`serde::value::Value`]
//! tree. Floats print via Rust's shortest-round-trip `Display`, so
//! JSON round trips preserve `f64` bit patterns (the config round-trip
//! test depends on this).

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses `s` as JSON and rebuilds a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            // Python-style extension: bare `Infinity` / `-Infinity` / `NaN`
            // tokens, matched by the parser below. Snapshot state contains
            // unsampled `Running` stats whose min/max are infinite.
            if !x.is_finite() {
                out.push_str(if x.is_nan() {
                    "NaN"
                } else if *x > 0.0 {
                    "Infinity"
                } else {
                    "-Infinity"
                });
                return Ok(());
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep the value a JSON number that parses back as a float.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })?;
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)
            })?;
        }
    }
    Ok(())
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'I') => self.parse_keyword("Infinity", Value::F64(f64::INFINITY)),
            Some(b'N') => self.parse_keyword("NaN", Value::F64(f64::NAN)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.peek() == Some(b'I') {
                return self.parse_keyword("Infinity", Value::F64(f64::NEG_INFINITY));
            }
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of unescaped bytes in one
                    // shot. Validating only this chunk keeps the parser
                    // linear; `"` and `\` are ASCII, so stopping on them
                    // never splits a multi-byte scalar.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in JSON array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in JSON object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_round_trip_escapes_and_unicode() {
        for s in [
            "",
            "plain ascii",
            "quote \" backslash \\ slash /",
            "newline \n tab \t return \r",
            "control \u{1} \u{1f}",
            "unicode é λ 次 🚀 mixed with ascii",
        ] {
            let mut json = String::new();
            write_string(&mut json, s);
            let parsed: Value = from_str(&json).expect("parse back");
            assert_eq!(parsed, Value::Str(s.to_string()), "round-trip of {s:?}");
        }
    }

    #[test]
    fn string_parsing_is_linear_in_input_size() {
        // A single long string member exercises the bulk-copy path; a
        // quadratic parser (re-validating the whole tail per character)
        // turns this megabyte into minutes.
        let long = "x".repeat(1 << 20);
        let json = format!("{{\"k\": \"{long}\"}}");
        let start = std::time::Instant::now();
        let parsed: Value = from_str(&json).expect("parse");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string parsing took {:?} for 1 MiB",
            start.elapsed()
        );
        let map = parsed.as_map().expect("object");
        assert_eq!(map[0].1, Value::Str(long));
    }

    #[test]
    fn bad_strings_are_rejected() {
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("\"bad escape \\q\"").is_err());
        assert!(from_str::<Value>("\"truncated \\u00\"").is_err());
    }
}
