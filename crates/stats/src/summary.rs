//! Aggregation helpers used when folding per-workload results into the
//! paper's summary numbers.
//!
//! The paper reports performance as "the geometric mean of the IPC values of
//! different workloads running on the eight processor cores", normalized to
//! the BASE scheme (§5.1) — [`geomean`] and [`normalize_to`] implement
//! exactly that pipeline.

/// Geometric mean of strictly positive values; `None` if the slice is empty
/// or contains a non-positive value.
#[must_use]
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` if empty.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Normalizes each value against the matching baseline value
/// (`value / baseline`), the transformation behind every "normalized to
/// BASE" figure.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn normalize_to(values: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(
        values.len(),
        baseline.len(),
        "normalize_to: length mismatch"
    );
    values.iter().zip(baseline).map(|(v, b)| v / b).collect()
}

/// Percentage change from `from` to `to`: `+17.9` means 17.9 % higher.
#[must_use]
pub fn percent_change(from: f64, to: f64) -> f64 {
    (to - from) / from * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known_value() {
        // gm(1, 4) = 2; gm(1, 2, 4) = 2.
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 2.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_bad_input() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        assert_eq!(geomean(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn geomean_leq_mean() {
        // AM-GM inequality.
        let v = [1.0, 3.0, 9.0, 27.0];
        assert!(geomean(&v).unwrap() <= mean(&v).unwrap());
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn normalize_basics() {
        let n = normalize_to(&[2.0, 3.0], &[1.0, 2.0]);
        assert_eq!(n, vec![2.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn normalize_length_mismatch_panics() {
        let _ = normalize_to(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn percent_change_signs() {
        assert!((percent_change(1.0, 1.179) - 17.9).abs() < 1e-9);
        assert!(percent_change(2.0, 1.0) < 0.0);
    }
}
