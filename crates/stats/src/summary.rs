//! Aggregation helpers used when folding per-workload results into the
//! paper's summary numbers.
//!
//! The paper reports performance as "the geometric mean of the IPC values of
//! different workloads running on the eight processor cores", normalized to
//! the BASE scheme (§5.1) — [`geomean`] and [`normalize_to`] implement
//! exactly that pipeline.

/// Geometric mean of strictly positive values; `None` if the slice is empty
/// or contains a non-positive value.
#[must_use]
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` if empty.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Why a normalization could not be computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NormalizeError {
    /// The value and baseline slices have different lengths.
    LengthMismatch {
        /// Number of values to normalize.
        values: usize,
        /// Number of baseline values.
        baseline: usize,
    },
    /// A baseline entry is zero, NaN, or infinite — dividing by it
    /// would inject `inf`/`NaN` into a figure table.
    BadBaseline {
        /// Index of the offending baseline entry.
        index: usize,
        /// Its value.
        value: f64,
    },
}

impl core::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::LengthMismatch { values, baseline } => write!(
                f,
                "normalize_to: length mismatch ({values} values vs {baseline} baseline)"
            ),
            Self::BadBaseline { index, value } => {
                write!(f, "normalize_to: unusable baseline[{index}] = {value}")
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Normalizes each value against the matching baseline value
/// (`value / baseline`), the transformation behind every "normalized to
/// BASE" figure.
///
/// # Errors
/// Returns [`NormalizeError`] on mismatched slice lengths or when a
/// baseline entry is zero/NaN/infinite (the silent `inf`/`NaN` these
/// used to yield poisoned downstream geomeans).
pub fn normalize_to(values: &[f64], baseline: &[f64]) -> Result<Vec<f64>, NormalizeError> {
    if values.len() != baseline.len() {
        return Err(NormalizeError::LengthMismatch {
            values: values.len(),
            baseline: baseline.len(),
        });
    }
    if let Some((index, &value)) = baseline
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_finite() || **b == 0.0)
    {
        return Err(NormalizeError::BadBaseline { index, value });
    }
    Ok(values.iter().zip(baseline).map(|(v, b)| v / b).collect())
}

/// Percentage change from `from` to `to`: `+17.9` means 17.9 % higher.
#[must_use]
pub fn percent_change(from: f64, to: f64) -> f64 {
    (to - from) / from * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known_value() {
        // gm(1, 4) = 2; gm(1, 2, 4) = 2.
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 2.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_bad_input() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        assert_eq!(geomean(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn geomean_leq_mean() {
        // AM-GM inequality.
        let v = [1.0, 3.0, 9.0, 27.0];
        assert!(geomean(&v).unwrap() <= mean(&v).unwrap());
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn normalize_basics() {
        let n = normalize_to(&[2.0, 3.0], &[1.0, 2.0]).unwrap();
        assert_eq!(n, vec![2.0, 1.5]);
    }

    #[test]
    fn normalize_length_mismatch_is_typed() {
        assert_eq!(
            normalize_to(&[1.0], &[1.0, 2.0]),
            Err(NormalizeError::LengthMismatch {
                values: 1,
                baseline: 2
            })
        );
    }

    #[test]
    fn normalize_rejects_zero_and_nan_baselines() {
        assert_eq!(
            normalize_to(&[1.0, 2.0], &[1.0, 0.0]),
            Err(NormalizeError::BadBaseline {
                index: 1,
                value: 0.0
            })
        );
        assert!(matches!(
            normalize_to(&[1.0], &[f64::NAN]),
            Err(NormalizeError::BadBaseline { index: 0, .. })
        ));
        assert!(matches!(
            normalize_to(&[1.0], &[f64::INFINITY]),
            Err(NormalizeError::BadBaseline { index: 0, .. })
        ));
        let msg = normalize_to(&[1.0], &[]).unwrap_err().to_string();
        assert!(msg.contains("length mismatch"));
    }

    #[test]
    fn percent_change_signs() {
        assert!((percent_change(1.0, 1.179) - 17.9).abs() < 1e-9);
        assert!(percent_change(2.0, 1.0) < 0.0);
    }
}
