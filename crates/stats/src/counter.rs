//! Event counters and derived ratios.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// A monotonically increasing event counter.
///
/// Wraps a `u64` with an API that makes accumulation sites explicit and
/// supports merging counters from independent components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// Records one event.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Records `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Count as `f64`, for ratio math.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Folds another counter into this one (for merging per-vault stats).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

impl AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A hits-over-total ratio (hit rates, accuracies, conflict rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    /// Numerator events.
    pub hits: Counter,
    /// Denominator events.
    pub total: Counter,
}

impl Ratio {
    /// A zeroed ratio.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one denominator event that also counts toward the numerator.
    pub fn hit(&mut self) {
        self.hits.inc();
        self.total.inc();
    }

    /// Records one denominator-only event.
    pub fn miss(&mut self) {
        self.total.inc();
    }

    /// The ratio in `[0, 1]`; `None` when no events were recorded.
    #[must_use]
    pub fn value(self) -> Option<f64> {
        (self.total.get() > 0).then(|| self.hits.as_f64() / self.total.as_f64())
    }

    /// The ratio, defaulting to 0 when empty.
    #[must_use]
    pub fn value_or_zero(self) -> f64 {
        self.value().unwrap_or(0.0)
    }

    /// Folds another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits.merge(other.hits);
        self.total.merge(other.total);
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value() {
            Some(v) => write!(f, "{:.2}% ({}/{})", v * 100.0, self.hits, self.total),
            None => write!(f, "n/a (0 events)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        c += 5;
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn counter_merge() {
        let mut a = Counter::new();
        a.add(3);
        let mut b = Counter::new();
        b.add(4);
        a.merge(b);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn empty_ratio_is_none() {
        assert_eq!(Ratio::new().value(), None);
        assert_eq!(Ratio::new().value_or_zero(), 0.0);
    }

    #[test]
    fn ratio_math() {
        let mut r = Ratio::new();
        r.hit();
        r.hit();
        r.miss();
        r.miss();
        assert_eq!(r.value(), Some(0.5));
    }

    #[test]
    fn ratio_merge() {
        let mut a = Ratio::new();
        a.hit();
        let mut b = Ratio::new();
        b.miss();
        b.miss();
        b.hit();
        a.merge(b);
        assert_eq!(a.hits.get(), 2);
        assert_eq!(a.total.get(), 4);
    }

    #[test]
    fn display_formats() {
        let mut r = Ratio::new();
        r.hit();
        r.miss();
        assert!(r.to_string().starts_with("50.00%"));
        assert!(Ratio::new().to_string().contains("n/a"));
    }
}
