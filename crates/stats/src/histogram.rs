//! Latency and occupancy histograms.

use serde::{Deserialize, Serialize};

/// A fixed-width linear histogram over `[0, bucket_width * buckets)`, with
/// an overflow bucket for larger samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` bins of `bucket_width` each.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(
            bucket_width > 0 && buckets > 0,
            "histogram needs nonzero shape"
        );
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples, `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples that exceeded the bucketed range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `i` (covering `[i*w, (i+1)*w)`).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Approximate p-th percentile (0..=100) from bucket midpoints;
    /// `None` if empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Some(i as u64 * self.bucket_width + self.bucket_width / 2);
            }
        }
        Some(self.max)
    }

    /// Folds another histogram (same shape) into this one.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A log₂-bucketed histogram: bucket *i* covers `[2^i, 2^(i+1))` (bucket 0
/// covers `{0, 1}`). Good for long-tailed latency distributions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample. The running sum saturates instead of
    /// overflowing, so pathological inputs (`u64::MAX` latencies)
    /// degrade the mean rather than aborting the run.
    pub fn record(&mut self, value: u64) {
        let idx = 64 - value.max(1).leading_zeros() as usize - 1;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in log bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Index of the highest nonempty bucket, `None` if empty.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }

    /// Folds another histogram into this one (sum saturates).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::new(10, 4);
        for v in [0, 9, 10, 35, 39, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn mean_matches_manual() {
        let mut h = Histogram::new(1, 10);
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(Histogram::new(1, 1).mean(), None);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Histogram::new(10, 100);
        for v in 0..1000u64 {
            h.record(v % 500);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        assert!(p50 <= p90);
        assert!(Histogram::new(1, 1).percentile(50.0).is_none());
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new(10, 4);
        a.record(5);
        let mut b = Histogram::new(10, 4);
        b.record(15);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(0), 1);
        assert_eq!(a.bucket(1), 1);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_shape_mismatch_panics() {
        let mut a = Histogram::new(10, 4);
        a.merge(&Histogram::new(20, 4));
    }

    #[test]
    fn log2_bucketing() {
        let mut h = Log2Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.max_bucket(), Some(10));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn log2_empty() {
        let h = Log2Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.max_bucket(), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn log2_single_sample() {
        let mut h = Log2Histogram::new();
        h.record(37);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 37);
        assert_eq!(h.mean(), Some(37.0));
        assert_eq!(h.max_bucket(), Some(5));
    }

    #[test]
    fn log2_u64_max_lands_in_top_bucket_and_saturates() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum would overflow; must saturate instead
        assert_eq!(h.bucket(63), 2);
        assert_eq!(h.max_bucket(), Some(63));
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX);
        assert!(h.mean().unwrap().is_finite());
    }

    #[test]
    fn log2_merge_empty_both_ways() {
        let mut full = Log2Histogram::new();
        full.record(8);
        full.record(9);
        let before = full.clone();
        full.merge(&Log2Histogram::new()); // nonempty ← empty
        assert_eq!(full, before);

        let mut empty = Log2Histogram::new();
        empty.merge(&before); // empty ← nonempty
        assert_eq!(empty, before);
    }

    #[test]
    fn log2_merge_saturates_sum() {
        let mut a = Log2Histogram::new();
        a.record(u64::MAX);
        let mut b = Log2Histogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 2);
    }

    proptest! {
        #[test]
        fn histogram_count_equals_bucket_sum(samples in prop::collection::vec(0u64..10_000, 0..200)) {
            let mut h = Histogram::new(64, 32);
            for &s in &samples {
                h.record(s);
            }
            let total: u64 = (0..32).map(|i| h.bucket(i)).sum::<u64>() + h.overflow();
            prop_assert_eq!(total, samples.len() as u64);
            prop_assert_eq!(h.count(), samples.len() as u64);
        }

        #[test]
        fn percentiles_are_monotone_in_p(
            samples in prop::collection::vec(0u64..2_000, 1..200)
        ) {
            let mut h = Histogram::new(16, 64);
            for &s in &samples {
                h.record(s);
            }
            let mut last = 0;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
                let v = h.percentile(p).unwrap();
                prop_assert!(v >= last, "p{p}: {v} < {last}");
                last = v;
            }
        }

        #[test]
        fn log2_bucket_contains_value(v in 0u64..u64::MAX / 2) {
            let mut h = Log2Histogram::new();
            h.record(v);
            let i = h.max_bucket().unwrap();
            let lo = if i == 0 { 0 } else { 1u64 << i };
            prop_assert!(v.max(1) >= lo);
            prop_assert!(v.max(1) < (1u128 << (i + 1)) as u64 || i == 63);
        }
    }
}
