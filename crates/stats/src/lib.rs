//! Statistics framework for the CAMPS simulator.
//!
//! Every simulated component accumulates its own counters; at the end of a
//! run they are folded into serializable summaries that the experiment
//! harness turns into the paper's tables and figures.
//!
//! * [`counter`] — event counters and hit/total ratios,
//! * [`amplification`] — RowHammer activation-amplification reports for
//!   the adversarial workload layer,
//! * [`audit`] — per-vault request-conservation ledgers for the request
//!   auditor,
//! * [`histogram`] — linear and log₂ latency histograms,
//! * [`running`] — streaming mean/variance (Welford) and min/max,
//! * [`summary`] — aggregation helpers: arithmetic/geometric means,
//!   normalization against a baseline.

#![warn(missing_docs)]

pub mod amplification;
pub mod audit;
pub mod counter;
pub mod histogram;
pub mod running;
pub mod summary;

pub use amplification::AmplificationReport;
pub use audit::{AuditLedger, VaultAudit};
pub use counter::{Counter, Ratio};
pub use histogram::{Histogram, Log2Histogram};
pub use running::Running;
pub use summary::{geomean, mean, normalize_to, percent_change, NormalizeError};
