//! Streaming statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max over `f64` samples.
///
/// Uses Welford's numerically stable update, so it can absorb billions of
/// latency samples without catastrophic cancellation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, `None` if empty.
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, `None` if empty.
    #[must_use]
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_none() {
        let r = Running::new();
        assert_eq!(r.mean(), None);
        assert_eq!(r.variance(), None);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }

    #[test]
    fn basic_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(x);
        }
        assert!((r.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((r.variance().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(r.stddev().unwrap(), 2.0);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = Running::new();
        let mut b = Running::new();
        b.record(3.0);
        a.merge(&b); // empty ← nonempty
        assert_eq!(a.mean(), Some(3.0));
        let before = a;
        a.merge(&Running::new()); // nonempty ← empty
        assert_eq!(a, before);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut r = Running::new();
        r.record(42.0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), Some(42.0));
        assert_eq!(r.variance(), Some(0.0));
        assert_eq!(r.stddev(), Some(0.0));
        assert_eq!(r.min(), Some(42.0));
        assert_eq!(r.max(), Some(42.0));
    }

    #[test]
    fn extreme_magnitudes_stay_finite() {
        let mut r = Running::new();
        r.record(u64::MAX as f64);
        r.record(1.0);
        assert!(r.mean().unwrap().is_finite());
        assert!(r.variance().unwrap().is_finite());
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            xs in prop::collection::vec(-1e6f64..1e6, 1..100),
            ys in prop::collection::vec(-1e6f64..1e6, 1..100),
        ) {
            let mut split_a = Running::new();
            for &x in &xs { split_a.record(x); }
            let mut split_b = Running::new();
            for &y in &ys { split_b.record(y); }
            split_a.merge(&split_b);

            let mut seq = Running::new();
            for &v in xs.iter().chain(&ys) { seq.record(v); }

            prop_assert_eq!(split_a.count(), seq.count());
            prop_assert!((split_a.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-6);
            prop_assert!(
                (split_a.variance().unwrap() - seq.variance().unwrap()).abs()
                    / seq.variance().unwrap().max(1.0) < 1e-6
            );
            prop_assert_eq!(split_a.min(), seq.min());
            prop_assert_eq!(split_a.max(), seq.max());
        }
    }
}
