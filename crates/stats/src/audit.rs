//! Request-conservation accounting for the request auditor.
//!
//! The auditor itself (id-level lifecycle tracking) lives in the core
//! crate next to the memory subsystem it checks; this module holds the
//! *accounting* side — per-vault injected/completed counters — so the
//! numbers travel with the rest of the run statistics and serialize into
//! experiment output like every other counter.

use crate::counter::Counter;
use serde::{Deserialize, Serialize};

/// Per-vault request conservation counts. For a clean finished run,
/// `injected == completed` in every vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VaultAudit {
    /// Demand/writeback/prefetch requests the host injected toward this
    /// vault.
    pub injected: Counter,
    /// Responses the host received back from this vault.
    pub completed: Counter,
}

impl VaultAudit {
    /// Requests still in flight (injected but not completed).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.injected.get().saturating_sub(self.completed.get())
    }
}

/// Whole-cube request ledger: one [`VaultAudit`] per vault.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AuditLedger {
    /// Per-vault conservation counts, indexed by vault id.
    pub vaults: Vec<VaultAudit>,
}

impl AuditLedger {
    /// A ledger for `vaults` vaults, all counts zero.
    #[must_use]
    pub fn new(vaults: usize) -> Self {
        Self {
            vaults: vec![VaultAudit::default(); vaults],
        }
    }

    /// Records an injection toward `vault` (out-of-range ids are counted
    /// in the last bucket rather than dropped, so totals stay exact).
    pub fn record_injected(&mut self, vault: usize) {
        if let Some(v) = self.bucket(vault) {
            v.injected.inc();
        }
    }

    /// Records a completion from `vault`.
    pub fn record_completed(&mut self, vault: usize) {
        if let Some(v) = self.bucket(vault) {
            v.completed.inc();
        }
    }

    fn bucket(&mut self, vault: usize) -> Option<&mut VaultAudit> {
        let last = self.vaults.len().checked_sub(1)?;
        Some(&mut self.vaults[vault.min(last)])
    }

    /// Total requests injected.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.vaults.iter().map(|v| v.injected.get()).sum()
    }

    /// Total responses received.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.vaults.iter().map(|v| v.completed.get()).sum()
    }

    /// Requests still in flight across the cube.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.vaults.iter().map(VaultAudit::outstanding).sum()
    }

    /// True when every vault's books balance.
    #[must_use]
    pub fn balanced(&self) -> bool {
        self.vaults.iter().all(|v| v.outstanding() == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balances_when_completions_match() {
        let mut l = AuditLedger::new(4);
        l.record_injected(0);
        l.record_injected(3);
        assert_eq!(l.outstanding(), 2);
        assert!(!l.balanced());
        l.record_completed(0);
        l.record_completed(3);
        assert!(l.balanced());
        assert_eq!(l.injected(), 2);
        assert_eq!(l.completed(), 2);
    }

    #[test]
    fn out_of_range_vault_counts_in_last_bucket() {
        let mut l = AuditLedger::new(2);
        l.record_injected(99);
        assert_eq!(l.vaults[1].injected.get(), 1);
        // Empty ledgers drop rather than index out of bounds.
        let mut empty = AuditLedger::new(0);
        empty.record_injected(0);
        assert_eq!(empty.injected(), 0);
    }

    #[test]
    fn ledger_serializes() {
        let mut l = AuditLedger::new(2);
        l.record_injected(1);
        let s = serde_json::to_string(&l).unwrap();
        assert!(s.contains("injected"));
    }
}
