//! RowHammer activation-amplification accounting.
//!
//! A prefetching scheme issues ACT commands *beyond* what demand traffic
//! requires — whole-row fetches into the prefetch buffer and writebacks
//! of dirty evictions. Under an adversarial access stream those extra
//! activations can multiply an aggressor row's toggle rate: the scheme
//! itself becomes a hammer amplifier (see ρHammer, PAPERS.md). The
//! [`AmplificationReport`] condenses a run's activation attribution into
//! the single ratio the adversarial bench ranks schemes by.

use serde::{Deserialize, Serialize};

/// Worst-case RowHammer exposure summary for one run, built from the
/// merged vault statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AmplificationReport {
    /// ACT commands attributable to demand requests — what a no-prefetch
    /// memory would have issued.
    pub demand_activations: u64,
    /// ACT commands issued to fetch rows into the prefetch buffer.
    pub prefetch_activations: u64,
    /// ACT commands issued to write dirty prefetched rows back.
    pub writeback_activations: u64,
    /// Worst per-row activation count inside any single refresh window
    /// (max across vaults): the number a RowHammer attacker maximizes.
    pub worst_row_window_acts: u64,
    /// TRR-style neighbor refreshes injected by the mitigation (zero
    /// with the knob off).
    pub mitigations: u64,
    /// All-bank refreshes performed (window boundaries observed).
    pub refreshes: u64,
    /// Total ACTs over demand ACTs. A no-prefetch scheme scores exactly
    /// 1.0; anything above 1.0 is activation traffic the scheme *added*,
    /// i.e. hammer pressure an attacker gets for free.
    pub hammer_amplification: f64,
}

impl AmplificationReport {
    /// Builds the report from attributed activation counts.
    /// `hammer_amplification` guards the demand denominator so an
    /// all-prefetch pathological run reports a finite ratio.
    #[must_use]
    pub fn from_counts(
        demand: u64,
        prefetch: u64,
        writeback: u64,
        worst_row_window_acts: u64,
        mitigations: u64,
        refreshes: u64,
    ) -> Self {
        let total = demand + prefetch + writeback;
        Self {
            demand_activations: demand,
            prefetch_activations: prefetch,
            writeback_activations: writeback,
            worst_row_window_acts,
            mitigations,
            refreshes,
            hammer_amplification: total as f64 / demand.max(1) as f64,
        }
    }

    /// Total ACT commands across all attributions.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.demand_activations + self.prefetch_activations + self.writeback_activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_scores_exactly_one() {
        let r = AmplificationReport::from_counts(1_000, 0, 0, 12, 0, 4);
        assert_eq!(r.hammer_amplification, 1.0);
        assert_eq!(r.total_activations(), 1_000);
    }

    #[test]
    fn prefetch_and_writeback_amplify() {
        let r = AmplificationReport::from_counts(100, 40, 10, 60, 0, 4);
        assert_eq!(r.hammer_amplification, 1.5);
    }

    #[test]
    fn zero_demand_stays_finite() {
        let r = AmplificationReport::from_counts(0, 7, 0, 7, 0, 0);
        assert_eq!(r.hammer_amplification, 7.0);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = AmplificationReport::from_counts(100, 40, 10, 60, 3, 4);
        let back = AmplificationReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back, r);
    }
}
