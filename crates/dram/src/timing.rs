//! DRAM timing parameters pre-converted into CPU cycles.

use camps_types::clock::Cycle;
use camps_types::config::DramTimingConfig;
use serde::{Deserialize, Serialize};

/// All DRAM timing constraints, in CPU cycles.
///
/// Built once per simulation from the memory-cycle values of
/// [`DramTimingConfig`]; every bank and scheduler then works purely in the
/// CPU clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingCpu {
    /// ACT → RD/WR.
    pub t_rcd: Cycle,
    /// PRE → ACT.
    pub t_rp: Cycle,
    /// RD command → first data.
    pub t_cl: Cycle,
    /// ACT → PRE minimum.
    pub t_ras: Cycle,
    /// ACT → ACT, same bank.
    pub t_rc: Cycle,
    /// End of write burst → PRE.
    pub t_wr: Cycle,
    /// RD → PRE.
    pub t_rtp: Cycle,
    /// Burst-to-burst gap.
    pub t_ccd: Cycle,
    /// ACT → ACT, different banks in the same vault.
    pub t_rrd: Cycle,
    /// Four-activate window per vault.
    pub t_faw: Cycle,
    /// One 64 B data burst on the TSVs.
    pub t_burst: Cycle,
    /// Write latency (WR command → first data on the TSVs).
    pub t_wl: Cycle,
    /// Whole-row transfer between bank and prefetch buffer.
    pub t_row_transfer: Cycle,
    /// All-bank refresh interval per vault (0 = refresh disabled).
    pub t_refi: Cycle,
    /// All-bank refresh duration.
    pub t_rfc: Cycle,
}

impl TimingCpu {
    /// Converts memory-cycle timings to CPU cycles for a CPU at `cpu_hz`.
    #[must_use]
    pub fn from_config(cfg: &DramTimingConfig, cpu_hz: u64) -> Self {
        let d = cfg.domain(cpu_hz);
        let c = |mem_cycles: u64| d.to_cpu_cycles(mem_cycles);
        Self {
            t_rcd: c(cfg.t_rcd),
            t_rp: c(cfg.t_rp),
            t_cl: c(cfg.t_cl),
            t_ras: c(cfg.t_ras),
            t_rc: c(cfg.t_rc),
            t_wr: c(cfg.t_wr),
            t_rtp: c(cfg.t_rtp),
            t_ccd: c(cfg.t_ccd),
            t_rrd: c(cfg.t_rrd),
            t_faw: c(cfg.t_faw),
            t_burst: c(cfg.t_burst),
            t_wl: c(cfg.t_wl),
            t_row_transfer: c(cfg.t_row_transfer),
            t_refi: c(cfg.t_refi),
            t_rfc: c(cfg.t_rfc),
        }
    }

    /// Latency of a row-buffer hit read: RD → data done.
    #[must_use]
    pub fn hit_read_latency(&self) -> Cycle {
        self.t_cl + self.t_burst
    }

    /// Latency of a row miss on an idle bank: ACT → RD → data done.
    #[must_use]
    pub fn miss_read_latency(&self) -> Cycle {
        self.t_rcd + self.hit_read_latency()
    }

    /// Latency of a row-buffer conflict: PRE → ACT → RD → data done.
    #[must_use]
    pub fn conflict_read_latency(&self) -> Cycle {
        self.t_rp + self.miss_read_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;

    fn paper_timing() -> TimingCpu {
        let c = SystemConfig::paper_default();
        TimingCpu::from_config(&c.dram, c.cpu.freq_hz)
    }

    #[test]
    fn table1_core_timings() {
        let t = paper_timing();
        // 11 mem cycles × 15/4 = 41.25 → 42 CPU cycles.
        assert_eq!(t.t_rcd, 42);
        assert_eq!(t.t_rp, 42);
        assert_eq!(t.t_cl, 42);
        // 28 × 3.75 = 105, 39 × 3.75 = 146.25 → 147.
        assert_eq!(t.t_ras, 105);
        assert_eq!(t.t_rc, 147);
        assert_eq!(t.t_burst, 15);
    }

    #[test]
    fn latency_ladder_is_ordered() {
        let t = paper_timing();
        assert!(t.hit_read_latency() < t.miss_read_latency());
        assert!(t.miss_read_latency() < t.conflict_read_latency());
        assert_eq!(t.conflict_read_latency() - t.miss_read_latency(), t.t_rp);
        assert_eq!(t.miss_read_latency() - t.hit_read_latency(), t.t_rcd);
    }

    #[test]
    fn refresh_cadence_converts() {
        let t = paper_timing();
        // 6240 mem cycles × 15/4 = 23400 CPU cycles ≈ 7.8 µs at 3 GHz.
        assert_eq!(t.t_refi, 23_400);
        assert_eq!(t.t_rfc, 780);
        // Refresh overhead ≈ tRFC/tREFI ≈ 3.3 % of bank time.
        assert!((t.t_rfc as f64 / t.t_refi as f64) < 0.04);
    }

    #[test]
    fn row_transfer_uses_internal_bandwidth() {
        // 40 mem cycles = 150 CPU cycles for a full 1 KB row: the row-wide
        // TSV path moves data at 1.6× the burst-path rate (10 bus slots for
        // 16 blocks) — "huge internal bandwidth", but not free. Calibrated:
        // cheaper and BASE's blind fetching dominates every scheme; more
        // expensive and it collapses below no-prefetching (EXPERIMENTS.md).
        let t = paper_timing();
        assert_eq!(t.t_row_transfer, 150);
        assert_eq!(t.t_row_transfer, 10 * t.t_burst);
        assert!(t.t_row_transfer < 16 * t.hit_read_latency());
    }
}
