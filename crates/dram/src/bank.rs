//! A single DRAM bank as a timing state machine.
//!
//! The bank tracks the row currently latched in its row buffer plus a small
//! set of "earliest next command" timestamps. The vault scheduler asks
//! `can_*` before issuing; each issue method debits the relevant timing
//! constraints (tRCD, tRP, tRAS, tRC, tWR, tRTP, tCCD) and returns when the
//! operation's data is done. Violating a constraint is a simulator bug and
//! panics in debug builds via the `can_*` assertions.

use crate::timing::TimingCpu;
use camps_types::clock::Cycle;
use camps_types::wake::Wake;
use serde::{Deserialize, Serialize};

/// How an access relates to the bank's current row-buffer state.
///
/// This is the classification behind Figure 6 (row-buffer conflicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessCategory {
    /// The needed row is already open.
    Hit,
    /// The bank is precharged/idle; the row must be activated.
    Miss,
    /// A *different* row is open; precharge + activate are required.
    Conflict,
}

/// One DRAM bank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    open_row: Option<u32>,
    /// Earliest cycle the next ACT may issue (tRC from last ACT, tRP from
    /// last PRE).
    ready_act: Cycle,
    /// Earliest cycle a RD/WR may issue to the open row (tRCD after ACT,
    /// tCCD after a previous burst).
    ready_rdwr: Cycle,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tWR/tRTP after
    /// bursts).
    ready_pre: Cycle,
    /// The bank's array/TSV path is occupied until here (row transfers).
    busy_until: Cycle,
    /// Total cycles the bank has spent with a row open (for energy/debug).
    open_cycles: Cycle,
    last_act_at: Cycle,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A precharged, idle bank.
    #[must_use]
    pub fn new() -> Self {
        Self {
            open_row: None,
            ready_act: 0,
            ready_rdwr: 0,
            ready_pre: 0,
            busy_until: 0,
            open_cycles: 0,
            last_act_at: 0,
        }
    }

    /// The row currently latched in the row buffer, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Classifies an access to `row` against the current row-buffer state.
    #[must_use]
    pub fn categorize(&self, row: u32) -> AccessCategory {
        match self.open_row {
            Some(r) if r == row => AccessCategory::Hit,
            Some(_) => AccessCategory::Conflict,
            None => AccessCategory::Miss,
        }
    }

    /// True once an ACT may legally issue at `now` (bank must be idle).
    #[must_use]
    pub fn can_activate(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.ready_act && now >= self.busy_until
    }

    /// Earliest cycle at which [`Bank::can_activate`] could become true
    /// (assuming the bank is already idle).
    #[must_use]
    pub fn activate_ready_at(&self) -> Cycle {
        self.ready_act.max(self.busy_until)
    }

    /// Earliest cycle at which [`Bank::can_rdwr`] could become true
    /// (assuming a row is latched).
    #[must_use]
    pub fn rdwr_ready_at(&self) -> Cycle {
        self.ready_rdwr.max(self.busy_until)
    }

    /// Earliest cycle at which [`Bank::can_precharge`] could become true
    /// (assuming a row is latched).
    #[must_use]
    pub fn precharge_ready_at(&self) -> Cycle {
        self.ready_pre.max(self.busy_until)
    }

    /// The cycle the bank's array/TSV path frees up (row transfers,
    /// refresh) — the gate behind [`Bank::can_refresh`] on an idle bank.
    #[must_use]
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Issues ACT for `row` at `now`.
    ///
    /// # Panics
    /// Panics if the activation is not legal at `now`.
    pub fn activate(&mut self, now: Cycle, row: u32, t: &TimingCpu) {
        assert!(
            self.can_activate(now),
            "illegal ACT at cycle {now}: {self:?}"
        );
        self.open_row = Some(row);
        self.ready_rdwr = now + t.t_rcd;
        self.ready_pre = now + t.t_ras;
        self.ready_act = now + t.t_rc;
        self.last_act_at = now;
    }

    /// True once a RD or WR burst may issue at `now`.
    #[must_use]
    pub fn can_rdwr(&self, now: Cycle) -> bool {
        self.open_row.is_some() && now >= self.ready_rdwr && now >= self.busy_until
    }

    /// Issues a 64 B read burst at `now`; returns the cycle the data has
    /// fully crossed the TSVs.
    ///
    /// # Panics
    /// Panics if a burst is not legal at `now`.
    pub fn read(&mut self, now: Cycle, t: &TimingCpu) -> Cycle {
        assert!(self.can_rdwr(now), "illegal RD at cycle {now}: {self:?}");
        self.ready_rdwr = self.ready_rdwr.max(now + t.t_ccd);
        self.ready_pre = self.ready_pre.max(now + t.t_rtp);
        now + t.t_cl + t.t_burst
    }

    /// Issues a 64 B write burst at `now`; returns the cycle the write has
    /// been absorbed by the array.
    ///
    /// # Panics
    /// Panics if a burst is not legal at `now`.
    pub fn write(&mut self, now: Cycle, t: &TimingCpu) -> Cycle {
        assert!(self.can_rdwr(now), "illegal WR at cycle {now}: {self:?}");
        self.ready_rdwr = self.ready_rdwr.max(now + t.t_ccd);
        let data_done = now + t.t_wl + t.t_burst;
        self.ready_pre = self.ready_pre.max(data_done + t.t_wr);
        data_done
    }

    /// True once PRE may issue at `now`.
    #[must_use]
    pub fn can_precharge(&self, now: Cycle) -> bool {
        self.open_row.is_some() && now >= self.ready_pre && now >= self.busy_until
    }

    /// Issues PRE at `now`, closing the row.
    ///
    /// # Panics
    /// Panics if precharge is not legal at `now`.
    pub fn precharge(&mut self, now: Cycle, t: &TimingCpu) {
        assert!(
            self.can_precharge(now),
            "illegal PRE at cycle {now}: {self:?}"
        );
        self.open_cycles += now - self.last_act_at;
        self.open_row = None;
        self.ready_act = self.ready_act.max(now + t.t_rp);
    }

    /// True once a whole-row transfer (bank ↔ prefetch buffer) may start.
    /// Needs the row latched and the array past tRCD, like a burst.
    #[must_use]
    pub fn can_row_transfer(&self, now: Cycle) -> bool {
        self.can_rdwr(now)
    }

    /// Streams the open row into the prefetch buffer at `now`; the bank is
    /// busy until the returned cycle.
    ///
    /// # Panics
    /// Panics if the transfer is not legal at `now`.
    pub fn row_transfer_out(&mut self, now: Cycle, t: &TimingCpu) -> Cycle {
        assert!(
            self.can_row_transfer(now),
            "illegal row transfer at {now}: {self:?}"
        );
        let done = now + t.t_row_transfer;
        self.busy_until = done;
        self.ready_pre = self.ready_pre.max(done);
        self.ready_rdwr = self.ready_rdwr.max(done);
        done
    }

    /// Streams a (dirty) row from the prefetch buffer back into the open
    /// row at `now`; write recovery applies before the row may close.
    ///
    /// # Panics
    /// Panics if the transfer is not legal at `now`.
    pub fn row_transfer_in(&mut self, now: Cycle, t: &TimingCpu) -> Cycle {
        assert!(
            self.can_row_transfer(now),
            "illegal row writeback at {now}: {self:?}"
        );
        let done = now + t.t_row_transfer;
        self.busy_until = done;
        self.ready_pre = self.ready_pre.max(done + t.t_wr);
        self.ready_rdwr = self.ready_rdwr.max(done);
        done
    }

    /// Cumulative cycles this bank has had a row open (completed intervals
    /// only).
    #[must_use]
    pub fn open_cycles(&self) -> Cycle {
        self.open_cycles
    }

    /// Charges the bank a TRR-style targeted neighbor refresh: the two
    /// physical neighbors of a hammered row are each given a private
    /// activate + precharge cycle, stolen from whatever this bank would
    /// have done next. Modeled as pushing the next ACT opportunity out by
    /// 2 × tRC — the bank may keep serving its *open* row (real TRR fires
    /// between row cycles), but cannot open another row until the
    /// neighbor refreshes are done. Purely additive to `ready_act`, so it
    /// can never violate a timing invariant or wedge the state machine:
    /// waiting always re-enables activation.
    pub fn trr_neighbor_refresh(&mut self, now: Cycle, t: &TimingCpu) {
        self.ready_act = self.ready_act.max(now + 2 * t.t_rc);
    }

    /// True once a refresh may begin (bank idle, timing satisfied).
    #[must_use]
    pub fn can_refresh(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.busy_until
    }

    /// While the controller drains toward an all-bank refresh, the
    /// earliest cycle this bank could move closer to
    /// [`Bank::can_refresh`]: the precharge opportunity while a row is
    /// still latched, or the end of array/TSV occupancy once idle. A
    /// conservative lower bound, like every wake edge — the precharge
    /// may additionally wait on the scheduler, never on time alone.
    #[must_use]
    pub fn refresh_drain_edge(&self) -> Cycle {
        if self.open_row.is_some() {
            self.precharge_ready_at()
        } else {
            self.busy_until
        }
    }

    /// Applies an all-bank refresh starting at `now`: the bank is
    /// unavailable for activation until `now + tRFC`.
    ///
    /// # Panics
    /// Panics if the bank is not idle.
    pub fn refresh(&mut self, now: Cycle, t: &TimingCpu) {
        assert!(
            self.can_refresh(now),
            "illegal REF at cycle {now}: {self:?}"
        );
        self.ready_act = self.ready_act.max(now + t.t_rfc);
        self.busy_until = self.busy_until.max(now + t.t_rfc);
    }
}

impl Wake for Bank {
    /// A bank is passive (commands arrive from the vault scheduler), so its
    /// wake is the earliest strictly-future timing edge in the current
    /// state: the next ACT opportunity while idle, or the next RD/WR/PRE
    /// opportunity while a row is latched. Edges already in the past mean
    /// the bank is gated only by the scheduler, not by time — `None`.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let edge = if self.open_row.is_some() {
            self.rdwr_ready_at().min(self.precharge_ready_at())
        } else {
            self.activate_ready_at()
        };
        (edge > now).then_some(edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;
    use proptest::prelude::*;

    fn t() -> TimingCpu {
        let c = SystemConfig::paper_default();
        TimingCpu::from_config(&c.dram, c.cpu.freq_hz)
    }

    #[test]
    fn fresh_bank_is_idle_and_activatable() {
        let b = Bank::new();
        assert_eq!(b.open_row(), None);
        assert!(b.can_activate(0));
        assert!(!b.can_rdwr(0));
        assert!(!b.can_precharge(0));
    }

    #[test]
    fn categorize_matches_state() {
        let tm = t();
        let mut b = Bank::new();
        assert_eq!(b.categorize(5), AccessCategory::Miss);
        b.activate(0, 5, &tm);
        assert_eq!(b.categorize(5), AccessCategory::Hit);
        assert_eq!(b.categorize(6), AccessCategory::Conflict);
    }

    #[test]
    fn trcd_gates_read_after_activate() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        assert!(!b.can_rdwr(tm.t_rcd - 1));
        assert!(b.can_rdwr(tm.t_rcd));
        let done = b.read(tm.t_rcd, &tm);
        assert_eq!(done, tm.t_rcd + tm.t_cl + tm.t_burst);
    }

    #[test]
    fn tras_gates_precharge() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        assert!(!b.can_precharge(tm.t_ras - 1));
        assert!(b.can_precharge(tm.t_ras));
    }

    #[test]
    fn trp_gates_next_activate() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.precharge(tm.t_ras, &tm);
        assert!(!b.can_activate(tm.t_ras + tm.t_rp - 1));
        assert!(b.can_activate(tm.t_ras + tm.t_rp));
    }

    #[test]
    fn trc_gates_back_to_back_activates() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        // Precharge as early as possible (tRAS), then the next ACT is still
        // held until tRC even though tRAS + tRP < tRC could permit earlier.
        b.precharge(tm.t_ras, &tm);
        let earliest = b.activate_ready_at();
        assert_eq!(earliest, tm.t_rc.max(tm.t_ras + tm.t_rp));
        assert!(b.can_activate(earliest));
    }

    #[test]
    fn read_extends_precharge_by_trtp() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        // A read late in the row's life pushes PRE past tRAS.
        let rd_at = tm.t_ras;
        b.read(rd_at, &tm);
        assert!(!b.can_precharge(rd_at));
        assert!(b.can_precharge(rd_at + tm.t_rtp));
    }

    #[test]
    fn write_recovery_gates_precharge() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        let done = b.write(tm.t_rcd, &tm);
        assert_eq!(done, tm.t_rcd + tm.t_wl + tm.t_burst);
        assert!(!b.can_precharge(done + tm.t_wr - 1));
        assert!(b.can_precharge(done + tm.t_wr));
    }

    #[test]
    fn tccd_spaces_bursts() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.read(tm.t_rcd, &tm);
        assert!(!b.can_rdwr(tm.t_rcd + tm.t_ccd - 1));
        assert!(b.can_rdwr(tm.t_rcd + tm.t_ccd));
    }

    #[test]
    fn row_transfer_occupies_bank() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        let done = b.row_transfer_out(tm.t_rcd, &tm);
        assert_eq!(done, tm.t_rcd + tm.t_row_transfer);
        assert!(!b.can_rdwr(done - 1));
        assert!(!b.can_precharge(done - 1));
        assert!(b.can_precharge(done.max(tm.t_ras)));
    }

    #[test]
    fn row_writeback_needs_write_recovery() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        let done = b.row_transfer_in(tm.t_rcd, &tm);
        assert!(!b.can_precharge(done + tm.t_wr - 1));
        assert!(b.can_precharge((done + tm.t_wr).max(tm.t_ras)));
    }

    #[test]
    fn open_cycles_accumulate() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.precharge(tm.t_ras, &tm);
        assert_eq!(b.open_cycles(), tm.t_ras);
    }

    #[test]
    fn refresh_drain_edge_tracks_state() {
        let tm = t();
        let mut b = Bank::new();
        assert_eq!(b.refresh_drain_edge(), b.busy_until());
        b.activate(0, 1, &tm);
        assert_eq!(b.refresh_drain_edge(), b.precharge_ready_at());
        b.precharge(tm.t_ras, &tm);
        assert_eq!(b.refresh_drain_edge(), b.busy_until());
    }

    #[test]
    fn refresh_blocks_activation_for_trfc() {
        let tm = t();
        let mut b = Bank::new();
        assert!(b.can_refresh(0));
        b.refresh(0, &tm);
        assert!(!b.can_activate(tm.t_rfc - 1));
        assert!(b.can_activate(tm.t_rfc));
    }

    #[test]
    fn trr_penalty_delays_the_next_activation_only() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.trr_neighbor_refresh(tm.t_rcd, &tm);
        // The open row keeps serving — bursts are unaffected.
        assert!(b.can_rdwr(tm.t_rcd));
        b.precharge(tm.t_ras, &tm);
        // …but the next ACT waits out the two stolen neighbor row cycles.
        let penalty_end = tm.t_rcd + 2 * tm.t_rc;
        assert!(!b.can_activate(penalty_end - 1));
        assert!(b.can_activate(penalty_end));
    }

    #[test]
    #[should_panic(expected = "illegal REF")]
    fn refresh_on_open_bank_panics() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.refresh(tm.t_ras, &tm);
    }

    #[test]
    #[should_panic(expected = "illegal RD")]
    fn premature_read_panics() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        let _ = b.read(1, &tm);
    }

    #[test]
    #[should_panic(expected = "illegal ACT")]
    fn activate_on_open_bank_panics() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.activate(tm.t_rc, 2, &tm);
    }

    #[test]
    fn refresh_after_precharge_respects_trp() {
        let tm = t();
        let mut b = Bank::new();
        b.activate(0, 1, &tm);
        b.precharge(tm.t_ras, &tm);
        // Refresh may start right after PRE (bank idle), and the next ACT
        // honors both tRP and tRFC.
        assert!(b.can_refresh(tm.t_ras));
        b.refresh(tm.t_ras, &tm);
        let ready = b.activate_ready_at();
        assert!(ready >= tm.t_ras + tm.t_rfc);
        assert!(b.can_activate(ready));
    }

    // Drive a bank with a random but *legal* command sequence and check
    // the state machine never wedges: from any state, waiting long enough
    // always re-enables progress.
    proptest! {
        #[test]
        fn random_legal_sequences_never_wedge(ops in prop::collection::vec(0u8..4, 1..60)) {
            let tm = t();
            let mut b = Bank::new();
            let mut now: Cycle = 0;
            for op in ops {
                // Advance until the chosen op (or a fallback) is legal.
                for _ in 0..10_000 {
                    let acted = match op {
                        0 if b.can_activate(now) => { b.activate(now, 7, &tm); true }
                        1 if b.can_rdwr(now) => { b.read(now, &tm); true }
                        2 if b.can_rdwr(now) => { b.write(now, &tm); true }
                        3 if b.can_precharge(now) => { b.precharge(now, &tm); true }
                        // If the op can never become legal in this state
                        // (e.g. RD while idle), switch state legally.
                        0 | 3 if b.open_row().is_none() && op == 3 => {
                            if b.can_activate(now) { b.activate(now, 7, &tm); }
                            false
                        }
                        _ => false,
                    };
                    if acted {
                        break;
                    }
                    now += 1;
                    // RD/WR/PRE while idle require an ACT first.
                    if b.open_row().is_none() && matches!(op, 1..=3) && b.can_activate(now) {
                        b.activate(now, 7, &tm);
                    }
                }
            }
            // After any sequence the bank can always be returned to idle.
            for _ in 0..10_000 {
                if b.open_row().is_none() {
                    break;
                }
                if b.can_precharge(now) {
                    b.precharge(now, &tm);
                }
                now += 1;
            }
            prop_assert!(b.open_row().is_none());
        }
    }
}
