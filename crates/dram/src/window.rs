//! Vault-level activation constraints: tRRD and the four-activate window
//! (tFAW).
//!
//! Banks gate their own tRC; activations across *different* banks of the
//! same vault additionally need tRRD spacing, and no more than four ACTs may
//! land inside any tFAW window (a power-delivery limit).

use camps_types::clock::Cycle;
use camps_types::wake::Wake;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sliding activation window for one vault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActWindow {
    t_rrd: Cycle,
    t_faw: Cycle,
    last_act: Option<Cycle>,
    recent: VecDeque<Cycle>,
}

impl ActWindow {
    /// Creates the window from the vault's tRRD/tFAW (CPU cycles).
    #[must_use]
    pub fn new(t_rrd: Cycle, t_faw: Cycle) -> Self {
        Self {
            t_rrd,
            t_faw,
            last_act: None,
            recent: VecDeque::with_capacity(4),
        }
    }

    /// True if an ACT may issue anywhere in this vault at `now`.
    #[must_use]
    pub fn can_activate(&self, now: Cycle) -> bool {
        now >= self.earliest_activate()
    }

    /// Earliest cycle at which the vault-level constraints permit an ACT.
    #[must_use]
    pub fn earliest_activate(&self) -> Cycle {
        let rrd_ready = self.last_act.map_or(0, |t| t + self.t_rrd);
        let faw_ready = if self.recent.len() == 4 {
            self.recent.front().map_or(0, |&t| t + self.t_faw)
        } else {
            0
        };
        rrd_ready.max(faw_ready)
    }

    /// Records an ACT issued at `now`.
    ///
    /// # Panics
    /// Panics if the ACT violates tRRD/tFAW (simulator bug).
    pub fn record(&mut self, now: Cycle) {
        assert!(
            self.can_activate(now),
            "ACT at {now} violates tRRD/tFAW: {self:?}"
        );
        self.last_act = Some(now);
        if self.recent.len() == 4 {
            self.recent.pop_front();
        }
        self.recent.push_back(now);
    }
}

impl Wake for ActWindow {
    /// The next cycle tRRD/tFAW stop gating an ACT, if they gate one now.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let at = self.earliest_activate();
        (at > now).then_some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_window_allows_immediate_act() {
        let w = ActWindow::new(19, 90);
        assert!(w.can_activate(0));
        assert_eq!(w.earliest_activate(), 0);
    }

    #[test]
    fn trrd_spaces_consecutive_acts() {
        let mut w = ActWindow::new(19, 90);
        w.record(0);
        assert!(!w.can_activate(18));
        assert!(w.can_activate(19));
    }

    #[test]
    fn tfaw_limits_burst_of_activates() {
        let mut w = ActWindow::new(10, 100);
        for i in 0..4 {
            w.record(i * 10);
        }
        // Fifth ACT must wait for the first to age out of the tFAW window.
        assert_eq!(w.earliest_activate(), 100);
        assert!(!w.can_activate(99));
        w.record(100);
        // Now the window holds ACTs at 10, 20, 30, 100; next earliest is
        // max(100 + tRRD, 10 + tFAW) = 110.
        assert_eq!(w.earliest_activate(), 110);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn premature_record_panics() {
        let mut w = ActWindow::new(19, 90);
        w.record(0);
        w.record(5);
    }

    proptest! {
        // Issue ACTs greedily at the earliest legal times and verify no
        // window of tFAW cycles ever contains five activations.
        #[test]
        fn never_five_acts_in_faw_window(gaps in prop::collection::vec(0u64..40, 4..50)) {
            let (t_rrd, t_faw) = (19u64, 90u64);
            let mut w = ActWindow::new(t_rrd, t_faw);
            let mut times = Vec::new();
            let mut now = 0u64;
            for g in gaps {
                now = (now + g).max(w.earliest_activate());
                w.record(now);
                times.push(now);
            }
            for (i, &t0) in times.iter().enumerate() {
                let in_window = times[i..].iter().take_while(|&&t| t < t0 + t_faw).count();
                prop_assert!(in_window <= 4, "five ACTs within tFAW starting at {}", t0);
            }
            for pair in times.windows(2) {
                prop_assert!(pair[1] - pair[0] >= t_rrd);
            }
        }
    }
}
