//! Energy accounting.
//!
//! Each vault counts its DRAM and prefetch-engine operations; at the end of
//! a run the counts are priced with the [`EnergyConfig`] constants plus the
//! static background term. Figure 9 of the paper reports exactly this,
//! normalized to the BASE scheme.

use camps_types::clock::Cycle;
use camps_types::config::EnergyConfig;
use serde::{Deserialize, Serialize};

/// Operation counters from which energy is derived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCounters {
    /// Row activations.
    pub activates: u64,
    /// Precharges.
    pub precharges: u64,
    /// 64 B read bursts served from banks.
    pub read_bursts: u64,
    /// 64 B write bursts into banks.
    pub write_bursts: u64,
    /// Whole-row transfers bank → prefetch buffer.
    pub row_fetches: u64,
    /// Whole-row transfers prefetch buffer → bank (dirty evictions).
    pub row_writebacks: u64,
    /// Prefetch-buffer SRAM accesses (lookups + line reads).
    pub buffer_accesses: u64,
    /// FLITs crossing the serial links (both directions).
    pub link_flits: u64,
    /// All-bank refresh operations (per vault).
    #[serde(default)]
    pub refreshes: u64,
}

impl EnergyCounters {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another component's counters into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.read_bursts += other.read_bursts;
        self.write_bursts += other.write_bursts;
        self.row_fetches += other.row_fetches;
        self.row_writebacks += other.row_writebacks;
        self.buffer_accesses += other.buffer_accesses;
        self.link_flits += other.link_flits;
        self.refreshes += other.refreshes;
    }

    /// Dynamic energy in nanojoules under the given constants.
    ///
    /// Activate/precharge pairs are priced together (`act_pre_nj` covers
    /// one ACT + one PRE; we charge half per operation so asymmetric counts
    /// — e.g. a row left open at the end — still price sensibly).
    #[must_use]
    pub fn dynamic_nj(&self, e: &EnergyConfig) -> f64 {
        let act_pre = (self.activates + self.precharges) as f64 * (e.act_pre_nj / 2.0);
        let bursts =
            self.read_bursts as f64 * e.rd_burst_nj + self.write_bursts as f64 * e.wr_burst_nj;
        let rows = (self.row_fetches + self.row_writebacks) as f64 * e.row_transfer_nj;
        let buffer = self.buffer_accesses as f64 * e.buffer_access_nj;
        let link = self.link_flits as f64 * e.link_flit_nj;
        let refresh = self.refreshes as f64 * e.refresh_nj;
        act_pre + bursts + rows + buffer + link + refresh
    }

    /// Total energy in nanojoules over `elapsed` CPU cycles for a cube with
    /// `vaults` vaults: dynamic + static background.
    #[must_use]
    pub fn total_nj(&self, e: &EnergyConfig, elapsed: Cycle, vaults: u32, cpu_hz: u64) -> f64 {
        let seconds = elapsed as f64 / cpu_hz as f64;
        let background_nj = e.background_mw_per_vault * 1e-3 * f64::from(vaults) * seconds * 1e9;
        self.dynamic_nj(e) + background_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;

    fn e() -> EnergyConfig {
        SystemConfig::paper_default().energy
    }

    #[test]
    fn zero_counters_zero_dynamic_energy() {
        assert_eq!(EnergyCounters::new().dynamic_nj(&e()), 0.0);
    }

    #[test]
    fn act_pre_pair_prices_once() {
        let mut c = EnergyCounters::new();
        c.activates = 10;
        c.precharges = 10;
        assert!((c.dynamic_nj(&e()) - 10.0 * e().act_pre_nj).abs() < 1e-9);
    }

    #[test]
    fn dynamic_energy_is_monotone_in_counts() {
        let mut a = EnergyCounters::new();
        a.read_bursts = 5;
        let mut b = a;
        b.row_fetches = 3;
        assert!(b.dynamic_nj(&e()) > a.dynamic_nj(&e()));
    }

    #[test]
    fn background_scales_with_time_and_vaults() {
        let c = EnergyCounters::new();
        let one = c.total_nj(&e(), 3_000_000_000, 1, 3_000_000_000); // 1 second
                                                                     // background_mw_per_vault for 1 s, in nJ.
        let expect = e().background_mw_per_vault * 1e-3 * 1e9;
        assert!((one - expect).abs() / expect < 1e-9);
        let many = c.total_nj(&e(), 3_000_000_000, 32, 3_000_000_000);
        assert!((many - 32.0 * one).abs() / many < 1e-9);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = EnergyCounters {
            activates: 1,
            link_flits: 2,
            ..Default::default()
        };
        let b = EnergyCounters {
            activates: 3,
            buffer_accesses: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activates, 4);
        assert_eq!(a.link_flits, 2);
        assert_eq!(a.buffer_accesses, 4);
    }
}
