//! DRAM substrate for the CAMPS HMC simulator.
//!
//! Models one DRAM bank as a timing state machine (DRAMSim-style "ready-at"
//! timestamps rather than per-cycle FSM ticks), the vault-level activation
//! window (tRRD/tFAW), and per-operation energy accounting.
//!
//! All timing values inside this crate are **CPU cycles**; the conversion
//! from memory-bus cycles (DDR3-1600, Table I) happens once in
//! [`TimingCpu::from_config`].

#![warn(missing_docs)]

pub mod bank;
pub mod energy;
pub mod rowguard;
pub mod timing;
pub mod window;

pub use bank::{AccessCategory, Bank};
pub use energy::EnergyCounters;
pub use rowguard::RowGuard;
pub use timing::TimingCpu;
pub use window::ActWindow;
