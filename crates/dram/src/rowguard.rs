//! Per-row activation tracking within one refresh window (RowHammer
//! accounting).
//!
//! A [`RowGuard`] counts ACT commands per `(bank, row)` between all-bank
//! refreshes. In this model every all-bank refresh (issued once per
//! tREFI by the vault controller) refreshes *every* row, so tREFI is the
//! effective tREFW: the window resets exactly at the refresh boundary
//! and the per-window counts are the quantity a RowHammer attacker
//! maximizes and a TRR mitigation watches.
//!
//! The tracker is pure observation — it never touches bank timing. The
//! mitigation *decision* (comparing a count against a threshold and
//! charging the bank a neighbor-refresh penalty via
//! [`Bank::trr_neighbor_refresh`](crate::Bank::trr_neighbor_refresh))
//! belongs to the vault controller, which owns the bank array and the
//! configuration knob.

use serde::value::Value;
use serde::{de, Deserialize};
use std::collections::BTreeMap;

/// Per-row activation counters for the current refresh window of one
/// vault. Sparse: only rows activated since the last refresh occupy an
/// entry, so idle vaults snapshot to nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowGuard {
    /// `(bank, row) → activations since the last all-bank refresh`.
    /// A `BTreeMap` so serialization is deterministically ordered.
    counts: BTreeMap<(u16, u32), u32>,
}

impl RowGuard {
    /// An empty tracker (start of a refresh window).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ACT of `row` in `bank`; returns the row's activation
    /// count within the current refresh window, including this one.
    pub fn record(&mut self, bank: u16, row: u32) -> u32 {
        let c = self.counts.entry((bank, row)).or_insert(0);
        *c += 1;
        *c
    }

    /// The row's activation count so far this window.
    #[must_use]
    pub fn count(&self, bank: u16, row: u32) -> u32 {
        self.counts.get(&(bank, row)).copied().unwrap_or(0)
    }

    /// Clears one row's counter — called after a mitigation refreshes the
    /// row's neighbors, so the threshold is measured per mitigation
    /// interval rather than firing on every subsequent ACT.
    pub fn reset_row(&mut self, bank: u16, row: u32) {
        self.counts.remove(&(bank, row));
    }

    /// Window boundary: an all-bank refresh rewrote every row, so every
    /// counter restarts from zero.
    pub fn on_refresh(&mut self) {
        self.counts.clear();
    }

    /// Rows with a nonzero count in the current window.
    #[must_use]
    pub fn tracked_rows(&self) -> usize {
        self.counts.len()
    }

    /// The hottest row of the current (incomplete) window:
    /// `((bank, row), count)`, or `None` when nothing activated yet.
    #[must_use]
    pub fn hottest(&self) -> Option<((u16, u32), u32)> {
        self.counts
            .iter()
            .max_by_key(|&(key, c)| (*c, std::cmp::Reverse(*key)))
            .map(|(&k, &c)| (k, c))
    }
}

// The vendored serde subset has no map support, so the counters lower to
// a sorted `(bank, row, count)` tuple sequence — deterministic because
// `BTreeMap` iterates in key order.
impl serde::Serialize for RowGuard {
    fn to_value(&self) -> Value {
        let flat: Vec<(u16, u32, u32)> = self
            .counts
            .iter()
            .map(|(&(bank, row), &c)| (bank, row, c))
            .collect();
        flat.to_value()
    }
}

impl Deserialize for RowGuard {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let flat: Vec<(u16, u32, u32)> = Vec::from_value(v)?;
        let mut counts = BTreeMap::new();
        for (bank, row, c) in flat {
            if c == 0 {
                return Err(de::Error::custom(format!(
                    "rowguard: zero count for bank {bank} row {row}"
                )));
            }
            if counts.insert((bank, row), c).is_some() {
                return Err(de::Error::custom(format!(
                    "rowguard: duplicate entry for bank {bank} row {row}"
                )));
            }
        }
        Ok(Self { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize as _;

    #[test]
    fn record_counts_per_row_within_the_window() {
        let mut g = RowGuard::new();
        assert_eq!(g.record(0, 7), 1);
        assert_eq!(g.record(0, 7), 2);
        assert_eq!(g.record(0, 9), 1);
        assert_eq!(g.record(1, 7), 1, "same row in another bank is distinct");
        assert_eq!(g.count(0, 7), 2);
        assert_eq!(g.count(0, 1), 0);
        assert_eq!(g.tracked_rows(), 3);
    }

    #[test]
    fn refresh_boundary_resets_every_counter() {
        let mut g = RowGuard::new();
        for _ in 0..5 {
            g.record(2, 100);
        }
        g.record(3, 50);
        g.on_refresh();
        assert_eq!(g.tracked_rows(), 0);
        assert_eq!(g.count(2, 100), 0);
        // The next window counts from scratch.
        assert_eq!(g.record(2, 100), 1);
    }

    #[test]
    fn reset_row_clears_only_that_row() {
        let mut g = RowGuard::new();
        g.record(0, 1);
        g.record(0, 1);
        g.record(0, 2);
        g.reset_row(0, 1);
        assert_eq!(g.count(0, 1), 0);
        assert_eq!(g.count(0, 2), 1);
    }

    #[test]
    fn hottest_tracks_the_max_count() {
        let mut g = RowGuard::new();
        assert_eq!(g.hottest(), None);
        g.record(0, 1);
        g.record(0, 3);
        g.record(0, 3);
        assert_eq!(g.hottest(), Some(((0, 3), 2)));
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut g = RowGuard::new();
        for row in [9u32, 3, 3, 900, 17, 3] {
            g.record((row % 4) as u16, row);
        }
        let v = g.to_value();
        let back = RowGuard::from_value(&v).unwrap();
        assert_eq!(back, g);
        // Serialization is canonical: re-serializing the restored tracker
        // yields the same value tree.
        assert_eq!(back.to_value(), v);
    }

    #[test]
    fn malformed_snapshots_are_shape_errors() {
        assert!(RowGuard::from_value(&Value::Null).is_err());
        // Duplicate (bank, row) keys and zero counts are rejected.
        let dup = vec![(0u16, 1u32, 2u32), (0, 1, 3)].to_value();
        assert!(RowGuard::from_value(&dup).is_err());
        let zero = vec![(0u16, 1u32, 0u32)].to_value();
        assert!(RowGuard::from_value(&zero).is_err());
    }
}
