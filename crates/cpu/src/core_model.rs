//! The ROB-limited core model.

use crate::trace::{TraceOp, TraceSource};
use camps_obs::Profiler;
use camps_stats::Counter;
use camps_types::addr::PhysAddr;
use camps_types::clock::Cycle;
use camps_types::config::CpuConfig;
use camps_types::request::{AccessKind, CoreId};
use camps_types::snapshot::{decode, field, Snapshot};
use camps_types::wake::Wake;
use serde::value::Value;
use serde::{de, Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// What the memory port says about an attempted load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortResult {
    /// On-chip cache hit: data ready after `latency` cycles.
    Hit {
        /// Hit latency (sum of lookup latencies).
        latency: Cycle,
    },
    /// Miss accepted into the memory system; completion arrives later via
    /// [`Core::complete_load`] keyed by the slot the core passed in.
    Accepted,
    /// Structural stall (MSHRs full, queues full) — retry next cycle.
    Rejected,
}

/// The core's window into the memory system.
///
/// Each call receives the host self-profiler so the port implementation
/// can attribute its cache-lookup and MSHR time (a no-op when profiling
/// is off or compiled out).
pub trait MemoryPort {
    /// Attempts a load for `(core, slot)`.
    fn load(
        &mut self,
        now: Cycle,
        core: CoreId,
        slot: u64,
        addr: PhysAddr,
        prof: &mut Profiler,
    ) -> PortResult;

    /// Attempts a posted store; `true` if accepted.
    fn store(&mut self, now: Cycle, core: CoreId, addr: PhysAddr, prof: &mut Profiler) -> bool;
}

/// Reorder-buffer entry states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobEntry {
    /// Completes at a known cycle (ALU ops).
    Ready(Cycle),
    /// A cache-hit load completing at a known cycle (counted as memory
    /// stall time while it blocks the head).
    HitLoad(Cycle),
    /// A load waiting for a memory response (keyed by slot).
    PendingLoad(u64),
    /// A load that could not even be *issued* yet (port rejection).
    StalledLoad(PhysAddr),
    /// A store waiting for store-buffer space.
    StalledStore(PhysAddr),
}

impl RobEntry {
    /// Snapshot encoding: the derive subset cannot express data-carrying
    /// enums, so entries serialize as `(tag, payload)` pairs.
    fn pack(self) -> (u8, u64) {
        match self {
            Self::Ready(c) => (0, c),
            Self::HitLoad(c) => (1, c),
            Self::PendingLoad(slot) => (2, slot),
            Self::StalledLoad(a) => (3, a.0),
            Self::StalledStore(a) => (4, a.0),
        }
    }

    fn unpack(tag: u8, payload: u64) -> Result<Self, de::Error> {
        Ok(match tag {
            0 => Self::Ready(payload),
            1 => Self::HitLoad(payload),
            2 => Self::PendingLoad(payload),
            3 => Self::StalledLoad(PhysAddr(payload)),
            4 => Self::StalledStore(PhysAddr(payload)),
            other => {
                return Err(de::Error::custom(format!(
                    "snapshot: unknown RobEntry tag {other}"
                )))
            }
        })
    }
}

/// Per-core statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: Counter,
    /// Cycles simulated.
    pub cycles: Counter,
    /// Loads issued to the memory port.
    pub loads: Counter,
    /// Stores issued.
    pub stores: Counter,
    /// Cycles the ROB head was an incomplete load (memory stall).
    pub load_stall_cycles: Counter,
    /// Cycles nothing retired because the ROB was empty (issue-bound).
    pub empty_cycles: Counter,
    /// Port rejections (MSHR/queue backpressure events).
    pub rejections: Counter,
}

impl CoreStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles.get() == 0 {
            return 0.0;
        }
        self.retired.as_f64() / self.cycles.as_f64()
    }
}

/// A 4-wide, ROB-limited, trace-driven core.
pub struct Core {
    id: CoreId,
    rob: VecDeque<RobEntry>,
    rob_cap: usize,
    issue_w: u32,
    retire_w: u32,
    store_buffer: VecDeque<PhysAddr>,
    store_cap: usize,
    /// ALU instructions from the current trace op still waiting to issue.
    pending_gap: u32,
    /// The current op's memory operation, not yet issued.
    pending_mem: Option<(PhysAddr, AccessKind)>,
    trace: Box<dyn TraceSource>,
    next_slot: u64,
    completed: HashSet<u64>,
    /// Count of `Stalled*` ROB entries, kept so [`Wake::next_event`] is
    /// O(1) instead of scanning the ROB. Derived from `rob` — not
    /// serialized; recomputed on restore.
    stalled_entries: usize,
    stats: CoreStats,
}

impl Core {
    /// Builds core `id` running `trace`.
    #[must_use]
    pub fn new(id: CoreId, cfg: &CpuConfig, trace: Box<dyn TraceSource>) -> Self {
        Self {
            id,
            rob: VecDeque::with_capacity(cfg.rob_entries as usize),
            rob_cap: cfg.rob_entries as usize,
            issue_w: cfg.issue_width,
            retire_w: cfg.retire_width,
            store_buffer: VecDeque::new(),
            store_cap: cfg.store_buffer_entries as usize,
            pending_gap: 0,
            pending_mem: None,
            trace,
            next_slot: 0,
            completed: HashSet::new(),
            stalled_entries: 0,
            stats: CoreStats::default(),
        }
    }

    /// This core's id.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Name of the benchmark this core runs.
    #[must_use]
    pub fn workload_name(&self) -> &str {
        self.trace.name()
    }

    /// Instructions currently in the reorder buffer (watchdog
    /// diagnostics: a full ROB that never drains marks the wedged core).
    #[must_use]
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Pops the next trace op *without* simulating it — used by the
    /// functional cache-warmup phase, which advances the trace cursor
    /// while priming caches outside of detailed timing.
    pub fn warmup_op(&mut self) -> TraceOp {
        self.trace.next_op()
    }

    /// Delivers a memory response for the load issued with `slot`.
    pub fn complete_load(&mut self, slot: u64) {
        self.completed.insert(slot);
    }

    /// Accounts for `cycles` skipped cycles during which this core was
    /// quiescent (the event engine's bulk replay of what per-cycle polling
    /// would have recorded): every skipped cycle counts as simulated, and
    /// if the ROB head is an incomplete load each one is a memory stall —
    /// exactly what [`Core::tick`] would have done, cycle by cycle.
    ///
    /// Only legal when [`Wake::next_event`] deemed the core quiescent past
    /// the skipped range (debug-asserted).
    pub fn skip_idle(&mut self, cycles: u64) {
        debug_assert!(
            self.store_buffer.is_empty() && self.rob.len() == self.rob_cap,
            "skip_idle on a non-quiescent core"
        );
        self.stats.cycles.add(cycles);
        match self.rob.front() {
            Some(RobEntry::HitLoad(_)) => self.stats.load_stall_cycles.add(cycles),
            Some(RobEntry::PendingLoad(slot)) => {
                debug_assert!(
                    !self.completed.contains(slot),
                    "skip_idle past a completed load"
                );
                self.stats.load_stall_cycles.add(cycles);
            }
            // Ready(at > now) blocks retirement without any stall counter
            // (`retire`'s catch-all break); Stalled* heads are excluded by
            // the quiescence check in `next_event`.
            _ => {}
        }
    }

    /// Advances the core by one cycle against `port`.
    pub fn tick(&mut self, now: Cycle, port: &mut impl MemoryPort, prof: &mut Profiler) {
        self.stats.cycles.inc();
        self.drain_store_buffer(now, port, prof);
        self.retry_stalled(now, port, prof);
        self.retire(now);
        self.issue(now, port, prof);
    }

    /// Oldest-first: try to un-stall entries that were rejected earlier.
    fn retry_stalled(&mut self, now: Cycle, port: &mut impl MemoryPort, prof: &mut Profiler) {
        for i in 0..self.rob.len() {
            let entry = self.rob[i];
            match entry {
                RobEntry::StalledLoad(addr) => {
                    match port.load(now, self.id, self.next_slot, addr, prof) {
                        PortResult::Hit { latency } => {
                            self.rob[i] = RobEntry::HitLoad(now + latency);
                            self.stalled_entries -= 1;
                            self.stats.loads.inc();
                        }
                        PortResult::Accepted => {
                            self.rob[i] = RobEntry::PendingLoad(self.next_slot);
                            self.stalled_entries -= 1;
                            self.next_slot += 1;
                            self.stats.loads.inc();
                        }
                        PortResult::Rejected => {
                            self.stats.rejections.inc();
                            return; // keep ordering: stop at first stall
                        }
                    }
                }
                RobEntry::StalledStore(addr) => {
                    if self.store_buffer.len() < self.store_cap {
                        self.store_buffer.push_back(addr);
                        self.rob[i] = RobEntry::Ready(now);
                        self.stalled_entries -= 1;
                    } else {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    fn drain_store_buffer(&mut self, now: Cycle, port: &mut impl MemoryPort, prof: &mut Profiler) {
        if let Some(&addr) = self.store_buffer.front() {
            if port.store(now, self.id, addr, prof) {
                self.store_buffer.pop_front();
                self.stats.stores.inc();
            }
        }
    }

    fn retire(&mut self, now: Cycle) {
        if self.rob.is_empty() {
            self.stats.empty_cycles.inc();
            return;
        }
        for _ in 0..self.retire_w {
            match self.rob.front() {
                Some(RobEntry::Ready(at)) if *at <= now => {
                    self.rob.pop_front();
                    self.stats.retired.inc();
                }
                Some(RobEntry::HitLoad(at)) if *at <= now => {
                    self.rob.pop_front();
                    self.stats.retired.inc();
                }
                Some(RobEntry::HitLoad(_)) => {
                    self.stats.load_stall_cycles.inc();
                    break;
                }
                Some(RobEntry::PendingLoad(slot)) => {
                    if self.completed.remove(slot) {
                        self.rob.pop_front();
                        self.stats.retired.inc();
                    } else {
                        self.stats.load_stall_cycles.inc();
                        break;
                    }
                }
                Some(RobEntry::StalledLoad(_)) => {
                    self.stats.load_stall_cycles.inc();
                    break;
                }
                _ => break,
            }
        }
    }

    fn issue(&mut self, now: Cycle, port: &mut impl MemoryPort, prof: &mut Profiler) {
        for _ in 0..self.issue_w {
            if self.rob.len() == self.rob_cap {
                return;
            }
            // Refill the pending op if drained.
            if self.pending_gap == 0 && self.pending_mem.is_none() {
                let TraceOp { gap, mem } = self.trace.next_op();
                self.pending_gap = gap;
                self.pending_mem = mem;
                if gap == 0 && mem.is_none() {
                    continue; // degenerate op; pull another next slot
                }
            }
            if self.pending_gap > 0 {
                self.pending_gap -= 1;
                self.rob.push_back(RobEntry::Ready(now + 1));
                continue;
            }
            let Some((addr, kind)) = self.pending_mem.take() else {
                continue;
            };
            match kind {
                AccessKind::Read => match port.load(now, self.id, self.next_slot, addr, prof) {
                    PortResult::Hit { latency } => {
                        self.rob.push_back(RobEntry::HitLoad(now + latency));
                        self.stats.loads.inc();
                    }
                    PortResult::Accepted => {
                        self.rob.push_back(RobEntry::PendingLoad(self.next_slot));
                        self.next_slot += 1;
                        self.stats.loads.inc();
                    }
                    PortResult::Rejected => {
                        self.rob.push_back(RobEntry::StalledLoad(addr));
                        self.stalled_entries += 1;
                        self.stats.rejections.inc();
                        return;
                    }
                },
                AccessKind::Write => {
                    if self.store_buffer.len() < self.store_cap {
                        self.store_buffer.push_back(addr);
                        self.rob.push_back(RobEntry::Ready(now + 1));
                    } else {
                        self.rob.push_back(RobEntry::StalledStore(addr));
                        self.stalled_entries += 1;
                        return;
                    }
                }
            }
        }
    }
}

impl Wake for Core {
    /// A core must tick on the very next cycle whenever anything in it can
    /// act: a store waiting to drain, ROB space to issue into (the trace
    /// never ends, so issue always makes progress), a stalled entry to
    /// retry against the port, or a retirable head. The only quiescent
    /// shape is a full ROB whose head is waiting on time (wake at its
    /// completion cycle) or on a memory response (wake on the response —
    /// an external event, so `None` here).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.store_buffer.is_empty() || self.rob.len() < self.rob_cap {
            return Some(now + 1);
        }
        debug_assert_eq!(
            self.stalled_entries,
            self.rob
                .iter()
                .filter(|e| matches!(e, RobEntry::StalledLoad(_) | RobEntry::StalledStore(_)))
                .count(),
            "stalled-entry counter drifted from the ROB"
        );
        if self.stalled_entries > 0 {
            return Some(now + 1);
        }
        match self.rob.front() {
            Some(&(RobEntry::Ready(at) | RobEntry::HitLoad(at))) => Some(at.max(now + 1)),
            Some(&RobEntry::PendingLoad(slot)) => self.completed.contains(&slot).then_some(now + 1),
            // Stalled heads were handled above; an empty ROB is below
            // capacity. Conservative fallback: tick next cycle.
            _ => Some(now + 1),
        }
    }
}

impl Snapshot for Core {
    fn save_state(&self) -> Value {
        let rob: Vec<(u8, u64)> = self.rob.iter().map(|e| e.pack()).collect();
        let mut completed: Vec<u64> = self.completed.iter().copied().collect();
        completed.sort_unstable();
        Value::Map(vec![
            ("rob".into(), rob.to_value()),
            ("store_buffer".into(), self.store_buffer.to_value()),
            ("pending_gap".into(), self.pending_gap.to_value()),
            ("pending_mem".into(), self.pending_mem.to_value()),
            ("next_slot".into(), self.next_slot.to_value()),
            ("completed".into(), completed.to_value()),
            ("stats".into(), self.stats.to_value()),
            ("trace".into(), self.trace.save_state()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let rob_raw: Vec<(u8, u64)> = decode(state, "rob")?;
        let mut rob = VecDeque::with_capacity(self.rob_cap);
        for (tag, payload) in rob_raw {
            rob.push_back(RobEntry::unpack(tag, payload)?);
        }
        self.rob = rob;
        self.stalled_entries = self
            .rob
            .iter()
            .filter(|e| matches!(e, RobEntry::StalledLoad(_) | RobEntry::StalledStore(_)))
            .count();
        self.store_buffer = decode(state, "store_buffer")?;
        self.pending_gap = decode(state, "pending_gap")?;
        self.pending_mem = decode(state, "pending_mem")?;
        self.next_slot = decode(state, "next_slot")?;
        let completed: Vec<u64> = decode(state, "completed")?;
        self.completed = completed.into_iter().collect();
        self.stats = decode(state, "stats")?;
        self.trace.restore_state(field(state, "trace")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use camps_types::config::SystemConfig;

    /// A memory that always hits with a fixed latency.
    struct FlatMemory {
        latency: Cycle,
        loads: u64,
        stores: u64,
    }

    impl MemoryPort for FlatMemory {
        fn load(
            &mut self,
            _now: Cycle,
            _core: CoreId,
            _slot: u64,
            _addr: PhysAddr,
            _prof: &mut Profiler,
        ) -> PortResult {
            self.loads += 1;
            PortResult::Hit {
                latency: self.latency,
            }
        }
        fn store(
            &mut self,
            _now: Cycle,
            _core: CoreId,
            _addr: PhysAddr,
            _prof: &mut Profiler,
        ) -> bool {
            self.stores += 1;
            true
        }
    }

    /// A memory that accepts loads and completes them after a delay the
    /// test controls.
    #[derive(Default)]
    struct PendingMemory {
        accepted: Vec<(u64, Cycle)>,
        reject: bool,
    }

    impl MemoryPort for PendingMemory {
        fn load(
            &mut self,
            now: Cycle,
            _core: CoreId,
            slot: u64,
            _addr: PhysAddr,
            _prof: &mut Profiler,
        ) -> PortResult {
            if self.reject {
                return PortResult::Rejected;
            }
            self.accepted.push((slot, now));
            PortResult::Accepted
        }
        fn store(
            &mut self,
            _now: Cycle,
            _core: CoreId,
            _addr: PhysAddr,
            _prof: &mut Profiler,
        ) -> bool {
            !self.reject
        }
    }

    fn cfg() -> CpuConfig {
        SystemConfig::paper_default().cpu
    }

    fn run(core: &mut Core, port: &mut impl MemoryPort, cycles: u64) {
        for now in 1..=cycles {
            core.tick(now, port, &mut Profiler::off());
        }
    }

    #[test]
    fn pure_compute_reaches_issue_width_ipc() {
        let trace = VecTrace::new("alu", vec![TraceOp::compute(16)]);
        let mut core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut mem = FlatMemory {
            latency: 2,
            loads: 0,
            stores: 0,
        };
        run(&mut core, &mut mem, 10_000);
        let ipc = core.stats().ipc();
        assert!(ipc > 3.8 && ipc <= 4.0, "compute-bound IPC ≈ 4, got {ipc}");
    }

    #[test]
    fn long_latency_loads_throttle_ipc() {
        let trace = VecTrace::new("mem", vec![TraceOp::load(3, PhysAddr(0x40))]);
        let mut fast_core = Core::new(CoreId(0), &cfg(), Box::new(trace.clone()));
        let mut slow_core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut fast = FlatMemory {
            latency: 2,
            loads: 0,
            stores: 0,
        };
        let mut slow = FlatMemory {
            latency: 400,
            loads: 0,
            stores: 0,
        };
        run(&mut fast_core, &mut fast, 20_000);
        run(&mut slow_core, &mut slow, 20_000);
        assert!(
            fast_core.stats().ipc() > 2.0 * slow_core.stats().ipc(),
            "fast {} vs slow {}",
            fast_core.stats().ipc(),
            slow_core.stats().ipc()
        );
        assert!(slow_core.stats().load_stall_cycles.get() > 0);
    }

    #[test]
    fn rob_bounds_outstanding_loads() {
        // Pure pointer-chase trace: every instruction is a load.
        let trace = VecTrace::new("chase", vec![TraceOp::load(0, PhysAddr(0x40))]);
        let mut core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut mem = PendingMemory::default();
        // Never complete anything: the core must stop at the ROB limit.
        run(&mut core, &mut mem, 5_000);
        assert_eq!(mem.accepted.len() as u32, cfg().rob_entries);
        assert_eq!(core.stats().retired.get(), 0);
    }

    #[test]
    fn completions_unblock_retirement_in_order() {
        let trace = VecTrace::new("mem", vec![TraceOp::load(0, PhysAddr(0x40))]);
        let mut core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut mem = PendingMemory::default();
        run(&mut core, &mut mem, 100);
        let first_slots: Vec<u64> = mem.accepted.iter().map(|&(s, _)| s).take(8).collect();
        for s in first_slots {
            core.complete_load(s);
        }
        let before = core.stats().retired.get();
        run(&mut core, &mut mem, 10); // ticks 1..=10 again is fine: time only gates Ready
        assert_eq!(core.stats().retired.get(), before + 8);
    }

    #[test]
    fn port_rejection_stalls_issue_and_counts() {
        let trace = VecTrace::new("mem", vec![TraceOp::load(0, PhysAddr(0x40))]);
        let mut core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut mem = PendingMemory {
            reject: true,
            ..Default::default()
        };
        run(&mut core, &mut mem, 50);
        assert!(core.stats().rejections.get() > 0);
        assert!(mem.accepted.is_empty());
        // Un-block the port: the stalled load issues.
        mem.reject = false;
        run(&mut core, &mut mem, 5);
        assert!(!mem.accepted.is_empty());
    }

    #[test]
    fn stores_post_through_store_buffer() {
        let trace = VecTrace::new("st", vec![TraceOp::store(1, PhysAddr(0x80))]);
        let mut core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut mem = FlatMemory {
            latency: 2,
            loads: 0,
            stores: 0,
        };
        run(&mut core, &mut mem, 1_000);
        assert!(mem.stores > 0);
        // Stores never block retirement here: IPC stays near width limits.
        assert!(core.stats().ipc() > 0.9, "ipc {}", core.stats().ipc());
    }

    #[test]
    fn core_snapshot_restores_identical_execution() {
        // Mixed trace with loads, stores, and compute so the snapshot
        // covers the ROB, store buffer, pending-op state, and the trace
        // cursor mid-stream.
        let ops = vec![
            TraceOp::compute(3),
            TraceOp::load(1, PhysAddr(0x40)),
            TraceOp::store(2, PhysAddr(0x80)),
            TraceOp::load(0, PhysAddr(0xC0)),
        ];
        let trace = VecTrace::new("mix", ops.clone());
        let mut a = Core::new(CoreId(0), &cfg(), Box::new(trace));
        let mut mem_a = FlatMemory {
            latency: 7,
            loads: 0,
            stores: 0,
        };
        run(&mut a, &mut mem_a, 137);
        let state = a.save_state();

        let mut b = Core::new(CoreId(0), &cfg(), Box::new(VecTrace::new("mix", ops)));
        b.restore_state(&state).unwrap();
        assert_eq!(a.stats(), b.stats());

        let mut mem_b = FlatMemory {
            latency: 7,
            loads: 0,
            stores: 0,
        };
        for now in 138..=400 {
            a.tick(now, &mut mem_a, &mut Profiler::off());
            b.tick(now, &mut mem_b, &mut Profiler::off());
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.rob_occupancy(), b.rob_occupancy());
    }

    #[test]
    fn core_restore_rejects_garbage_shapes() {
        let trace = VecTrace::new("x", vec![TraceOp::compute(1)]);
        let mut core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        assert!(core.restore_state(&Value::U64(1)).is_err());
        // A valid map with a corrupt ROB tag is also a typed error.
        let mut state = match Core::new(
            CoreId(0),
            &cfg(),
            Box::new(VecTrace::new("x", vec![TraceOp::compute(1)])),
        )
        .save_state()
        {
            Value::Map(m) => m,
            other => panic!("expected map, got {other:?}"),
        };
        for entry in &mut state {
            if entry.0 == "rob" {
                entry.1 = vec![(9u8, 0u64)].to_value();
            }
        }
        let err = core.restore_state(&Value::Map(state)).unwrap_err();
        assert!(err.to_string().contains("RobEntry tag"));
    }

    #[test]
    fn ipc_zero_before_any_cycle() {
        let trace = VecTrace::new("x", vec![TraceOp::compute(1)]);
        let core = Core::new(CoreId(0), &cfg(), Box::new(trace));
        assert_eq!(core.stats().ipc(), 0.0);
    }
}
