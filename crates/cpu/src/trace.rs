//! The instruction-trace interface consumed by the core model.
//!
//! A trace is an infinite stream of [`TraceOp`]s: "execute `gap` plain
//! ALU instructions, then (optionally) one memory operation". Workload
//! generators (in `camps-workloads`) implement [`TraceSource`]; tests use
//! the replaying [`VecTrace`].

use camps_types::addr::PhysAddr;
use camps_types::request::AccessKind;
use serde::value::Value;
use serde::{de, Deserialize, Serialize};

/// One step of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions preceding the memory operation.
    pub gap: u32,
    /// The memory operation, if any.
    pub mem: Option<(PhysAddr, AccessKind)>,
}

impl TraceOp {
    /// A pure-compute chunk.
    #[must_use]
    pub fn compute(gap: u32) -> Self {
        Self { gap, mem: None }
    }

    /// `gap` ALU instructions followed by a load of `addr`.
    #[must_use]
    pub fn load(gap: u32, addr: PhysAddr) -> Self {
        Self {
            gap,
            mem: Some((addr, AccessKind::Read)),
        }
    }

    /// `gap` ALU instructions followed by a store to `addr`.
    #[must_use]
    pub fn store(gap: u32, addr: PhysAddr) -> Self {
        Self {
            gap,
            mem: Some((addr, AccessKind::Write)),
        }
    }

    /// Instructions this op contributes (gap + the memory op itself).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + u64::from(self.mem.is_some())
    }
}

/// An infinite instruction stream.
pub trait TraceSource: Send {
    /// Produces the next step. Must never terminate (benchmarks loop).
    fn next_op(&mut self) -> TraceOp;

    /// Human-readable name (benchmark name in the Table II mixes).
    fn name(&self) -> &str;

    /// Captures the stream's cursor state for checkpointing. Sources
    /// whose state is fully determined by construction return
    /// [`Value::Null`] (the default).
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Overlays cursor state captured by [`TraceSource::save_state`] on an
    /// identically constructed source.
    ///
    /// # Errors
    /// Returns a deserialization error on a shape mismatch (snapshot from
    /// a different source kind or a format break).
    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let _ = state;
        Ok(())
    }
}

/// A trace that replays a fixed op sequence forever — test workhorse.
#[derive(Debug, Clone)]
pub struct VecTrace {
    ops: Vec<TraceOp>,
    pos: usize,
    name: String,
}

impl VecTrace {
    /// Wraps `ops` (must be nonempty) into a looping trace.
    ///
    /// # Panics
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must have at least one op");
        Self {
            ops,
            pos: 0,
            name: name.into(),
        }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self) -> Value {
        self.pos.to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let pos = usize::from_value(state)?;
        if pos >= self.ops.len() {
            return Err(de::Error::custom(format!(
                "VecTrace cursor {pos} out of range for {} ops",
                self.ops.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_counts() {
        assert_eq!(TraceOp::compute(5).instructions(), 5);
        assert_eq!(TraceOp::load(3, PhysAddr(0)).instructions(), 4);
        assert_eq!(TraceOp::store(0, PhysAddr(0)).instructions(), 1);
    }

    #[test]
    fn vec_trace_loops_forever() {
        let mut t = VecTrace::new(
            "t",
            vec![TraceOp::compute(1), TraceOp::load(0, PhysAddr(64))],
        );
        assert_eq!(t.next_op(), TraceOp::compute(1));
        assert_eq!(t.next_op(), TraceOp::load(0, PhysAddr(64)));
        assert_eq!(t.next_op(), TraceOp::compute(1));
        assert_eq!(t.name(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_trace_panics() {
        let _ = VecTrace::new("e", vec![]);
    }

    #[test]
    fn vec_trace_cursor_snapshots_and_restores() {
        let ops = vec![
            TraceOp::compute(1),
            TraceOp::load(0, PhysAddr(64)),
            TraceOp::store(2, PhysAddr(128)),
        ];
        let mut a = VecTrace::new("t", ops.clone());
        a.next_op();
        a.next_op();
        let state = a.save_state();
        let mut b = VecTrace::new("t", ops);
        b.restore_state(&state).unwrap();
        for _ in 0..7 {
            assert_eq!(a.next_op(), b.next_op());
        }
        // An out-of-range cursor is a shape error, not a panic.
        assert!(b.restore_state(&Value::U64(99)).is_err());
    }
}
