//! The instruction-trace interface consumed by the core model.
//!
//! A trace is an infinite stream of [`TraceOp`]s: "execute `gap` plain
//! ALU instructions, then (optionally) one memory operation". Workload
//! generators (in `camps-workloads`) implement [`TraceSource`]; tests use
//! the replaying [`VecTrace`].

use camps_types::addr::PhysAddr;
use camps_types::request::AccessKind;

/// One step of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions preceding the memory operation.
    pub gap: u32,
    /// The memory operation, if any.
    pub mem: Option<(PhysAddr, AccessKind)>,
}

impl TraceOp {
    /// A pure-compute chunk.
    #[must_use]
    pub fn compute(gap: u32) -> Self {
        Self { gap, mem: None }
    }

    /// `gap` ALU instructions followed by a load of `addr`.
    #[must_use]
    pub fn load(gap: u32, addr: PhysAddr) -> Self {
        Self {
            gap,
            mem: Some((addr, AccessKind::Read)),
        }
    }

    /// `gap` ALU instructions followed by a store to `addr`.
    #[must_use]
    pub fn store(gap: u32, addr: PhysAddr) -> Self {
        Self {
            gap,
            mem: Some((addr, AccessKind::Write)),
        }
    }

    /// Instructions this op contributes (gap + the memory op itself).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + u64::from(self.mem.is_some())
    }
}

/// An infinite instruction stream.
pub trait TraceSource: Send {
    /// Produces the next step. Must never terminate (benchmarks loop).
    fn next_op(&mut self) -> TraceOp;

    /// Human-readable name (benchmark name in the Table II mixes).
    fn name(&self) -> &str;
}

/// A trace that replays a fixed op sequence forever — test workhorse.
#[derive(Debug, Clone)]
pub struct VecTrace {
    ops: Vec<TraceOp>,
    pos: usize,
    name: String,
}

impl VecTrace {
    /// Wraps `ops` (must be nonempty) into a looping trace.
    ///
    /// # Panics
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must have at least one op");
        Self {
            ops,
            pos: 0,
            name: name.into(),
        }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_counts() {
        assert_eq!(TraceOp::compute(5).instructions(), 5);
        assert_eq!(TraceOp::load(3, PhysAddr(0)).instructions(), 4);
        assert_eq!(TraceOp::store(0, PhysAddr(0)).instructions(), 1);
    }

    #[test]
    fn vec_trace_loops_forever() {
        let mut t = VecTrace::new(
            "t",
            vec![TraceOp::compute(1), TraceOp::load(0, PhysAddr(64))],
        );
        assert_eq!(t.next_op(), TraceOp::compute(1));
        assert_eq!(t.next_op(), TraceOp::load(0, PhysAddr(64)));
        assert_eq!(t.next_op(), TraceOp::compute(1));
        assert_eq!(t.name(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_trace_panics() {
        let _ = VecTrace::new("e", vec![]);
    }
}
