//! Binary trace capture and replay.
//!
//! Lets users run the simulator on *recorded* instruction traces — e.g.
//! converted from Pin/DynamoRIO/Valgrind logs of real programs — instead
//! of the synthetic generators, and lets experiments snapshot a generator's
//! stream for exact cross-scheme replay.
//!
//! Format (`.camps-trace`, little-endian):
//!
//! ```text
//! magic   8 B   "CAMPSTRC"
//! version u32   1
//! count   u64   number of records
//! record  ×count:
//!   gap   u32   ALU instructions before the memory op
//!   kind  u8    0 = no memory op, 1 = load, 2 = store
//!   addr  u64   physical address (present only when kind != 0)
//! ```

use crate::trace::{TraceOp, TraceSource};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use camps_types::addr::PhysAddr;
use camps_types::error::{SimError, TraceError};
use camps_types::request::AccessKind;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"CAMPSTRC";
const VERSION: u32 = 1;

/// Serializes trace ops into the binary format.
#[derive(Debug, Default)]
pub struct TraceWriter {
    body: BytesMut,
    count: u64,
}

impl TraceWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one op.
    pub fn push(&mut self, op: &TraceOp) {
        self.body.put_u32_le(op.gap);
        match op.mem {
            None => self.body.put_u8(0),
            Some((addr, kind)) => {
                self.body.put_u8(if kind.is_read() { 1 } else { 2 });
                self.body.put_u64_le(addr.0);
            }
        }
        self.count += 1;
    }

    /// Number of ops recorded so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the trace into its on-disk byte representation.
    #[must_use]
    pub fn into_bytes(self) -> Bytes {
        let mut out = BytesMut::with_capacity(8 + 4 + 8 + self.body.len());
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        out.put_u64_le(self.count);
        out.extend_from_slice(&self.body);
        out.freeze()
    }

    /// Writes the finished trace to `path`.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.into_bytes())
    }
}

/// Records `ops` operations from any trace source into a writer.
pub fn record(source: &mut dyn TraceSource, ops: u64) -> TraceWriter {
    let mut w = TraceWriter::new();
    for _ in 0..ops {
        w.push(&source.next_op());
    }
    w
}

/// A recorded trace, replayed in a loop (like every other
/// [`TraceSource`]).
#[derive(Debug, Clone)]
pub struct FileTrace {
    ops: Vec<TraceOp>,
    pos: usize,
    name: String,
}

impl FileTrace {
    /// Parses a trace from its byte representation.
    ///
    /// # Errors
    /// Every corruption mode has its own [`TraceError`] variant:
    /// truncated header/record, bad magic, unsupported version, unknown
    /// record kind, trailing bytes, and an empty (zero-record) trace.
    pub fn from_bytes(name: impl Into<String>, bytes: &[u8]) -> Result<Self, TraceError> {
        let total = bytes.len();
        let mut buf = bytes;
        if buf.remaining() < 20 {
            return Err(TraceError::TruncatedHeader { len: total });
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let count = buf.get_u64_le();
        if count == 0 {
            return Err(TraceError::Empty);
        }
        let mut ops = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
        for index in 0..count {
            let offset = total - buf.remaining();
            if buf.remaining() < 5 {
                return Err(TraceError::TruncatedRecord { index, offset });
            }
            let gap = buf.get_u32_le();
            let kind = buf.get_u8();
            let mem = match kind {
                0 => None,
                1 | 2 => {
                    if buf.remaining() < 8 {
                        return Err(TraceError::TruncatedRecord { index, offset });
                    }
                    let addr = PhysAddr(buf.get_u64_le());
                    Some((
                        addr,
                        if kind == 1 {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        },
                    ))
                }
                _ => return Err(TraceError::UnknownKind { index, kind }),
            };
            ops.push(TraceOp { gap, mem });
        }
        if buf.remaining() > 0 {
            return Err(TraceError::TrailingBytes {
                remaining: buf.remaining(),
            });
        }
        Ok(Self {
            ops,
            pos: 0,
            name: name.into(),
        })
    }

    /// Loads a trace file from disk.
    ///
    /// # Errors
    /// [`SimError::Io`] when the file cannot be read, [`SimError::Trace`]
    /// when its contents are malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SimError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map_or_else(|| "trace".to_string(), |s| s.to_string_lossy().into_owned());
        let bytes = fs::read(path).map_err(|source| SimError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Ok(Self::from_bytes(name, &bytes)?)
    }

    /// Number of distinct records (one loop iteration).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Never true: construction rejects empty traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self) -> serde::value::Value {
        use serde::Serialize as _;
        self.pos.to_value()
    }

    fn restore_state(&mut self, state: &serde::value::Value) -> Result<(), serde::de::Error> {
        use serde::Deserialize as _;
        let pos = usize::from_value(state)?;
        if pos >= self.ops.len() {
            return Err(serde::de::Error::custom(format!(
                "FileTrace cursor {pos} out of range for {} ops",
                self.ops.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use proptest::prelude::*;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::compute(3),
            TraceOp::load(2, PhysAddr(0x1000)),
            TraceOp::store(0, PhysAddr(0xFFFF_FFFF_FF40)),
        ]
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut w = TraceWriter::new();
        for op in sample_ops() {
            w.push(&op);
        }
        assert_eq!(w.len(), 3);
        let bytes = w.into_bytes();
        let mut t = FileTrace::from_bytes("rt", &bytes).unwrap();
        for expect in sample_ops() {
            assert_eq!(t.next_op(), expect);
        }
        // Loops.
        assert_eq!(t.next_op(), sample_ops()[0]);
    }

    #[test]
    fn record_captures_from_any_source() {
        let mut src = VecTrace::new("src", sample_ops());
        let w = record(&mut src, 7);
        assert_eq!(w.len(), 7);
        let t = FileTrace::from_bytes("cap", &w.into_bytes()).unwrap();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("camps-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.camps-trace");
        let mut w = TraceWriter::new();
        for op in sample_ops() {
            w.push(&op);
        }
        w.save(&path).unwrap();
        let mut t = FileTrace::load(&path).unwrap();
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 3);
        assert_eq!(t.next_op(), sample_ops()[0]);
        std::fs::remove_file(path).unwrap();
    }

    /// Header (magic + version + count) followed by `records`.
    fn with_header(count: u64, records: &[u8]) -> BytesMut {
        let mut b = BytesMut::new();
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION);
        b.put_u64_le(count);
        b.put_slice(records);
        b
    }

    #[test]
    fn truncated_header_is_typed() {
        assert_eq!(
            FileTrace::from_bytes("x", b"short").unwrap_err(),
            TraceError::TruncatedHeader { len: 5 }
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = FileTrace::from_bytes("x", b"NOTMAGIC________________").unwrap_err();
        assert_eq!(
            err,
            TraceError::BadMagic {
                found: *b"NOTMAGIC"
            }
        );
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut b = BytesMut::new();
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION + 41);
        b.put_u64_le(1);
        assert_eq!(
            FileTrace::from_bytes("x", &b).unwrap_err(),
            TraceError::UnsupportedVersion {
                found: VERSION + 41
            }
        );
    }

    #[test]
    fn truncated_body_is_typed() {
        // Header claims 5 records; body has none.
        let err = FileTrace::from_bytes("x", &with_header(5, &[])).unwrap_err();
        assert_eq!(
            err,
            TraceError::TruncatedRecord {
                index: 0,
                offset: 20
            }
        );
        // Second record cut off inside its address payload.
        let mut records = BytesMut::new();
        records.put_u32_le(1);
        records.put_u8(0); // record 0: compute-only, complete
        records.put_u32_le(2);
        records.put_u8(1); // record 1: load, but the 8-byte address is missing
        let err = FileTrace::from_bytes("x", &with_header(2, &records)).unwrap_err();
        assert_eq!(
            err,
            TraceError::TruncatedRecord {
                index: 1,
                offset: 25
            }
        );
    }

    #[test]
    fn zero_record_trace_is_typed() {
        assert_eq!(
            FileTrace::from_bytes("x", &with_header(0, &[])).unwrap_err(),
            TraceError::Empty
        );
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut records = BytesMut::new();
        records.put_u32_le(0);
        records.put_u8(7); // bogus kind
        assert_eq!(
            FileTrace::from_bytes("x", &with_header(1, &records)).unwrap_err(),
            TraceError::UnknownKind { index: 0, kind: 7 }
        );
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut records = BytesMut::new();
        records.put_u32_le(0);
        records.put_u8(0);
        records.put_slice(&[0xEE; 3]); // 3 bytes past the declared count
        assert_eq!(
            FileTrace::from_bytes("x", &with_header(1, &records)).unwrap_err(),
            TraceError::TrailingBytes { remaining: 3 }
        );
    }

    #[test]
    fn fault_plan_truncation_yields_typed_error() {
        let mut w = TraceWriter::new();
        for op in sample_ops() {
            w.push(&op);
        }
        let intact = w.into_bytes().to_vec();
        let plan = camps_types::FaultPlan {
            trace_truncate_to: 24, // header + part of the first record
            ..camps_types::FaultPlan::default()
        };
        let mangled = plan.mangle_trace_bytes(intact.clone());
        assert!(matches!(
            FileTrace::from_bytes("x", &mangled).unwrap_err(),
            TraceError::TruncatedRecord { .. }
        ));
        let plan = camps_types::FaultPlan {
            trace_corrupt_magic: true,
            ..camps_types::FaultPlan::default()
        };
        let mangled = plan.mangle_trace_bytes(intact);
        assert!(matches!(
            FileTrace::from_bytes("x", &mangled).unwrap_err(),
            TraceError::BadMagic { .. }
        ));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = FileTrace::load("/nonexistent/dir/missing.camps-trace").unwrap_err();
        assert!(matches!(err, SimError::Io { .. }));
        assert!(err.to_string().contains("missing.camps-trace"));
    }

    proptest! {
        #[test]
        fn arbitrary_ops_roundtrip(
            raw in prop::collection::vec((0u32..1000, 0u8..3, any::<u64>()), 1..200)
        ) {
            let ops: Vec<TraceOp> = raw
                .iter()
                .map(|&(gap, kind, addr)| TraceOp {
                    gap,
                    mem: match kind {
                        0 => None,
                        1 => Some((PhysAddr(addr), AccessKind::Read)),
                        _ => Some((PhysAddr(addr), AccessKind::Write)),
                    },
                })
                .collect();
            let mut w = TraceWriter::new();
            for op in &ops {
                w.push(op);
            }
            let mut t = FileTrace::from_bytes("p", &w.into_bytes()).unwrap();
            for expect in &ops {
                prop_assert_eq!(t.next_op(), *expect);
            }
        }
    }
}
