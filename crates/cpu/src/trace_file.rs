//! Binary trace capture and replay.
//!
//! Lets users run the simulator on *recorded* instruction traces — e.g.
//! converted from Pin/DynamoRIO/Valgrind logs of real programs — instead
//! of the synthetic generators, and lets experiments snapshot a generator's
//! stream for exact cross-scheme replay.
//!
//! Format (`.camps-trace`, little-endian):
//!
//! ```text
//! magic   8 B   "CAMPSTRC"
//! version u32   1
//! count   u64   number of records
//! record  ×count:
//!   gap   u32   ALU instructions before the memory op
//!   kind  u8    0 = no memory op, 1 = load, 2 = store
//!   addr  u64   physical address (present only when kind != 0)
//! ```

use crate::trace::{TraceOp, TraceSource};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use camps_types::addr::PhysAddr;
use camps_types::request::AccessKind;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"CAMPSTRC";
const VERSION: u32 = 1;

/// Serializes trace ops into the binary format.
#[derive(Debug, Default)]
pub struct TraceWriter {
    body: BytesMut,
    count: u64,
}

impl TraceWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one op.
    pub fn push(&mut self, op: &TraceOp) {
        self.body.put_u32_le(op.gap);
        match op.mem {
            None => self.body.put_u8(0),
            Some((addr, kind)) => {
                self.body.put_u8(if kind.is_read() { 1 } else { 2 });
                self.body.put_u64_le(addr.0);
            }
        }
        self.count += 1;
    }

    /// Number of ops recorded so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the trace into its on-disk byte representation.
    #[must_use]
    pub fn into_bytes(self) -> Bytes {
        let mut out = BytesMut::with_capacity(8 + 4 + 8 + self.body.len());
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        out.put_u64_le(self.count);
        out.extend_from_slice(&self.body);
        out.freeze()
    }

    /// Writes the finished trace to `path`.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.into_bytes())
    }
}

/// Records `ops` operations from any trace source into a writer.
pub fn record(source: &mut dyn TraceSource, ops: u64) -> TraceWriter {
    let mut w = TraceWriter::new();
    for _ in 0..ops {
        w.push(&source.next_op());
    }
    w
}

/// A recorded trace, replayed in a loop (like every other
/// [`TraceSource`]).
#[derive(Debug, Clone)]
pub struct FileTrace {
    ops: Vec<TraceOp>,
    pos: usize,
    name: String,
}

impl FileTrace {
    /// Parses a trace from its byte representation.
    ///
    /// # Errors
    /// Returns `InvalidData` on bad magic, version, truncation, or an
    /// empty trace.
    pub fn from_bytes(name: impl Into<String>, bytes: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut buf = bytes;
        if buf.remaining() < 20 {
            return Err(bad("trace header truncated"));
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(bad("not a CAMPS trace (bad magic)"));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(bad("unsupported trace version"));
        }
        let count = buf.get_u64_le();
        if count == 0 {
            return Err(bad("empty trace"));
        }
        let mut ops = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
        for _ in 0..count {
            if buf.remaining() < 5 {
                return Err(bad("trace record truncated"));
            }
            let gap = buf.get_u32_le();
            let kind = buf.get_u8();
            let mem = match kind {
                0 => None,
                1 | 2 => {
                    if buf.remaining() < 8 {
                        return Err(bad("trace record truncated"));
                    }
                    let addr = PhysAddr(buf.get_u64_le());
                    Some((
                        addr,
                        if kind == 1 {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        },
                    ))
                }
                _ => return Err(bad("unknown record kind")),
            };
            ops.push(TraceOp { gap, mem });
        }
        Ok(Self {
            ops,
            pos: 0,
            name: name.into(),
        })
    }

    /// Loads a trace file from disk.
    ///
    /// # Errors
    /// Propagates I/O and format failures.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let name = path
            .as_ref()
            .file_stem()
            .map_or_else(|| "trace".to_string(), |s| s.to_string_lossy().into_owned());
        let bytes = fs::read(path)?;
        Self::from_bytes(name, &bytes)
    }

    /// Number of distinct records (one loop iteration).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Never true: construction rejects empty traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use proptest::prelude::*;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::compute(3),
            TraceOp::load(2, PhysAddr(0x1000)),
            TraceOp::store(0, PhysAddr(0xFFFF_FFFF_FF40)),
        ]
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut w = TraceWriter::new();
        for op in sample_ops() {
            w.push(&op);
        }
        assert_eq!(w.len(), 3);
        let bytes = w.into_bytes();
        let mut t = FileTrace::from_bytes("rt", &bytes).unwrap();
        for expect in sample_ops() {
            assert_eq!(t.next_op(), expect);
        }
        // Loops.
        assert_eq!(t.next_op(), sample_ops()[0]);
    }

    #[test]
    fn record_captures_from_any_source() {
        let mut src = VecTrace::new("src", sample_ops());
        let w = record(&mut src, 7);
        assert_eq!(w.len(), 7);
        let t = FileTrace::from_bytes("cap", &w.into_bytes()).unwrap();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("camps-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.camps-trace");
        let mut w = TraceWriter::new();
        for op in sample_ops() {
            w.push(&op);
        }
        w.save(&path).unwrap();
        let mut t = FileTrace::load(&path).unwrap();
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 3);
        assert_eq!(t.next_op(), sample_ops()[0]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(FileTrace::from_bytes("x", b"short").is_err());
        assert!(FileTrace::from_bytes("x", b"NOTMAGIC________________").is_err());
        // Valid header claiming records that are not there.
        let mut bad = BytesMut::new();
        bad.put_slice(MAGIC);
        bad.put_u32_le(VERSION);
        bad.put_u64_le(5);
        assert!(FileTrace::from_bytes("x", &bad).is_err());
        // Empty trace.
        let mut empty = BytesMut::new();
        empty.put_slice(MAGIC);
        empty.put_u32_le(VERSION);
        empty.put_u64_le(0);
        assert!(FileTrace::from_bytes("x", &empty).is_err());
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut b = BytesMut::new();
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION);
        b.put_u64_le(1);
        b.put_u32_le(0);
        b.put_u8(7); // bogus kind
        assert!(FileTrace::from_bytes("x", &b).is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_ops_roundtrip(
            raw in prop::collection::vec((0u32..1000, 0u8..3, any::<u64>()), 1..200)
        ) {
            let ops: Vec<TraceOp> = raw
                .iter()
                .map(|&(gap, kind, addr)| TraceOp {
                    gap,
                    mem: match kind {
                        0 => None,
                        1 => Some((PhysAddr(addr), AccessKind::Read)),
                        _ => Some((PhysAddr(addr), AccessKind::Write)),
                    },
                })
                .collect();
            let mut w = TraceWriter::new();
            for op in &ops {
                w.push(op);
            }
            let mut t = FileTrace::from_bytes("p", &w.into_bytes()).unwrap();
            for expect in &ops {
                prop_assert_eq!(t.next_op(), *expect);
            }
        }
    }
}
