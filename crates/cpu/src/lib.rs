//! Trace-driven core model.
//!
//! Substitution note (see DESIGN.md §5): the paper simulates 8 out-of-order
//! x86 cores in gem5. The figures, however, are driven entirely by how much
//! memory stall time each scheme removes, which is governed by (a) the
//! demand miss stream and (b) how much memory-level parallelism a core can
//! expose. This crate models exactly those two things: a 4-wide in-order
//! retire / out-of-order complete pipeline with a finite reorder buffer, a
//! store buffer that posts writes, and loads issued to the memory port as
//! soon as they enter the ROB. Retirement blocks when the head is an
//! incomplete load — the classic ROB-limit approximation of an OoO core.

#![warn(missing_docs)]

pub mod core_model;
pub mod trace;
pub mod trace_file;

pub use core_model::{Core, CoreStats, MemoryPort, PortResult};
pub use trace::{TraceOp, TraceSource, VecTrace};
pub use trace_file::{record, FileTrace, TraceWriter};
