//! CAMPS full-system simulator and experiment runner — the crate users
//! depend on.
//!
//! ```no_run
//! use camps::experiment::{run_mix, RunLength};
//! use camps_prefetch::SchemeKind;
//! use camps_types::{SimError, SystemConfig};
//! use camps_workloads::Mix;
//!
//! fn main() -> Result<(), SimError> {
//!     let cfg = SystemConfig::paper_default();
//!     let mix = Mix::by_id("HM1").unwrap();
//!     let result = run_mix(&cfg, mix, SchemeKind::CampsMod, &RunLength::quick(), 42)?;
//!     println!("{}: geomean IPC {:.3}", mix.id, result.geomean_ipc());
//!     Ok(())
//! }
//! ```
//!
//! * [`hmc`] — the cube: serial links + crossbar + 32 vault controllers,
//! * [`system`] — cores + caches + cube wired together; the cycle loop,
//! * [`audit`] — request-lifetime conservation checking,
//! * [`metrics`] — per-run results ([`metrics::RunResult`]),
//! * [`experiment`] — workload × scheme sweeps (rayon-parallel) and the
//!   figure-level aggregations used to regenerate the paper's plots,
//! * [`recovery`] — checkpoint/restore of a mid-flight run plus the
//!   rollback-and-retry driver that survives injected faults,
//! * [`sweep`] — the resilient parallel sweep supervisor: fault-isolated
//!   jobs, retry-with-resume, a crash-safe journal, partial results.
//!
//! Every entry point returns [`Result`](camps_types::SimError)-typed
//! errors: invalid configs, malformed traces, integrity violations, and
//! watchdog trips surface as values, never panics.

#![warn(missing_docs)]

pub mod audit;
pub mod experiment;
pub mod hmc;
pub mod metrics;
pub mod recovery;
pub mod sweep;
pub mod system;
pub mod topology;

pub use audit::RequestAuditor;
pub use experiment::{
    resume_mix, run_matrix, run_mix, run_mix_recoverable, run_mix_with_engine, run_replicated,
    Replicated, RunLength,
};
pub use hmc::HmcDevice;
pub use metrics::{fairness, Fairness, RunResult};
pub use recovery::{
    read_snapshot, run_with_recovery, write_snapshot, RecoveryEvent, RecoveryPolicy, RecoveryReport,
};
pub use sweep::{run_sweep, JobOutcome, JobRecord, SweepPolicy, SweepReport, SweepRun};
pub use system::{Engine, System};
pub use topology::Topology;
