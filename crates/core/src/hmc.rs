//! The Hybrid Memory Cube device: serial links, crossbar, and vaults.
//!
//! Host-side flow (§2.1): requests are packetized into FLITs, serialized
//! over one of the four full-duplex links, routed through the crossbar to
//! the target vault controller, and answered over the reverse path. The
//! request and response directions have independent lanes and token pools.

use camps_link::packet::Packet;
use camps_link::serdes::LinkSet;
use camps_link::Crossbar;
use camps_obs::{Comp, Point, Profiler, TraceHandle};
use camps_prefetch::SchemeKind;
use camps_types::addr::AddressMapping;
use camps_types::clock::Cycle;
use camps_types::config::{FaultPlan, SystemConfig};
use camps_types::error::{SimError, VaultSnapshot};
use camps_types::request::{MemRequest, MemResponse};
use camps_types::snapshot::{decode, field, Snapshot};
use camps_types::wake::{fold_wake, Wake};
use camps_vault::{VaultController, VaultStats};
use serde::value::Value;
use serde::{de, Serialize as _};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Maximum host-controller queue depth (requests waiting for link tokens).
const HOST_QUEUE_DEPTH: usize = 64;

/// The cube.
pub struct HmcDevice {
    mapping: AddressMapping,
    block_bytes: u32,
    link_cfg: camps_types::config::LinkConfig,
    req_links: LinkSet,
    resp_links: LinkSet,
    req_xbar: Crossbar,
    resp_xbar: Crossbar,
    vaults: Vec<VaultController>,
    /// Requests accepted by the host controller, waiting for a link.
    host_queue: VecDeque<MemRequest>,
    /// Request packets in flight: (arrival at vault, seq, packet).
    inflight_req: BinaryHeap<Reverse<(Cycle, u64, Packet)>>,
    /// Packets that reached a full vault queue; retried every cycle.
    vault_retry: Vec<VecDeque<MemRequest>>,
    /// Responses in flight to the host: (delivery, seq, response).
    inflight_resp: BinaryHeap<Reverse<(Cycle, u64, MemResponse)>>,
    /// Responses waiting for response-link tokens.
    resp_queue: VecDeque<MemResponse>,
    /// Link token returns: (cycle, link index, flits, is_response_dir).
    token_returns: BinaryHeap<Reverse<(Cycle, usize, u32, bool)>>,
    /// Scratch for vault responses within a tick.
    vault_out: Vec<MemResponse>,
    seq: u64,
    /// Fault-injection schedule (all-off in normal runs).
    faults: FaultPlan,
    /// Request packets delivered so far (drives `drop_request_every`).
    req_deliveries: u64,
    /// Responses delivered so far (drives `duplicate_response_every`).
    resp_deliveries: u64,
    /// Observability hooks (runtime-only; excluded from `Snapshot`).
    obs: TraceHandle,
    /// The stall-fault instant has been emitted (emit-once latch).
    stall_marked: bool,
}

impl HmcDevice {
    /// Builds the cube with every vault running `scheme`.
    ///
    /// # Errors
    /// [`SimError::Config`] if the configuration fails validation.
    pub fn new(cfg: &SystemConfig, scheme: SchemeKind) -> Result<Self, SimError> {
        cfg.validate()?;
        let mapping = cfg.hmc.address_mapping()?;
        let vaults = (0..cfg.hmc.vaults)
            .map(|v| VaultController::new(v as u16, cfg, scheme))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            mapping,
            block_bytes: cfg.hmc.block_bytes,
            link_cfg: cfg.link,
            req_links: LinkSet::new(&cfg.link, cfg.cpu.freq_hz),
            resp_links: LinkSet::new(&cfg.link, cfg.cpu.freq_hz),
            req_xbar: Crossbar::new(cfg.hmc.vaults, cfg.link.xbar_cycles),
            resp_xbar: Crossbar::new(cfg.link.links, cfg.link.xbar_cycles),
            vaults,
            host_queue: VecDeque::new(),
            inflight_req: BinaryHeap::new(),
            vault_retry: (0..cfg.hmc.vaults).map(|_| VecDeque::new()).collect(),
            inflight_resp: BinaryHeap::new(),
            resp_queue: VecDeque::new(),
            token_returns: BinaryHeap::new(),
            vault_out: Vec::new(),
            seq: 0,
            faults: cfg.faults,
            req_deliveries: 0,
            resp_deliveries: 0,
            obs: TraceHandle::disabled(),
            stall_marked: false,
        })
    }

    /// The address mapping in force.
    #[must_use]
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Installs observability hooks on the cube and every vault.
    pub fn set_obs(&mut self, obs: TraceHandle) {
        for v in &mut self.vaults {
            v.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Offers a demand request to the host-side controller. `false` means
    /// the controller queue is full (caller retries).
    pub fn submit(&mut self, req: MemRequest) -> bool {
        if self.host_queue.len() >= HOST_QUEUE_DEPTH {
            return false;
        }
        self.host_queue.push_back(req);
        true
    }

    /// Host-queue headroom (used by the memory subsystem for pacing).
    #[must_use]
    pub fn headroom(&self) -> usize {
        HOST_QUEUE_DEPTH - self.host_queue.len()
    }

    /// Advances the cube one CPU cycle; responses delivered to the host at
    /// `now` are appended to `out`. `prof` splits the cube's host time
    /// into serdes-link, crossbar, and vault bins.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<MemResponse>, prof: &mut Profiler) {
        debug_assert!(
            self.vault_out.is_empty(),
            "vault scratch not drained between ticks"
        );
        let t = prof.stamp();
        self.return_tokens(now);
        self.launch_requests(now);
        let _ = prof.lap(Comp::SerdesLinks, t);
        // Scoped spans: prefetch-buffer lookups (crossbar) and the
        // vault-internal phase laps nest inside these frames.
        prof.enter(Comp::Crossbar);
        self.deliver_requests(now, prof);
        self.retry_vault_queues(now, prof);
        prof.exit(Comp::Crossbar);
        prof.enter(Comp::VaultTick);
        self.tick_vaults(now, prof);
        let t = prof.exit(Comp::VaultTick);
        self.launch_responses(now);
        self.deliver_responses(now, out);
        let _ = prof.lap(Comp::SerdesLinks, t);
    }

    fn return_tokens(&mut self, now: Cycle) {
        while let Some(Reverse((at, idx, flits, is_resp))) = self.token_returns.peek().copied() {
            if at > now {
                break;
            }
            self.token_returns.pop();
            if is_resp {
                self.resp_links.release(idx, flits);
            } else {
                self.req_links.release(idx, flits);
            }
        }
    }

    fn launch_requests(&mut self, now: Cycle) {
        while let Some(&req) = self.host_queue.front() {
            let packet = Packet::request(req, &self.link_cfg, self.block_bytes);
            let Some((link_idx, exit_link)) = self.req_links.send(&packet, now) else {
                break; // token-blocked; retry next cycle
            };
            self.host_queue.pop_front();
            self.obs.stamp(req.id.0, Point::LinkLaunch, now);
            self.token_returns
                .push(Reverse((exit_link, link_idx, packet.flits, false)));
            let vault = self.mapping.decode(req.addr).vault;
            let arrive = self.req_xbar.route(usize::from(vault), exit_link);
            self.inflight_req.push(Reverse((arrive, self.seq, packet)));
            self.seq += 1;
        }
    }

    fn deliver_requests(&mut self, now: Cycle, prof: &mut Profiler) {
        while self
            .inflight_req
            .peek()
            .is_some_and(|Reverse((at, _, _))| *at <= now)
        {
            let Some(Reverse((_, _, packet))) = self.inflight_req.pop() else {
                break;
            };
            self.req_deliveries += 1;
            if self.faults.drop_request_every > 0
                && self
                    .req_deliveries
                    .is_multiple_of(self.faults.drop_request_every)
            {
                self.obs.mark("fault_drop_request", now);
                self.obs.abort(packet.request.id.0);
                continue; // injected fault: packet vanishes at the crossbar
            }
            let req = packet.request;
            let d = self.mapping.decode(req.addr);
            let v = usize::from(d.vault);
            self.obs.arrive(req.id.0, d.vault, now);
            let pt = prof.stamp();
            let accepted = self.vaults[v].try_enqueue(req, d, now);
            let _ = prof.lap(Comp::PfLookup, pt);
            if !accepted {
                self.vault_retry[v].push_back(req);
            }
        }
    }

    fn retry_vault_queues(&mut self, now: Cycle, prof: &mut Profiler) {
        for v in 0..self.vaults.len() {
            while let Some(&req) = self.vault_retry[v].front() {
                let d = self.mapping.decode(req.addr);
                let pt = prof.stamp();
                let accepted = self.vaults[v].try_enqueue(req, d, now);
                let _ = prof.lap(Comp::PfLookup, pt);
                if accepted {
                    self.vault_retry[v].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn tick_vaults(&mut self, now: Cycle, prof: &mut Profiler) {
        let stalled = (self.faults.stall_vault_from > 0 && now >= self.faults.stall_vault_from)
            .then_some(self.faults.stall_vault as usize);
        for (idx, v) in self.vaults.iter_mut().enumerate() {
            if stalled == Some(idx) {
                if !self.stall_marked {
                    self.obs.mark("fault_vault_stall", now);
                    self.stall_marked = true;
                }
                continue; // injected fault: the vault makes no progress
            }
            v.tick(now, &mut self.vault_out, prof);
        }
        for resp in &self.vault_out {
            self.obs
                .stamp(resp.id.0, Point::RespReady, resp.completed_at);
        }
        self.resp_queue.extend(self.vault_out.drain(..));
    }

    fn launch_responses(&mut self, now: Cycle) {
        while let Some(&resp) = self.resp_queue.front() {
            let req = MemRequest {
                id: resp.id,
                addr: resp.addr,
                kind: resp.kind,
                core: resp.core,
                created_at: resp.created_at,
            };
            let packet = Packet::response(req, &self.link_cfg, self.block_bytes);
            // Crossbar hop from the vault to the link, then serialize.
            let Some(link_idx) = self.resp_links.pick(packet.flits) else {
                break;
            };
            let at_link = self.resp_xbar.route(link_idx, now);
            let Some((idx, delivered)) = self.resp_links.send(&packet, at_link) else {
                break;
            };
            debug_assert_eq!(idx, link_idx);
            self.resp_queue.pop_front();
            self.token_returns
                .push(Reverse((delivered, idx, packet.flits, true)));
            let mut final_resp = resp;
            final_resp.completed_at = delivered;
            self.inflight_resp
                .push(Reverse((delivered, self.seq, final_resp)));
            self.seq += 1;
        }
    }

    fn deliver_responses(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        while self
            .inflight_resp
            .peek()
            .is_some_and(|Reverse((at, _, _))| *at <= now)
        {
            let Some(Reverse((_, _, resp))) = self.inflight_resp.pop() else {
                break;
            };
            self.resp_deliveries += 1;
            if self.faults.duplicate_response_every > 0
                && self
                    .resp_deliveries
                    .is_multiple_of(self.faults.duplicate_response_every)
            {
                self.obs.mark("fault_duplicate_response", now);
                out.push(resp); // injected fault: the response arrives twice
            }
            out.push(resp);
        }
    }

    /// True while any queue, vault, or in-flight packet has work left.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.host_queue.is_empty()
            || !self.inflight_req.is_empty()
            || !self.inflight_resp.is_empty()
            || !self.resp_queue.is_empty()
            || self.vault_retry.iter().any(|q| !q.is_empty())
            || self.vaults.iter().any(VaultController::busy)
    }

    /// Finalizes every vault and returns the merged statistics, including
    /// link FLIT counts folded into the energy model.
    pub fn finalize(&mut self, now: Cycle) -> VaultStats {
        let mut merged = VaultStats::new();
        for v in &mut self.vaults {
            v.finalize(now);
            merged.merge(v.stats());
        }
        let (_, req_flits, _) = self.req_links.stats();
        let (_, resp_flits, _) = self.resp_links.stats();
        merged.energy.link_flits = req_flits + resp_flits;
        merged
    }

    /// Per-vault view (tests, ablations).
    #[must_use]
    pub fn vaults(&self) -> &[VaultController] {
        &self.vaults
    }

    /// Host-controller queue occupancy (watchdog diagnostics).
    #[must_use]
    pub fn host_queue_len(&self) -> usize {
        self.host_queue.len()
    }

    /// Free token counts on the request-direction links.
    #[must_use]
    pub fn req_link_tokens(&self) -> Vec<u32> {
        self.req_links.tokens_free()
    }

    /// Free token counts on the response-direction links.
    #[must_use]
    pub fn resp_link_tokens(&self) -> Vec<u32> {
        self.resp_links.tokens_free()
    }

    /// Replaces the fault-injection schedule (the recovery driver uses
    /// this to quarantine a misbehaving plan after a rollback).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Occupancy snapshots of every vault, with the host-side retry-queue
    /// depths filled in (watchdog diagnostics).
    #[must_use]
    pub fn vault_snapshots(&self) -> Vec<VaultSnapshot> {
        self.vaults
            .iter()
            .zip(&self.vault_retry)
            .map(|(v, retry)| {
                let mut snap = v.snapshot();
                snap.retry_q = retry.len();
                snap
            })
            .collect()
    }
}

impl Wake for HmcDevice {
    /// Earliest cycle at which the cube can make progress: the heads of
    /// the three timestamped heaps (token returns, in-flight requests,
    /// in-flight responses), an immediate wake whenever a queue head could
    /// launch this instant (host queue with link tokens free, response
    /// queue with response tokens free, or any non-empty vault retry queue
    /// — retries probe the prefetch buffer and count lookups, so they must
    /// run every cycle), and the earliest wake of every vault. Token-blocked
    /// queue heads need no wake of their own: the tokens they wait for are
    /// always represented by a pending `token_returns` entry.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let next = now + 1;
        // Cheapest immediate-wake sources first: once the answer is
        // `now + 1` nothing can beat it, so stop scanning.
        if self.vault_retry.iter().any(|q| !q.is_empty()) {
            return Some(next);
        }
        if let Some(&req) = self.host_queue.front() {
            let flits = Packet::request_flits(req.kind, &self.link_cfg, self.block_bytes);
            if self.req_links.pick(flits).is_some() {
                return Some(next);
            }
        }
        if let Some(&resp) = self.resp_queue.front() {
            let flits = Packet::response_flits(resp.kind, &self.link_cfg, self.block_bytes);
            if self.resp_links.pick(flits).is_some() {
                return Some(next);
            }
        }
        let mut wake: Option<Cycle> = None;
        if let Some(Reverse((at, _, _, _))) = self.token_returns.peek() {
            fold_wake(&mut wake, now, Some(*at));
        }
        if let Some(Reverse((at, _, _))) = self.inflight_req.peek() {
            fold_wake(&mut wake, now, Some(*at));
        }
        if let Some(Reverse((at, _, _))) = self.inflight_resp.peek() {
            fold_wake(&mut wake, now, Some(*at));
        }
        for v in &self.vaults {
            fold_wake(&mut wake, now, v.next_event(now));
            if wake == Some(next) {
                break;
            }
        }
        wake
    }
}

impl Snapshot for HmcDevice {
    fn save_state(&self) -> Value {
        // `mapping`, `block_bytes`, `link_cfg`, and `faults` are
        // construction inputs re-derived from the config on restore;
        // `vault_out` is intra-tick scratch, empty between ticks. The
        // in-flight heaps drain to ascending `(cycle, seq, ..)` vectors so
        // the encoding is deterministic regardless of heap internals.
        let mut inflight_req: Vec<(Cycle, u64, Packet)> =
            self.inflight_req.iter().map(|Reverse(t)| *t).collect();
        inflight_req.sort_unstable();
        let mut inflight_resp: Vec<(Cycle, u64, MemResponse)> =
            self.inflight_resp.iter().map(|Reverse(t)| *t).collect();
        inflight_resp.sort_unstable();
        let mut token_returns: Vec<(Cycle, usize, u32, bool)> =
            self.token_returns.iter().map(|Reverse(t)| *t).collect();
        token_returns.sort_unstable();
        let vaults: Vec<Value> = self.vaults.iter().map(Snapshot::save_state).collect();
        Value::Map(vec![
            ("req_links".into(), self.req_links.to_value()),
            ("resp_links".into(), self.resp_links.to_value()),
            ("req_xbar".into(), self.req_xbar.to_value()),
            ("resp_xbar".into(), self.resp_xbar.to_value()),
            ("vaults".into(), Value::Seq(vaults)),
            ("host_queue".into(), self.host_queue.to_value()),
            ("inflight_req".into(), inflight_req.to_value()),
            ("vault_retry".into(), self.vault_retry.to_value()),
            ("inflight_resp".into(), inflight_resp.to_value()),
            ("resp_queue".into(), self.resp_queue.to_value()),
            ("token_returns".into(), token_returns.to_value()),
            ("seq".into(), self.seq.to_value()),
            ("req_deliveries".into(), self.req_deliveries.to_value()),
            ("resp_deliveries".into(), self.resp_deliveries.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let Value::Seq(vault_states) = field(state, "vaults")? else {
            return Err(de::Error::custom("snapshot: `vaults` is not a sequence"));
        };
        if vault_states.len() != self.vaults.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} vault states for a {}-vault cube",
                vault_states.len(),
                self.vaults.len()
            )));
        }
        let vault_retry: Vec<VecDeque<MemRequest>> = decode(state, "vault_retry")?;
        if vault_retry.len() != self.vault_retry.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} retry queues for a {}-vault cube",
                vault_retry.len(),
                self.vault_retry.len()
            )));
        }
        let host_queue: VecDeque<MemRequest> = decode(state, "host_queue")?;
        if host_queue.len() > HOST_QUEUE_DEPTH {
            return Err(de::Error::custom(format!(
                "snapshot: host queue holds {} requests (depth {HOST_QUEUE_DEPTH})",
                host_queue.len()
            )));
        }
        for (vault, vs) in self.vaults.iter_mut().zip(vault_states) {
            vault.restore_state(vs)?;
        }
        self.req_links = decode(state, "req_links")?;
        self.resp_links = decode(state, "resp_links")?;
        self.req_xbar = decode(state, "req_xbar")?;
        self.resp_xbar = decode(state, "resp_xbar")?;
        self.host_queue = host_queue;
        self.vault_retry = vault_retry;
        let inflight_req: Vec<(Cycle, u64, Packet)> = decode(state, "inflight_req")?;
        self.inflight_req = inflight_req.into_iter().map(Reverse).collect();
        let inflight_resp: Vec<(Cycle, u64, MemResponse)> = decode(state, "inflight_resp")?;
        self.inflight_resp = inflight_resp.into_iter().map(Reverse).collect();
        self.resp_queue = decode(state, "resp_queue")?;
        let token_returns: Vec<(Cycle, usize, u32, bool)> = decode(state, "token_returns")?;
        self.token_returns = token_returns.into_iter().map(Reverse).collect();
        self.vault_out.clear();
        self.seq = decode(state, "seq")?;
        self.req_deliveries = decode(state, "req_deliveries")?;
        self.resp_deliveries = decode(state, "resp_deliveries")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::addr::PhysAddr;
    use camps_types::request::{AccessKind, CoreId, RequestId, ServiceSource};

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn read(id: u64, addr: u64, now: Cycle) -> MemRequest {
        MemRequest {
            id: RequestId(id),
            addr: PhysAddr(addr),
            kind: AccessKind::Read,
            core: CoreId(0),
            created_at: now,
        }
    }

    fn run(
        h: &mut HmcDevice,
        start: Cycle,
        want: usize,
        limit: Cycle,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while out.len() < want && now < start + limit {
            now += 1;
            h.tick(now, &mut out, &mut Profiler::off());
        }
        (out, now)
    }

    #[test]
    fn read_round_trip_includes_link_and_dram_latency() {
        let c = cfg();
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        assert!(h.submit(read(1, 0x1234_5678, 0)));
        let (out, _) = run(&mut h, 0, 1, 50_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, RequestId(1));
        assert_eq!(out[0].source, ServiceSource::RowBufferMiss);
        // Row-miss DRAM latency alone is tRCD+tCL+tBURST = 99 CPU cycles;
        // links, crossbar and SerDes must add on top.
        assert!(out[0].latency() > 99 + 20, "latency {}", out[0].latency());
    }

    #[test]
    fn requests_to_different_vaults_proceed_in_parallel() {
        let c = cfg();
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        // 1 KB apart → adjacent vaults under RoRaBaVaCo.
        for i in 0..8u64 {
            assert!(h.submit(read(i, i * 1024, 0)));
        }
        let (out, end) = run(&mut h, 0, 8, 50_000);
        assert_eq!(out.len(), 8);
        // Parallel service: the whole batch should not take 8× a single
        // round trip.
        let single = {
            let mut h2 = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
            h2.submit(read(99, 0, 0));
            let (o, _) = run(&mut h2, 0, 1, 50_000);
            o[0].latency()
        };
        assert!(
            end < single * 4,
            "8 vault-parallel reads took {end} vs single {single}"
        );
    }

    #[test]
    fn host_queue_backpressure() {
        let c = cfg();
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        let mut accepted = 0u64;
        for i in 0..200 {
            if h.submit(read(i, i * 64, 0)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 64, "host queue depth is 64");
        assert_eq!(h.headroom(), 0);
    }

    #[test]
    fn busy_drains_to_idle() {
        let c = cfg();
        let mut h = HmcDevice::new(&c, SchemeKind::Base).unwrap();
        for i in 0..16u64 {
            h.submit(read(i, i * 4096, 0));
        }
        assert!(h.busy());
        let mut out = Vec::new();
        let mut now = 0;
        while h.busy() && now < 200_000 {
            now += 1;
            h.tick(now, &mut out, &mut Profiler::off());
        }
        assert!(!h.busy(), "cube must drain");
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn finalize_merges_vault_stats_and_link_flits() {
        let c = cfg();
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        h.submit(read(1, 0, 0));
        let (_, end) = run(&mut h, 0, 1, 50_000);
        let stats = h.finalize(end);
        assert_eq!(stats.reads.get(), 1);
        assert_eq!(stats.row_misses.get(), 1);
        // 1 request FLIT + 5 response FLITs.
        assert_eq!(stats.energy.link_flits, 6);
    }

    #[test]
    fn drop_fault_swallows_the_request() {
        let mut c = cfg();
        c.faults.drop_request_every = 1; // drop every request packet
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        assert!(h.submit(read(1, 0, 0)));
        let (out, _) = run(&mut h, 0, 1, 20_000);
        assert!(out.is_empty(), "a dropped request must never answer");
    }

    #[test]
    fn duplicate_fault_delivers_the_same_response_twice() {
        let mut c = cfg();
        c.faults.duplicate_response_every = 1;
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        assert!(h.submit(read(1, 0, 0)));
        let (out, _) = run(&mut h, 0, 2, 50_000);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, out[1].id, "both deliveries carry one id");
    }

    #[test]
    fn stalled_vault_stops_answering_and_snapshot_shows_the_backlog() {
        let mut c = cfg();
        c.faults.stall_vault = 0;
        c.faults.stall_vault_from = 1;
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        assert!(h.submit(read(1, 0, 0))); // address 0 decodes to vault 0
        let (out, end) = run(&mut h, 0, 1, 20_000);
        assert!(out.is_empty(), "a stalled vault must never answer");
        assert!(h.busy(), "the wedged request keeps the cube busy");
        let snaps = h.vault_snapshots();
        assert_eq!(snaps.len(), c.hmc.vaults as usize);
        let stuck = &snaps[0];
        assert_eq!(
            stuck.read_q + stuck.retry_q,
            1,
            "the request is parked in vault 0 at cycle {end}: {stuck:?}"
        );
    }

    #[test]
    fn snapshot_mid_flight_resumes_bit_identically() {
        let c = cfg();
        for scheme in SchemeKind::ALL {
            let mut a = HmcDevice::new(&c, scheme).unwrap();
            // Mixed pattern: cross-vault strides plus same-bank conflicts so
            // links, crossbar, queues, and DRAM state are all mid-flight.
            for i in 0..24u64 {
                let addr = if i % 3 == 0 { i * (1 << 19) } else { i * 1024 };
                a.submit(read(i, addr, 0));
            }
            let mut out_a = Vec::new();
            let mut now = 0;
            // Stop mid-flight: some responses delivered, some in the wires.
            while now < 400 {
                now += 1;
                a.tick(now, &mut out_a, &mut Profiler::off());
            }
            assert!(a.busy(), "scheme {scheme:?}: cube must still be busy");
            let state = a.save_state();
            let mut b = HmcDevice::new(&c, scheme).unwrap();
            b.restore_state(&state)
                .unwrap_or_else(|e| panic!("scheme {scheme:?}: restore failed: {e}"));
            let pending = out_a.len();
            let mut out_b = Vec::new();
            while (a.busy() || b.busy()) && now < 500_000 {
                now += 1;
                a.tick(now, &mut out_a, &mut Profiler::off());
                b.tick(now, &mut out_b, &mut Profiler::off());
            }
            assert!(!a.busy() && !b.busy(), "scheme {scheme:?}: must drain");
            assert_eq!(
                &out_a[pending..],
                &out_b[..],
                "scheme {scheme:?}: post-snapshot responses diverged"
            );
            let sa = a.finalize(now);
            let sb = b.finalize(now);
            assert_eq!(
                format!("{sa:?}"),
                format!("{sb:?}"),
                "scheme {scheme:?}: finalized stats diverged"
            );
        }
    }

    #[test]
    fn snapshot_rejects_wrong_vault_count() {
        let paper = cfg();
        let mut a = HmcDevice::new(&paper, SchemeKind::Nopf).unwrap();
        a.submit(read(1, 0, 0));
        let mut out = Vec::new();
        a.tick(1, &mut out, &mut Profiler::off());
        let state = a.save_state();
        let mut small = SystemConfig::small();
        small.hmc.vaults = paper.hmc.vaults / 2;
        let mut b = HmcDevice::new(&small, SchemeKind::Nopf).unwrap();
        let err = b.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("vault"), "got: {err}");
    }

    #[test]
    fn invalid_config_is_rejected_not_panicked() {
        let mut c = cfg();
        c.link.tokens = 0;
        assert!(matches!(
            HmcDevice::new(&c, SchemeKind::Nopf),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn same_bank_requests_serialize_more_than_cross_vault() {
        let c = cfg();
        // Same vault, same bank, different rows → conflicts serialize.
        let mut h = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        let row_stride = 1u64 << 19; // same vault & bank, next row (RoRaBaVaCo)
        for i in 0..4u64 {
            h.submit(read(i, i * row_stride, 0));
        }
        let (out_same, end_same) = run(&mut h, 0, 4, 100_000);
        assert_eq!(out_same.len(), 4);
        let mut h2 = HmcDevice::new(&c, SchemeKind::Nopf).unwrap();
        for i in 0..4u64 {
            h2.submit(read(i, i * 1024, 0)); // different vaults
        }
        let (_, end_diff) = run(&mut h2, 0, 4, 100_000);
        assert!(
            end_same > end_diff,
            "same-bank {end_same} vs cross-vault {end_diff}"
        );
        let stats = h.finalize(end_same);
        assert!(stats.row_conflicts.get() >= 2);
    }
}
