//! Workload × scheme experiment sweeps.
//!
//! Each (mix, scheme) simulation is single-threaded and deterministic;
//! sweeps fan the independent runs out over all host cores with rayon.

use crate::metrics::RunResult;
use crate::recovery::{
    read_snapshot, restore_run, run_with_recovery, scheme_from_name, RecoveryPolicy, RecoveryReport,
};
use crate::system::{Engine, System};
use camps_obs::ObsConfig;
use camps_prefetch::SchemeKind;
use camps_types::clock::Cycle;
use camps_types::config::SystemConfig;
use camps_types::error::SimError;
use camps_workloads::Mix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// How long to warm up and measure, mirroring the paper's methodology
/// (§4.1: fast-forward, warm caches, then detailed simulation) at
/// laptop-tractable scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLength {
    /// Functional cache-warmup instructions per core.
    pub warmup_instructions: u64,
    /// Detailed instructions per core.
    pub instructions: u64,
    /// Hard cycle cap (hang guard; generous relative to expected IPC).
    pub max_cycles: Cycle,
}

impl RunLength {
    /// Smoke-test scale: fractions of a second per run. Used by the
    /// sweep kill/resume tests and the CI `sweep-smoke` job, where many
    /// full matrices run back to back.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            warmup_instructions: 2_000,
            instructions: 2_000,
            max_cycles: 500_000,
        }
    }

    /// Unit/integration-test scale: seconds per run.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_instructions: 60_000,
            instructions: 60_000,
            max_cycles: 3_000_000,
        }
    }

    /// Experiment scale used for the EXPERIMENTS.md numbers.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            warmup_instructions: 500_000,
            instructions: 500_000,
            max_cycles: 40_000_000,
        }
    }

    /// Long runs for low-variance final numbers.
    #[must_use]
    pub fn thorough() -> Self {
        Self {
            warmup_instructions: 1_000_000,
            instructions: 2_000_000,
            max_cycles: 200_000_000,
        }
    }
}

/// Runs one Table II mix under one scheme.
///
/// # Errors
/// Propagates configuration, setup, integrity, and watchdog errors from
/// [`System`]; an invalid address mapping surfaces as
/// [`SimError::Config`].
pub fn run_mix(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
) -> Result<RunResult, SimError> {
    run_mix_with_engine(cfg, mix, scheme, len, seed, Engine::default())
}

/// [`run_mix`] with an explicit stepping [`Engine`] — the two engines
/// produce bit-identical results; `Engine::Polling` is the slower
/// reference path kept as an escape hatch and equivalence oracle.
///
/// # Errors
/// As [`run_mix`].
pub fn run_mix_with_engine(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
    engine: Engine,
) -> Result<RunResult, SimError> {
    let capacity = cfg.cube_map()?.capacity_bytes();
    let traces = mix.build_traces(capacity, seed)?;
    let mut sys = System::new(cfg, scheme, traces)?;
    sys.set_engine(engine);
    sys.warmup(len.warmup_instructions);
    sys.run(len.instructions, len.max_cycles, mix.id)
}

/// Like [`run_mix`], but driven through the rollback-and-retry recovery
/// loop: periodic checkpoints per `policy`, rollback on watchdog trips
/// and integrity violations, and a [`RecoveryReport`] describing what
/// the driver did.
///
/// # Errors
/// As [`run_mix`], plus [`SimError::Snapshot`] for checkpoint I/O
/// failures; the original run error propagates when the recovery budget
/// is exhausted.
pub fn run_mix_recoverable(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
    policy: &RecoveryPolicy,
) -> Result<(RunResult, RecoveryReport), SimError> {
    let capacity = cfg.cube_map()?.capacity_bytes();
    let traces = mix.build_traces(capacity, seed)?;
    let mut sys = System::new(cfg, scheme, traces)?;
    sys.warmup(len.warmup_instructions);
    run_with_recovery(
        &mut sys,
        len.instructions,
        len.max_cycles,
        mix.id,
        seed,
        policy,
    )
}

/// Resumes a checkpointed run from `path` and drives it to completion.
///
/// The machine is rebuilt from `cfg` plus the snapshot manifest's mix,
/// scheme, and seed, the checkpointed state is overlaid, and the run
/// continues from the checkpoint cycle. Warmup is skipped — the snapshot
/// already contains the warmed machine. `cfg` must match the snapshot's
/// config hash.
///
/// # Errors
/// [`SimError::Snapshot`] for unreadable/corrupt snapshots or a
/// mismatched config/mix/scheme; then anything the continued run itself
/// returns.
pub fn resume_mix(cfg: &SystemConfig, path: &Path) -> Result<RunResult, SimError> {
    let (manifest, state) = read_snapshot(path)?;
    let mix = Mix::by_id(&manifest.mix_id).ok_or_else(|| SimError::Snapshot {
        reason: format!("snapshot names unknown mix `{}`", manifest.mix_id),
    })?;
    let scheme = scheme_from_name(&manifest.scheme)?;
    let capacity = cfg.cube_map()?.capacity_bytes();
    let traces = mix.build_traces(capacity, manifest.seed)?;
    let mut sys = System::new(cfg, scheme, traces)?;
    // Placeholder run bookkeeping; restore_run overwrites every field.
    let mut run = sys.run_begin(0, 0);
    restore_run(&mut sys, &mut run, &manifest, &state)?;
    while sys.run_step(&mut run)? {}
    sys.run_finish(&run, mix.id)
}

/// Writes the installed tracer's outputs (trace JSON, metrics series)
/// to the paths `obs_cfg` names.
fn export_obs(sys: &System, obs_cfg: &ObsConfig) -> Result<(), SimError> {
    let io_err = |path: &Path, e: std::io::Error| SimError::Io {
        path: path.display().to_string(),
        source: e,
    };
    if let Some(path) = &obs_cfg.trace_out {
        sys.obs().export_trace(path).map_err(|e| io_err(path, e))?;
    }
    if let Some(path) = &obs_cfg.metrics_out {
        sys.obs()
            .export_metrics(path)
            .map_err(|e| io_err(path, e))?;
    }
    if let Some(path) = &obs_cfg.profile_out {
        // Folded-stack lines (`path;to;leaf <excl_ns>`), directly
        // consumable by `flamegraph.pl` / speedscope / inferno.
        let folded = sys
            .profiler()
            .summary()
            .map(|p| p.render_folded())
            .unwrap_or_default();
        std::fs::write(path, folded).map_err(|e| io_err(path, e))?;
    }
    Ok(())
}

/// [`run_mix_with_engine`] with request-lifecycle tracing and metrics
/// sampling installed per `obs_cfg`. Trace/metrics files are written
/// even when the run itself fails (a trace of a wedged run is the whole
/// point of tracing), but an export failure never masks a run error.
///
/// # Errors
/// As [`run_mix`], plus [`SimError::Io`] when an export path cannot be
/// written (including when the crate was built without the `obs`
/// feature — exports then fail with `Unsupported`).
pub fn run_mix_observed(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
    engine: Engine,
    obs_cfg: &ObsConfig,
) -> Result<RunResult, SimError> {
    let capacity = cfg.cube_map()?.capacity_bytes();
    let traces = mix.build_traces(capacity, seed)?;
    let mut sys = System::new(cfg, scheme, traces)?;
    sys.set_engine(engine);
    sys.enable_obs(obs_cfg);
    sys.warmup(len.warmup_instructions);
    match sys.run(len.instructions, len.max_cycles, mix.id) {
        Ok(result) => {
            export_obs(&sys, obs_cfg)?;
            Ok(result)
        }
        Err(err) => {
            export_obs(&sys, obs_cfg).ok();
            Err(err)
        }
    }
}

/// [`run_mix_recoverable`] with observability installed: checkpoints and
/// rollbacks appear on the trace's recovery track alongside the request
/// lifecycles.
///
/// # Errors
/// As [`run_mix_recoverable`], plus [`SimError::Io`] on export failure.
pub fn run_mix_recoverable_observed(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
    policy: &RecoveryPolicy,
    obs_cfg: &ObsConfig,
) -> Result<(RunResult, RecoveryReport), SimError> {
    let capacity = cfg.cube_map()?.capacity_bytes();
    let traces = mix.build_traces(capacity, seed)?;
    let mut sys = System::new(cfg, scheme, traces)?;
    sys.enable_obs(obs_cfg);
    sys.warmup(len.warmup_instructions);
    let outcome = run_with_recovery(
        &mut sys,
        len.instructions,
        len.max_cycles,
        mix.id,
        seed,
        policy,
    );
    match outcome {
        Ok(pair) => {
            export_obs(&sys, obs_cfg)?;
            Ok(pair)
        }
        Err(err) => {
            export_obs(&sys, obs_cfg).ok();
            Err(err)
        }
    }
}

/// Runs the full cross product `mixes × schemes` in parallel (rayon).
/// Results come back grouped by mix, schemes in the given order.
///
/// # Errors
/// Returns the first (job-order) error among the runs. Implemented on
/// the [`sweep`](crate::sweep) supervisor: every job still runs to
/// completion under panic isolation before the error is surfaced, so a
/// single bad job no longer aborts its in-flight siblings mid-run.
pub fn run_matrix(
    cfg: &SystemConfig,
    mixes: &[Mix],
    schemes: &[SchemeKind],
    len: &RunLength,
    seed: u64,
) -> Result<Vec<RunResult>, SimError> {
    let policy = crate::sweep::SweepPolicy::default();
    let mut run = crate::sweep::run_sweep(cfg, mixes, schemes, len, seed, &policy)?;
    if let Some(err) = run.errors.iter_mut().find_map(Option::take) {
        return Err(err);
    }
    Ok(run.results.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_workloads::ALL_MIXES;

    /// A tiny end-to-end smoke test: run one HM mix under NOPF and
    /// CAMPS-MOD at miniature scale and check the prefetching run serves
    /// demand from the buffer.
    #[test]
    fn camps_mod_serves_from_buffer_on_hm_mix() {
        let cfg = SystemConfig::paper_default();
        let len = RunLength {
            warmup_instructions: 8_000,
            instructions: 8_000,
            max_cycles: 2_000_000,
        };
        let mix = &ALL_MIXES[0]; // HM1
        let camps = run_mix(&cfg, mix, SchemeKind::CampsMod, &len, 7).unwrap();
        assert!(
            camps.vaults.prefetches.get() > 0,
            "CAMPS-MOD must prefetch on HM1"
        );
        assert!(
            camps.vaults.buffer_hits.get() > 0,
            "prefetches must be consumed"
        );
        assert_eq!(camps.mix_id, "HM1");
        assert_eq!(camps.ipc.len(), 8);
    }

    #[test]
    fn resumed_run_matches_the_uninterrupted_run() {
        let cfg = SystemConfig::paper_default();
        let len = RunLength {
            warmup_instructions: 2_000,
            instructions: 8_000,
            max_cycles: 2_000_000,
        };
        let mix = &ALL_MIXES[0];
        let dir = std::env::temp_dir().join("camps-experiment-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt.json");
        let policy = RecoveryPolicy {
            max_recoveries: 0,
            checkpoint_every: Some(10_000),
            checkpoint_path: Some(path.clone()),
        };
        let (full, report) =
            run_mix_recoverable(&cfg, mix, SchemeKind::Camps, &len, 3, &policy).unwrap();
        assert!(
            report.checkpoints_taken > 0,
            "run must leave a checkpoint behind"
        );
        // Rebuild from the last on-disk checkpoint and continue: final
        // stats must be bit-identical to the uninterrupted run.
        let resumed = resume_mix(&cfg, &path).unwrap();
        assert_eq!(full.ipc, resumed.ipc);
        assert_eq!(full.cycles, resumed.cycles);
        assert_eq!(full.vaults, resumed.vaults);
        assert_eq!(full.amat_mem, resumed.amat_mem);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_drifted_config() {
        let cfg = SystemConfig::paper_default();
        let len = RunLength {
            warmup_instructions: 1_000,
            instructions: 2_000,
            max_cycles: 1_000_000,
        };
        let dir = std::env::temp_dir().join("camps-experiment-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drift.ckpt.json");
        let policy = RecoveryPolicy {
            max_recoveries: 0,
            checkpoint_every: Some(5_000),
            checkpoint_path: Some(path.clone()),
        };
        run_mix_recoverable(&cfg, &ALL_MIXES[0], SchemeKind::Nopf, &len, 1, &policy).unwrap();
        let mut drifted = cfg.clone();
        drifted.prefetch.entries *= 2;
        let err = resume_mix(&drifted, &path).unwrap_err();
        assert!(
            matches!(&err, SimError::Snapshot { reason } if reason.contains("configuration")),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_preserves_order_and_count() {
        let mut cfg = SystemConfig::paper_default();
        cfg.cpu.cores = 8;
        let len = RunLength {
            warmup_instructions: 2_000,
            instructions: 2_000,
            max_cycles: 500_000,
        };
        let mixes = [ALL_MIXES[0], ALL_MIXES[4]];
        let schemes = [SchemeKind::Nopf, SchemeKind::Base];
        let results = run_matrix(&cfg, &mixes, &schemes, &len, 1).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].mix_id, "HM1");
        assert_eq!(results[0].scheme, SchemeKind::Nopf);
        assert_eq!(results[1].scheme, SchemeKind::Base);
        assert_eq!(results[2].mix_id, "LM1");
    }
}

/// Mean ± population standard deviation of a scheme's per-seed geomean
/// IPCs — the replication summary returned by [`run_replicated`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Replicated {
    /// Mean geomean-IPC across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub stddev: f64,
    /// Seeds used.
    pub seeds: u32,
}

/// Runs `(mix, scheme)` under `seeds` different workload seeds (in
/// parallel) and summarizes the geomean IPC — use this to put error bars
/// on any figure cell.
///
/// # Errors
/// Returns the first failing seed's error; completed seeds are
/// discarded when any fails.
pub fn run_replicated(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    base_seed: u64,
    seeds: u32,
) -> Result<Replicated, SimError> {
    use camps_stats::Running;
    let ipcs: Vec<f64> = (0..u64::from(seeds.max(1)))
        .collect::<Vec<_>>()
        .par_iter()
        .map(|i| {
            Ok(run_mix(cfg, mix, scheme, len, base_seed.wrapping_add(i * 0x9E37))?.geomean_ipc())
        })
        .collect::<Result<_, SimError>>()?;
    let mut acc = Running::new();
    for v in &ipcs {
        acc.record(*v);
    }
    Ok(Replicated {
        mean: acc.mean().unwrap_or(0.0),
        stddev: acc.stddev().unwrap_or(0.0),
        seeds: seeds.max(1),
    })
}

#[cfg(test)]
mod replication_tests {
    use super::*;
    use camps_workloads::ALL_MIXES;

    #[test]
    fn replication_reports_spread() {
        let cfg = SystemConfig::paper_default();
        let len = RunLength {
            warmup_instructions: 3_000,
            instructions: 3_000,
            max_cycles: 1_000_000,
        };
        let r = run_replicated(&cfg, &ALL_MIXES[8], SchemeKind::Nopf, &len, 7, 3).unwrap();
        assert_eq!(r.seeds, 3);
        assert!(r.mean > 0.0);
        assert!(r.stddev >= 0.0);
        // Different seeds genuinely differ, so spread is nonzero but far
        // smaller than the mean.
        assert!(r.stddev < r.mean, "stddev {} vs mean {}", r.stddev, r.mean);
    }
}
