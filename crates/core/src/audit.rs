//! The request-lifetime auditor.
//!
//! Tags every request the memory subsystem injects into the cube and
//! checks conservation when responses come back: no request may be lost,
//! injected twice while outstanding, or completed twice. Simulator bugs
//! that corrupt the request lifecycle (a queue overwrite, a duplicated
//! response, a dropped packet) produce silently-wrong IPC numbers — the
//! auditor turns them into a typed [`IntegrityError`] instead.
//!
//! Auditing is always on in debug builds and opt-in
//! ([`camps_types::IntegrityConfig::audit`]) in release builds. The cost
//! is one hash-map insert/remove per memory request — noise next to the
//! per-cycle work of the vault controllers, but not zero, hence the
//! release-mode gate.
//!
//! Violations are *latched*, not returned inline: the hot per-cycle path
//! stays `Result`-free, and [`System::run`](crate::system::System::run)
//! polls [`RequestAuditor::take_violation`] once per tick, aborting the
//! run with the latched error.

use camps_stats::AuditLedger;
use camps_types::error::IntegrityError;
use camps_types::request::RequestId;
use std::collections::{HashMap, HashSet};

/// Request-conservation checker (see the module docs).
#[derive(Debug)]
pub struct RequestAuditor {
    enabled: bool,
    /// Vault each outstanding request id was routed to.
    outstanding: HashMap<u64, usize>,
    /// Ids that have completed (detects double completion after the
    /// outstanding entry is gone).
    completed: HashSet<u64>,
    ledger: AuditLedger,
    violation: Option<IntegrityError>,
}

impl RequestAuditor {
    /// An auditor for a cube with `vaults` vaults. `enabled` is the
    /// release-mode opt-in; debug builds audit unconditionally.
    #[must_use]
    pub fn new(enabled: bool, vaults: usize) -> Self {
        Self {
            enabled: enabled || cfg!(debug_assertions),
            outstanding: HashMap::new(),
            completed: HashSet::new(),
            ledger: AuditLedger::new(vaults),
            violation: None,
        }
    }

    /// True when auditing is active in this build/configuration.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `id` entering the cube toward `vault`.
    pub fn record_injected(&mut self, id: RequestId, vault: usize) {
        if !self.enabled {
            return;
        }
        self.ledger.record_injected(vault);
        if self.outstanding.insert(id.0, vault).is_some() {
            self.latch(IntegrityError::DuplicateInjection { id });
        }
        // A retired id being reused for a new request is legal (ids are
        // monotonic in practice, but the auditor does not rely on it).
        self.completed.remove(&id.0);
    }

    /// Records a response for `id` arriving back at the host.
    pub fn record_completed(&mut self, id: RequestId) {
        if !self.enabled {
            return;
        }
        match self.outstanding.remove(&id.0) {
            Some(vault) => {
                self.ledger.record_completed(vault);
                self.completed.insert(id.0);
            }
            None if self.completed.contains(&id.0) => {
                self.latch(IntegrityError::DuplicateCompletion { id });
            }
            None => {
                self.latch(IntegrityError::UnknownCompletion { id });
            }
        }
    }

    /// End-of-drain check: the memory system claims idle, so nothing may
    /// be outstanding. Call only when the cube reports not busy.
    pub fn check_drained(&mut self) {
        if !self.enabled || self.outstanding.is_empty() {
            return;
        }
        let mut ids: Vec<u64> = self.outstanding.keys().copied().collect();
        ids.sort_unstable(); // deterministic despite HashMap iteration order
        ids.truncate(8);
        self.latch(IntegrityError::LostRequests {
            outstanding: self.outstanding.len(),
            examples: ids.into_iter().map(RequestId).collect(),
        });
    }

    /// Takes the first latched violation, if any (later ones are dropped:
    /// the first corruption is the one worth debugging).
    pub fn take_violation(&mut self) -> Option<IntegrityError> {
        self.violation.take()
    }

    /// Per-vault conservation counts.
    #[must_use]
    pub fn ledger(&self) -> &AuditLedger {
        &self.ledger
    }

    fn latch(&mut self, violation: IntegrityError) {
        if self.violation.is_none() {
            self.violation = Some(violation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> RequestAuditor {
        RequestAuditor::new(true, 4)
    }

    #[test]
    fn clean_lifecycle_has_no_violation() {
        let mut a = auditor();
        a.record_injected(RequestId(1), 0);
        a.record_injected(RequestId(2), 3);
        a.record_completed(RequestId(1));
        a.record_completed(RequestId(2));
        a.check_drained();
        assert!(a.take_violation().is_none());
        assert!(a.ledger().balanced());
        assert_eq!(a.ledger().injected(), 2);
    }

    #[test]
    fn duplicate_completion_is_caught() {
        let mut a = auditor();
        a.record_injected(RequestId(7), 1);
        a.record_completed(RequestId(7));
        a.record_completed(RequestId(7));
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::DuplicateCompletion { id: RequestId(7) })
        ));
    }

    #[test]
    fn unknown_completion_is_caught() {
        let mut a = auditor();
        a.record_completed(RequestId(9));
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::UnknownCompletion { id: RequestId(9) })
        ));
    }

    #[test]
    fn duplicate_injection_is_caught() {
        let mut a = auditor();
        a.record_injected(RequestId(5), 0);
        a.record_injected(RequestId(5), 0);
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::DuplicateInjection { id: RequestId(5) })
        ));
    }

    #[test]
    fn lost_requests_are_caught_at_drain() {
        let mut a = auditor();
        a.record_injected(RequestId(1), 0);
        a.record_injected(RequestId(2), 1);
        a.check_drained();
        match a.take_violation() {
            Some(IntegrityError::LostRequests {
                outstanding,
                examples,
            }) => {
                assert_eq!(outstanding, 2);
                assert_eq!(examples, vec![RequestId(1), RequestId(2)]);
            }
            other => panic!("expected LostRequests, got {other:?}"),
        }
    }

    #[test]
    fn first_violation_wins() {
        let mut a = auditor();
        a.record_completed(RequestId(1)); // unknown
        a.record_injected(RequestId(2), 0);
        a.record_injected(RequestId(2), 0); // duplicate, dropped
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::UnknownCompletion { .. })
        ));
        assert!(a.take_violation().is_none());
    }

    #[test]
    fn id_reuse_after_completion_is_legal() {
        let mut a = auditor();
        a.record_injected(RequestId(3), 0);
        a.record_completed(RequestId(3));
        a.record_injected(RequestId(3), 2);
        a.record_completed(RequestId(3));
        a.check_drained();
        assert!(a.take_violation().is_none());
    }
}
