//! The request-lifetime auditor.
//!
//! Tags every request the memory subsystem injects into the cube and
//! checks conservation when responses come back: no request may be lost,
//! injected twice while outstanding, or completed twice. Simulator bugs
//! that corrupt the request lifecycle (a queue overwrite, a duplicated
//! response, a dropped packet) produce silently-wrong IPC numbers — the
//! auditor turns them into a typed [`IntegrityError`] instead.
//!
//! Auditing is always on in debug builds and opt-in
//! ([`camps_types::IntegrityConfig::audit`]) in release builds. The cost
//! is one hash-map insert/remove per memory request — noise next to the
//! per-cycle work of the vault controllers, but not zero, hence the
//! release-mode gate.
//!
//! Violations are *latched*, not returned inline: the hot per-cycle path
//! stays `Result`-free, and [`System::run`](crate::system::System::run)
//! polls [`RequestAuditor::take_violation`] once per tick, aborting the
//! run with the latched error.

use camps_stats::AuditLedger;
use camps_types::error::IntegrityError;
use camps_types::request::RequestId;
use camps_types::snapshot::{decode, Snapshot};
use serde::value::Value;
use serde::{de, Serialize as _};
use std::collections::{HashMap, HashSet};

/// Request-conservation checker (see the module docs).
#[derive(Debug)]
pub struct RequestAuditor {
    enabled: bool,
    /// Vault each outstanding request id was routed to.
    outstanding: HashMap<u64, usize>,
    /// Ids that have completed (detects double completion after the
    /// outstanding entry is gone).
    completed: HashSet<u64>,
    ledger: AuditLedger,
    violation: Option<IntegrityError>,
}

impl RequestAuditor {
    /// An auditor for a cube with `vaults` vaults. `enabled` is the
    /// release-mode opt-in; debug builds audit unconditionally.
    #[must_use]
    pub fn new(enabled: bool, vaults: usize) -> Self {
        Self {
            enabled: enabled || cfg!(debug_assertions),
            outstanding: HashMap::new(),
            completed: HashSet::new(),
            ledger: AuditLedger::new(vaults),
            violation: None,
        }
    }

    /// True when auditing is active in this build/configuration.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `id` entering the cube toward `vault`.
    pub fn record_injected(&mut self, id: RequestId, vault: usize) {
        if !self.enabled {
            return;
        }
        self.ledger.record_injected(vault);
        if self.outstanding.insert(id.0, vault).is_some() {
            self.latch(IntegrityError::DuplicateInjection { id });
        }
        // A retired id being reused for a new request is legal (ids are
        // monotonic in practice, but the auditor does not rely on it).
        self.completed.remove(&id.0);
    }

    /// Records a response for `id` arriving back at the host.
    pub fn record_completed(&mut self, id: RequestId) {
        if !self.enabled {
            return;
        }
        match self.outstanding.remove(&id.0) {
            Some(vault) => {
                self.ledger.record_completed(vault);
                self.completed.insert(id.0);
            }
            None if self.completed.contains(&id.0) => {
                self.latch(IntegrityError::DuplicateCompletion { id });
            }
            None => {
                self.latch(IntegrityError::UnknownCompletion { id });
            }
        }
    }

    /// End-of-drain check: the memory system claims idle, so nothing may
    /// be outstanding. Call only when the cube reports not busy.
    pub fn check_drained(&mut self) {
        if !self.enabled || self.outstanding.is_empty() {
            return;
        }
        let mut ids: Vec<u64> = self.outstanding.keys().copied().collect();
        ids.sort_unstable(); // deterministic despite HashMap iteration order
        ids.truncate(8);
        self.latch(IntegrityError::LostRequests {
            outstanding: self.outstanding.len(),
            examples: ids.into_iter().map(RequestId).collect(),
        });
    }

    /// Takes the first latched violation, if any (later ones are dropped:
    /// the first corruption is the one worth debugging).
    pub fn take_violation(&mut self) -> Option<IntegrityError> {
        self.violation.take()
    }

    /// Latches a violation detected outside the auditor itself (e.g. a
    /// response naming a nonexistent core). First violation wins, like
    /// the internal checks.
    pub fn latch_violation(&mut self, violation: IntegrityError) {
        self.latch(violation);
    }

    /// Per-vault conservation counts.
    #[must_use]
    pub fn ledger(&self) -> &AuditLedger {
        &self.ledger
    }

    fn latch(&mut self, violation: IntegrityError) {
        if self.violation.is_none() {
            self.violation = Some(violation);
        }
    }
}

impl Snapshot for RequestAuditor {
    fn save_state(&self) -> Value {
        // `enabled` is a construction input. A latched `violation` is
        // never present at snapshot time: the run loop polls and aborts
        // before a checkpoint could be taken, so it is not serialized.
        let mut outstanding: Vec<(u64, usize)> =
            self.outstanding.iter().map(|(&id, &v)| (id, v)).collect();
        outstanding.sort_unstable();
        let mut completed: Vec<u64> = self.completed.iter().copied().collect();
        completed.sort_unstable();
        Value::Map(vec![
            ("outstanding".into(), outstanding.to_value()),
            ("completed".into(), completed.to_value()),
            ("ledger".into(), self.ledger.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let outstanding: Vec<(u64, usize)> = decode(state, "outstanding")?;
        let completed: Vec<u64> = decode(state, "completed")?;
        let ledger: AuditLedger = decode(state, "ledger")?;
        if ledger.vaults.len() != self.ledger.vaults.len() {
            return Err(de::Error::custom(format!(
                "snapshot: ledger covers {} vaults, auditor expects {}",
                ledger.vaults.len(),
                self.ledger.vaults.len()
            )));
        }
        self.outstanding = outstanding.into_iter().collect();
        self.completed = completed.into_iter().collect();
        self.ledger = ledger;
        self.violation = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> RequestAuditor {
        RequestAuditor::new(true, 4)
    }

    #[test]
    fn clean_lifecycle_has_no_violation() {
        let mut a = auditor();
        a.record_injected(RequestId(1), 0);
        a.record_injected(RequestId(2), 3);
        a.record_completed(RequestId(1));
        a.record_completed(RequestId(2));
        a.check_drained();
        assert!(a.take_violation().is_none());
        assert!(a.ledger().balanced());
        assert_eq!(a.ledger().injected(), 2);
    }

    #[test]
    fn duplicate_completion_is_caught() {
        let mut a = auditor();
        a.record_injected(RequestId(7), 1);
        a.record_completed(RequestId(7));
        a.record_completed(RequestId(7));
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::DuplicateCompletion { id: RequestId(7) })
        ));
    }

    #[test]
    fn unknown_completion_is_caught() {
        let mut a = auditor();
        a.record_completed(RequestId(9));
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::UnknownCompletion { id: RequestId(9) })
        ));
    }

    #[test]
    fn duplicate_injection_is_caught() {
        let mut a = auditor();
        a.record_injected(RequestId(5), 0);
        a.record_injected(RequestId(5), 0);
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::DuplicateInjection { id: RequestId(5) })
        ));
    }

    #[test]
    fn lost_requests_are_caught_at_drain() {
        let mut a = auditor();
        a.record_injected(RequestId(1), 0);
        a.record_injected(RequestId(2), 1);
        a.check_drained();
        match a.take_violation() {
            Some(IntegrityError::LostRequests {
                outstanding,
                examples,
            }) => {
                assert_eq!(outstanding, 2);
                assert_eq!(examples, vec![RequestId(1), RequestId(2)]);
            }
            other => panic!("expected LostRequests, got {other:?}"),
        }
    }

    #[test]
    fn first_violation_wins() {
        let mut a = auditor();
        a.record_completed(RequestId(1)); // unknown
        a.record_injected(RequestId(2), 0);
        a.record_injected(RequestId(2), 0); // duplicate, dropped
        assert!(matches!(
            a.take_violation(),
            Some(IntegrityError::UnknownCompletion { .. })
        ));
        assert!(a.take_violation().is_none());
    }

    #[test]
    fn snapshot_round_trips_in_flight_requests() {
        let mut a = auditor();
        a.record_injected(RequestId(1), 0);
        a.record_injected(RequestId(2), 3);
        a.record_injected(RequestId(3), 1);
        a.record_completed(RequestId(1));
        let state = a.save_state();
        let mut b = auditor();
        b.restore_state(&state).unwrap();
        // Both in-flight requests complete after the restore: clean drain.
        b.record_completed(RequestId(2));
        b.record_completed(RequestId(3));
        b.check_drained();
        assert!(b.take_violation().is_none());
        assert!(b.ledger().balanced());
        assert_eq!(b.ledger().injected(), 3);
        // Id 1 already completed before the snapshot; completing it again
        // in the restored auditor is still a double completion.
        b.record_completed(RequestId(1));
        assert!(matches!(
            b.take_violation(),
            Some(IntegrityError::DuplicateCompletion { id: RequestId(1) })
        ));
    }

    #[test]
    fn restore_that_drops_an_in_flight_request_surfaces_at_drain() {
        let mut a = auditor();
        a.record_injected(RequestId(10), 0);
        a.record_injected(RequestId(11), 2);
        let state = a.save_state();
        let mut b = auditor();
        b.restore_state(&state).unwrap();
        // The restored run only ever answers request 10 — request 11 was
        // lost across the restore boundary. The existing lost-request
        // check must catch it at drain.
        b.record_completed(RequestId(10));
        b.check_drained();
        match b.take_violation() {
            Some(IntegrityError::LostRequests {
                outstanding,
                examples,
            }) => {
                assert_eq!(outstanding, 1);
                assert_eq!(examples, vec![RequestId(11)]);
            }
            other => panic!("expected LostRequests, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_mismatched_ledger_width() {
        let mut a = auditor(); // 4 vaults
        a.record_injected(RequestId(1), 0);
        let state = a.save_state();
        let mut b = RequestAuditor::new(true, 8);
        let err = b.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("vaults"), "got: {err}");
    }

    #[test]
    fn id_reuse_after_completion_is_legal() {
        let mut a = auditor();
        a.record_injected(RequestId(3), 0);
        a.record_completed(RequestId(3));
        a.record_injected(RequestId(3), 2);
        a.record_completed(RequestId(3));
        a.check_drained();
        assert!(a.take_violation().is_none());
    }
}
