//! The multi-cube pool: address interleaving, inter-cube interconnect,
//! and per-cube request/response routing.
//!
//! [`Topology`] is the layer between [`MemorySubsystem`] and the cubes.
//! It owns a [`CubeMap`] (which cube a global address lives on, and what
//! that cube calls it locally), a [`CubeFabric`] (the chain/star hop
//! links), and one [`HmcDevice`] per cube. Each cube is a completely
//! ordinary single-cube device — it sees only cube-local addresses, so
//! its vault controllers, prefetch schemes, and snapshots are oblivious
//! to the pool around them.
//!
//! **The single-cube contract.** With `cubes = 1` every method takes a
//! fast path straight to `cubes[0]`: no address translation (the splice
//! is the identity), no fabric, no transit heaps, and `save_state`
//! returns the bare device state — bit-identical behaviour *and*
//! checkpoint bytes versus the pre-topology engine.
//!
//! [`MemorySubsystem`]: crate::system::MemorySubsystem

use crate::hmc::HmcDevice;
use camps_link::cube_link::CubeFabric;
use camps_link::packet::Packet;
use camps_obs::{Comp, Profiler, TraceHandle};
use camps_prefetch::SchemeKind;
use camps_types::addr::{CubeMap, PhysAddr};
use camps_types::clock::Cycle;
use camps_types::config::{FaultPlan, SystemConfig};
use camps_types::error::{SimError, VaultSnapshot};
use camps_types::request::{MemRequest, MemResponse};
use camps_types::snapshot::{decode, field, Snapshot};
use camps_types::wake::{fold_wake, Wake};
use camps_vault::VaultStats;
use serde::value::{lookup, Value};
use serde::{de, Deserialize as _, Serialize as _};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The pool of cubes behind the host memory controller.
pub struct Topology {
    cube_map: CubeMap,
    fabric: CubeFabric,
    cubes: Vec<HmcDevice>,
    link_cfg: camps_types::config::LinkConfig,
    block_bytes: u32,
    /// Requests crossing the fabric: (arrival, seq, cube, local request).
    hop_req: BinaryHeap<Reverse<(Cycle, u64, u16, MemRequest)>>,
    /// Responses crossing back: (arrival, seq, global-address response).
    hop_resp: BinaryHeap<Reverse<(Cycle, u64, MemResponse)>>,
    /// Requests that arrived at a cube whose host queue was momentarily
    /// full; drained ahead of new fabric deliveries every tick.
    arrival_q: Vec<VecDeque<MemRequest>>,
    /// Requests accepted but not yet in a cube's host queue, per cube.
    /// Subtracted from that cube's headroom so transit never overcommits.
    in_transit: Vec<usize>,
    seq: u64,
    /// Scratch for per-cube responses within a tick.
    cube_out: Vec<MemResponse>,
    obs: TraceHandle,
}

impl Topology {
    /// Builds `cfg.topology.cubes` identical cubes, every vault running
    /// `scheme`, wired by the configured fabric.
    ///
    /// # Errors
    /// [`SimError::Config`] if the configuration fails validation.
    pub fn new(cfg: &SystemConfig, scheme: SchemeKind) -> Result<Self, SimError> {
        let cube_map = cfg.cube_map()?;
        let cubes = (0..cfg.topology.cubes)
            .map(|_| HmcDevice::new(cfg, scheme))
            .collect::<Result<Vec<_>, _>>()?;
        let n = cubes.len();
        Ok(Self {
            cube_map,
            fabric: CubeFabric::new(&cfg.topology, &cfg.link, cfg.cpu.freq_hz),
            cubes,
            link_cfg: cfg.link,
            block_bytes: cfg.hmc.block_bytes,
            hop_req: BinaryHeap::new(),
            hop_resp: BinaryHeap::new(),
            arrival_q: (0..n).map(|_| VecDeque::new()).collect(),
            in_transit: vec![0; n],
            seq: 0,
            cube_out: Vec::new(),
            obs: TraceHandle::disabled(),
        })
    }

    /// Number of cubes in the pool.
    #[must_use]
    pub fn cubes(&self) -> usize {
        self.cubes.len()
    }

    /// The pool-wide address interleaving stage.
    #[must_use]
    pub fn cube_map(&self) -> &CubeMap {
        &self.cube_map
    }

    /// The host-attached cube (tests, single-cube compatibility paths).
    #[must_use]
    pub fn cube0(&self) -> &HmcDevice {
        &self.cubes[0]
    }

    /// Mutable access to the host-attached cube.
    pub fn cube0_mut(&mut self) -> &mut HmcDevice {
        &mut self.cubes[0]
    }

    /// Every cube in the pool.
    #[must_use]
    pub fn all_cubes(&self) -> &[HmcDevice] {
        &self.cubes
    }

    /// Installs observability hooks on every cube (and for hop stamps).
    pub fn set_obs(&mut self, obs: TraceHandle) {
        for c in &mut self.cubes {
            c.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Vaults per cube; a request's pool-global vault index is
    /// `cube * vaults_per_cube() + local_vault`.
    #[must_use]
    pub fn vaults_per_cube(&self) -> usize {
        self.cubes[0].vaults().len()
    }

    /// `(cube, pool-global vault index)` owning `addr`.
    #[must_use]
    pub fn route_of(&self, addr: PhysAddr) -> (u16, usize) {
        let cube = self.cube_map.cube_of(addr);
        let local = self
            .cube_map
            .mapping()
            .decode(self.cube_map.local_addr(addr));
        (
            cube,
            usize::from(cube) * self.vaults_per_cube() + usize::from(local.vault),
        )
    }

    /// Host-queue slots available for a request to `addr`: the owning
    /// cube's headroom minus requests already bound for it. Transit
    /// reservations make accepted requests always landable, so the
    /// fabric needs no flow-control credits of its own.
    #[must_use]
    pub fn headroom_for(&self, addr: PhysAddr) -> usize {
        if self.cubes.len() == 1 {
            return self.cubes[0].headroom();
        }
        let cube = usize::from(self.cube_map.cube_of(addr));
        self.cubes[cube]
            .headroom()
            .saturating_sub(self.in_transit[cube].min(self.cubes[cube].headroom()))
    }

    /// Offers a request (global address) to the pool. `false` means the
    /// owning cube has no headroom left (caller retries). On the
    /// multi-cube path the request is translated to the owning cube's
    /// local address space and shipped over the fabric.
    pub fn submit(&mut self, req: MemRequest, now: Cycle) -> bool {
        if self.cubes.len() == 1 {
            return self.cubes[0].submit(req);
        }
        if self.headroom_for(req.addr) == 0 {
            return false;
        }
        let cube = self.cube_map.cube_of(req.addr);
        let local = MemRequest {
            addr: self.cube_map.local_addr(req.addr),
            ..req
        };
        let flits = Packet::request(local, &self.link_cfg, self.block_bytes).flits;
        let arrive = self.fabric.send_request(cube, flits, now);
        self.in_transit[usize::from(cube)] += 1;
        self.hop_req.push(Reverse((arrive, self.seq, cube, local)));
        self.seq += 1;
        true
    }

    /// Advances the pool one CPU cycle; responses delivered to the host
    /// at `now` are appended to `out` with their global addresses.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<MemResponse>, prof: &mut Profiler) {
        if self.cubes.len() == 1 {
            prof.enter(Comp::HmcTick);
            self.cubes[0].tick(now, out, prof);
            prof.exit(Comp::HmcTick);
            return;
        }
        prof.enter(Comp::CubeFabric);
        // Fabric deliveries land in per-cube arrival queues...
        while self
            .hop_req
            .peek()
            .is_some_and(|Reverse((at, _, _, _))| *at <= now)
        {
            let Some(Reverse((_, _, cube, req))) = self.hop_req.pop() else {
                break;
            };
            self.arrival_q[usize::from(cube)].push_back(req);
        }
        // ...and drain into the cubes' host queues as slots free up.
        for cube in 0..self.cubes.len() {
            while let Some(&req) = self.arrival_q[cube].front() {
                if !self.cubes[cube].submit(req) {
                    break;
                }
                self.obs.cube_arrive(req.id.0, cube as u16, now);
                self.arrival_q[cube].pop_front();
                self.in_transit[cube] -= 1;
            }
        }
        debug_assert!(
            self.cube_out.is_empty(),
            "cube scratch not drained between ticks"
        );
        let mut responses = std::mem::take(&mut self.cube_out);
        for (idx, cube) in self.cubes.iter_mut().enumerate() {
            responses.clear();
            prof.enter(Comp::HmcTick);
            cube.tick(now, &mut responses, prof);
            prof.exit(Comp::HmcTick);
            for resp in responses.drain(..) {
                // Back to the pool's address space, then over the fabric.
                let mut global = resp;
                global.addr = self.cube_map.global_addr(idx as u16, resp.addr);
                let req = MemRequest {
                    id: global.id,
                    addr: global.addr,
                    kind: global.kind,
                    core: global.core,
                    created_at: global.created_at,
                };
                let flits = Packet::response(req, &self.link_cfg, self.block_bytes).flits;
                let arrive = self.fabric.send_response(idx as u16, flits, now);
                global.completed_at = global.completed_at.max(arrive);
                self.hop_resp.push(Reverse((arrive, self.seq, global)));
                self.seq += 1;
            }
        }
        self.cube_out = responses;
        while self
            .hop_resp
            .peek()
            .is_some_and(|Reverse((at, _, _))| *at <= now)
        {
            let Some(Reverse((_, _, resp))) = self.hop_resp.pop() else {
                break;
            };
            out.push(resp);
        }
        prof.exit(Comp::CubeFabric);
    }

    /// True while any cube or fabric-transit work remains.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.hop_req.is_empty()
            || !self.hop_resp.is_empty()
            || self.arrival_q.iter().any(|q| !q.is_empty())
            || self.cubes.iter().any(HmcDevice::busy)
    }

    /// Requests plus responses currently crossing the fabric (gauge).
    #[must_use]
    pub fn link_inflight(&self) -> usize {
        self.hop_req.len()
            + self.hop_resp.len()
            + self.arrival_q.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Finalizes every cube and merges the statistics; fabric FLITs fold
    /// into the energy model's link total alongside the host links.
    pub fn finalize(&mut self, now: Cycle) -> VaultStats {
        let mut merged = VaultStats::new();
        for c in &mut self.cubes {
            merged.merge(&c.finalize(now));
        }
        let (_, fabric_flits, _) = self.fabric.stats();
        merged.energy.link_flits += fabric_flits;
        merged
    }

    /// Total host-queue occupancy across the pool.
    #[must_use]
    pub fn host_queue_len(&self) -> usize {
        self.cubes.iter().map(HmcDevice::host_queue_len).sum()
    }

    /// Per-cube host-queue depths (metrics sampling).
    #[must_use]
    pub fn host_queue_lens(&self) -> Vec<u64> {
        self.cubes
            .iter()
            .map(|c| c.host_queue_len() as u64)
            .collect()
    }

    /// Free request-link tokens, all cubes concatenated in cube order.
    #[must_use]
    pub fn req_link_tokens(&self) -> Vec<u32> {
        self.cubes
            .iter()
            .flat_map(HmcDevice::req_link_tokens)
            .collect()
    }

    /// Free response-link tokens, all cubes concatenated in cube order.
    #[must_use]
    pub fn resp_link_tokens(&self) -> Vec<u32> {
        self.cubes
            .iter()
            .flat_map(HmcDevice::resp_link_tokens)
            .collect()
    }

    /// Occupancy snapshots of every vault, all cubes concatenated in
    /// cube order (pool-global vault indexing).
    #[must_use]
    pub fn vault_snapshots(&self) -> Vec<VaultSnapshot> {
        self.cubes
            .iter()
            .flat_map(HmcDevice::vault_snapshots)
            .collect()
    }

    /// Replaces the fault-injection schedule on every cube.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        for c in &mut self.cubes {
            c.set_faults(faults);
        }
    }
}

impl Wake for Topology {
    /// Earliest progress edge across the pool: pending fabric arrivals,
    /// queued arrivals that may drain this cycle, and every cube's own
    /// wake. (Fabric serializers hold no spontaneous events — they only
    /// matter when a send happens, which other wakes already cover.)
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.cubes.len() == 1 {
            return self.cubes[0].next_event(now);
        }
        let next = now + 1;
        if self.arrival_q.iter().any(|q| !q.is_empty()) {
            return Some(next);
        }
        let mut wake: Option<Cycle> = None;
        if let Some(Reverse((at, _, _, _))) = self.hop_req.peek() {
            fold_wake(&mut wake, now, Some(*at));
        }
        if let Some(Reverse((at, _, _))) = self.hop_resp.peek() {
            fold_wake(&mut wake, now, Some(*at));
        }
        for c in &self.cubes {
            fold_wake(&mut wake, now, c.next_event(now));
            if wake == Some(next) {
                break;
            }
        }
        wake
    }
}

impl Snapshot for Topology {
    fn save_state(&self) -> Value {
        // Single cube: the bare device state, byte-identical to the
        // pre-topology snapshot layout. Multi-cube: a map whose `cubes`
        // key distinguishes the new shape (a device state has no such
        // key), so restore can accept either.
        if self.cubes.len() == 1 {
            return self.cubes[0].save_state();
        }
        let mut hop_req: Vec<(Cycle, u64, u16, MemRequest)> =
            self.hop_req.iter().map(|Reverse(t)| *t).collect();
        hop_req.sort_unstable_by_key(|&(at, seq, _, _)| (at, seq));
        let mut hop_resp: Vec<(Cycle, u64, MemResponse)> =
            self.hop_resp.iter().map(|Reverse(t)| *t).collect();
        hop_resp.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        let cubes: Vec<Value> = self.cubes.iter().map(Snapshot::save_state).collect();
        Value::Map(vec![
            ("cubes".into(), Value::Seq(cubes)),
            ("fabric".into(), self.fabric.to_value()),
            ("hop_req".into(), hop_req.to_value()),
            ("hop_resp".into(), hop_resp.to_value()),
            ("arrival_q".into(), self.arrival_q.to_value()),
            ("in_transit".into(), self.in_transit.to_value()),
            ("seq".into(), self.seq.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let legacy = !matches!(state, Value::Map(entries) if lookup(entries, "cubes").is_some());
        if legacy {
            // A pre-topology (or single-cube) snapshot: the bare device.
            if self.cubes.len() != 1 {
                return Err(de::Error::custom(format!(
                    "snapshot: single-cube state for a {}-cube pool",
                    self.cubes.len()
                )));
            }
            return self.cubes[0].restore_state(state);
        }
        let Value::Seq(cube_states) = field(state, "cubes")? else {
            return Err(de::Error::custom("snapshot: `cubes` is not a sequence"));
        };
        if cube_states.len() != self.cubes.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} cube states for a {}-cube pool",
                cube_states.len(),
                self.cubes.len()
            )));
        }
        let arrival_q: Vec<VecDeque<MemRequest>> = decode(state, "arrival_q")?;
        let in_transit: Vec<usize> = decode(state, "in_transit")?;
        if arrival_q.len() != self.cubes.len() || in_transit.len() != self.cubes.len() {
            return Err(de::Error::custom(
                "snapshot: per-cube transit state has the wrong cube count",
            ));
        }
        for (cube, cs) in self.cubes.iter_mut().zip(cube_states) {
            cube.restore_state(cs)?;
        }
        self.fabric = CubeFabric::from_value(field(state, "fabric")?)?;
        let hop_req: Vec<(Cycle, u64, u16, MemRequest)> = decode(state, "hop_req")?;
        self.hop_req = hop_req.into_iter().map(Reverse).collect();
        let hop_resp: Vec<(Cycle, u64, MemResponse)> = decode(state, "hop_resp")?;
        self.hop_resp = hop_resp.into_iter().map(Reverse).collect();
        self.arrival_q = arrival_q;
        self.in_transit = in_transit;
        self.seq = decode(state, "seq")?;
        self.cube_out.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::TopologyKind;
    use camps_types::request::{AccessKind, CoreId, RequestId};

    fn cfg(cubes: u32, kind: TopologyKind) -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.topology.cubes = cubes;
        c.topology.kind = kind;
        c
    }

    fn read(id: u64, addr: u64, now: Cycle) -> MemRequest {
        MemRequest {
            id: RequestId(id),
            addr: PhysAddr(addr),
            kind: AccessKind::Read,
            core: CoreId(0),
            created_at: now,
        }
    }

    fn drain(
        t: &mut Topology,
        start: Cycle,
        want: usize,
        limit: Cycle,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while out.len() < want && now < start + limit {
            now += 1;
            t.tick(now, &mut out, &mut Profiler::off());
        }
        (out, now)
    }

    #[test]
    fn responses_carry_global_addresses_back() {
        for kind in [TopologyKind::Chain, TopologyKind::Star] {
            let mut t = Topology::new(&cfg(4, kind), SchemeKind::Nopf).unwrap();
            // One read per cube: 1 KB granule stride with the default
            // 16-block interleave.
            for i in 0..4u64 {
                assert!(t.submit(read(i, i * 1024, 0), 0));
            }
            let (out, _) = drain(&mut t, 0, 4, 100_000);
            assert_eq!(out.len(), 4);
            let mut addrs: Vec<u64> = out.iter().map(|r| r.addr.0).collect();
            addrs.sort_unstable();
            assert_eq!(addrs, vec![0, 1024, 2048, 3072]);
        }
    }

    #[test]
    fn remote_cube_pays_interconnect_latency() {
        let paper = cfg(1, TopologyKind::Chain);
        let mut single = Topology::new(&paper, SchemeKind::Nopf).unwrap();
        assert!(single.submit(read(1, 0, 0), 0));
        let (out, _) = drain(&mut single, 0, 1, 100_000);
        let local_latency = out[0].latency();

        // Same cube-local address, but on the far cube of a 4-chain:
        // global addr with cube bits = 3 at the 1 KB granule.
        let mut far = Topology::new(&cfg(4, TopologyKind::Chain), SchemeKind::Nopf).unwrap();
        assert!(far.submit(read(1, 3 * 1024 /* cube 3, local 0 */, 0), 0));
        let (out, _) = drain(&mut far, 0, 1, 100_000);
        assert!(
            out[0].latency() > local_latency,
            "3 hops each way must cost more: {} vs {local_latency}",
            out[0].latency()
        );
    }

    #[test]
    fn headroom_reserves_in_transit_slots() {
        let mut t = Topology::new(&cfg(2, TopologyKind::Chain), SchemeKind::Nopf).unwrap();
        // Cube 1 addresses: granule 1 (1 KB..2 KB). Host queue depth is
        // 64; submit until refused.
        let mut accepted = 0u64;
        for i in 0..200u64 {
            if t.submit(read(i, 1024 + (i % 16) * 64, 0), 0) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 64, "transit must not overcommit the cube");
        assert_eq!(t.headroom_for(PhysAddr(1024)), 0);
        // The other cube is unaffected.
        assert_eq!(t.headroom_for(PhysAddr(0)), 64);
    }

    #[test]
    fn pool_drains_to_idle_under_load() {
        let mut t = Topology::new(&cfg(4, TopologyKind::Star), SchemeKind::Base).unwrap();
        for i in 0..32u64 {
            assert!(t.submit(read(i, i * 1024, 0), 0));
        }
        assert!(t.busy());
        let (out, mut now) = drain(&mut t, 0, 32, 400_000);
        assert_eq!(out.len(), 32);
        // Responses are all home, but memory-side prefetch fills may
        // still be in flight; the pool must reach quiescence.
        let mut sink = Vec::new();
        while t.busy() && now < 800_000 {
            now += 1;
            t.tick(now, &mut sink, &mut Profiler::off());
        }
        assert!(!t.busy(), "pool must drain");
        let stats = t.finalize(400_000);
        assert_eq!(stats.reads.get(), 32);
    }

    #[test]
    fn multicube_snapshot_round_trips_mid_flight() {
        let base = cfg(2, TopologyKind::Chain);
        let mut a = Topology::new(&base, SchemeKind::Camps).unwrap();
        for i in 0..24u64 {
            a.submit(read(i, i * 1024, 0), 0);
        }
        let mut out_a = Vec::new();
        let mut now = 0;
        while now < 40 {
            now += 1;
            a.tick(now, &mut out_a, &mut Profiler::off());
        }
        assert!(a.busy(), "pool must still be mid-flight");
        let state = a.save_state();
        let mut b = Topology::new(&base, SchemeKind::Camps).unwrap();
        b.restore_state(&state).unwrap();
        let pending = out_a.len();
        let mut out_b = Vec::new();
        while (a.busy() || b.busy()) && now < 500_000 {
            now += 1;
            a.tick(now, &mut out_a, &mut Profiler::off());
            b.tick(now, &mut out_b, &mut Profiler::off());
        }
        assert_eq!(&out_a[pending..], &out_b[..]);
        assert_eq!(
            format!("{:?}", a.finalize(now)),
            format!("{:?}", b.finalize(now))
        );
    }

    #[test]
    fn single_cube_snapshot_is_the_bare_device_state() {
        let paper = cfg(1, TopologyKind::Chain);
        let mut t = Topology::new(&paper, SchemeKind::Nopf).unwrap();
        t.submit(read(1, 0, 0), 0);
        let mut sink = Vec::new();
        t.tick(1, &mut sink, &mut Profiler::off());
        let via_topology = t.save_state();
        // The same traffic through a bare device must serialize equal.
        let mut d = HmcDevice::new(&paper, SchemeKind::Nopf).unwrap();
        d.submit(read(1, 0, 0));
        d.tick(1, &mut sink, &mut Profiler::off());
        assert_eq!(via_topology, d.save_state());
        // And a legacy (bare-device) snapshot restores into a 1-cube pool.
        let mut back = Topology::new(&paper, SchemeKind::Nopf).unwrap();
        back.restore_state(&d.save_state()).unwrap();
    }

    #[test]
    fn legacy_snapshot_rejected_by_multicube_pool() {
        let paper = cfg(1, TopologyKind::Chain);
        let d = HmcDevice::new(&paper, SchemeKind::Nopf).unwrap();
        let mut pool = Topology::new(&cfg(2, TopologyKind::Chain), SchemeKind::Nopf).unwrap();
        let err = pool.restore_state(&d.save_state()).unwrap_err();
        assert!(err.to_string().contains("cube"), "got: {err}");
    }
}
