//! `camps` — command-line experiment runner.
//!
//! ```text
//! camps run   <MIX> <SCHEME> [--scale quick|standard|thorough] [--seed N] [--json]
//!             [--engine polling|event] [--cubes N] [--topology chain|star]
//!             [--checkpoint-every CYCLES] [--checkpoint-path FILE] [--max-recoveries N]
//!             [--trace-out FILE] [--trace-filter SUBSTR]
//!             [--metrics-every CYCLES] [--metrics-out FILE]
//!             [--profile] [--profile-out FILE]
//! camps run   --resume <FILE> [--json]   # continue a checkpointed run
//! camps sweep [--schemes a,b,…] [--mixes a,b,…] [--scale …] [--seed N] [--json]
//!             [--cubes N] [--topology chain|star]
//!             [--journal FILE] [--retries N] [--backoff-ms N] [--deadline-secs S]
//!             [--checkpoint-every CYCLES] [--threads N] [--trace-out FILE]
//!             [--progress-secs S]
//! camps list                    # available mixes, schemes, benchmarks
//! camps config                  # dump the Table I configuration as JSON
//! ```
//!
//! `--engine` selects the stepping strategy (default `event`). Both
//! engines produce bit-identical results; `polling` ticks every cycle
//! and is kept as the slow reference path.
//!
//! `--cubes` sizes the memory pool (power of two; default 1, the
//! paper's single-cube machine) and `--topology` picks how the cubes
//! are wired (`chain` daisy-chains them off the host, `star` hangs
//! every cube one hop off host-attached cube 0). With one cube both
//! flags are inert and the machine is bit-identical to the
//! pre-topology engine.
//!
//! The JSON output is the serialized [`camps::metrics::RunResult`] —
//! machine-consumable for plotting pipelines.
//!
//! `--checkpoint-every` snapshots the run to `--checkpoint-path`
//! (default `camps.ckpt.json`) every N cycles; `--resume` continues from
//! such a file. `--max-recoveries` bounds rollback-and-retry attempts on
//! watchdog/integrity failures (0, the default, disables recovery, so
//! the original typed error propagates and the process exits nonzero).
//!
//! `--trace-out` writes a Chrome trace-event JSON of every request
//! lifecycle (open it at `ui.perfetto.dev`); `--trace-filter` keeps only
//! stages whose name contains the substring. `--metrics-every N` samples
//! the machine every N cycles into `--metrics-out` (CSV when the file
//! ends in `.csv`, JSONL otherwise; defaults to `camps.metrics.jsonl`).
//!
//! `--profile` turns on the host-side self-profiler: per-component
//! wall-clock attribution of the simulator's own run time, printed as a
//! table after the run (and embedded in `--json` output under
//! `profile`). `--profile-out` additionally writes folded-stack lines
//! for flamegraph tooling (`flamegraph.pl`, speedscope, inferno).
//!
//! `camps sweep` runs under the resilient supervisor
//! ([`camps::sweep`]): `--journal` streams completed results into an
//! append-only crash-safe JSONL file (re-invoking with the same journal
//! skips finished jobs, so a killed sweep resumes where it stopped);
//! `--retries`/`--backoff-ms` retry failed jobs (resuming from their
//! last `--checkpoint-every` checkpoint) before quarantining them;
//! `--deadline-secs` bounds each attempt's wall-clock time;
//! `--threads` overrides the worker count (as does `RAYON_NUM_THREADS`).
//! On sweeps, `--trace-out` writes sweep-level Perfetto instants (job
//! completions, retries, quarantines) instead of a per-request trace.
//! The exit code is nonzero when any job ends quarantined; partial
//! results are still printed.

use camps::experiment::{
    resume_mix, run_mix_observed, run_mix_recoverable, run_mix_recoverable_observed,
    run_mix_with_engine, RunLength,
};
use camps::metrics::{average_speedup, speedup_table, RunResult};
use camps::recovery::RecoveryPolicy;
use camps::sweep::{run_sweep, SweepPolicy};
use camps::system::Engine;
use camps_obs::{ObsConfig, TraceHandle};
use camps_prefetch::SchemeKind;
use camps_types::config::{SystemConfig, TopologyKind};
use camps_workloads::{Mix, ALL_MIXES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Parsed command-line options shared by `run` and `sweep`.
struct Options {
    scale: RunLength,
    seed: u64,
    json: bool,
    schemes: Vec<SchemeKind>,
    mixes: Vec<&'static Mix>,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<PathBuf>,
    max_recoveries: u32,
    resume: Option<PathBuf>,
    engine: Engine,
    obs: ObsConfig,
    journal: Option<PathBuf>,
    retries: u32,
    backoff_ms: u64,
    deadline_secs: Option<f64>,
    threads: Option<usize>,
    progress_secs: Option<f64>,
    cubes: u32,
    topology: TopologyKind,
}

fn parse_scheme(s: &str) -> Option<SchemeKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "nopf" => SchemeKind::Nopf,
        "base" => SchemeKind::Base,
        "basehit" | "base-hit" => SchemeKind::BaseHit,
        "mmd" => SchemeKind::Mmd,
        "camps" => SchemeKind::Camps,
        "campsmod" | "camps-mod" => SchemeKind::CampsMod,
        _ => return None,
    })
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: RunLength::quick(),
        seed: 0xCA3B5,
        json: false,
        schemes: SchemeKind::ALL.to_vec(),
        mixes: ALL_MIXES.iter().collect(),
        checkpoint_every: None,
        checkpoint_path: None,
        max_recoveries: 0,
        resume: None,
        engine: Engine::default(),
        obs: ObsConfig::default(),
        journal: None,
        retries: 0,
        backoff_ms: 0,
        deadline_secs: None,
        threads: None,
        progress_secs: None,
        cubes: 1,
        topology: TopologyKind::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = match it.next().map(String::as_str) {
                    Some("tiny") => RunLength::tiny(),
                    Some("quick") => RunLength::quick(),
                    Some("standard") => RunLength::standard(),
                    Some("thorough") => RunLength::thorough(),
                    other => return Err(format!("bad --scale {other:?}")),
                }
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--json" => opts.json = true,
            "--schemes" => {
                let list = it.next().ok_or("--schemes needs a list")?;
                opts.schemes = list
                    .split(',')
                    .map(|s| parse_scheme(s).ok_or_else(|| format!("unknown scheme `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--mixes" => {
                let list = it.next().ok_or("--mixes needs a list")?;
                opts.mixes = list
                    .split(',')
                    .map(|m| Mix::by_id(m).ok_or_else(|| format!("unknown mix `{m}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--checkpoint-every needs a cycle count")?,
                );
            }
            "--checkpoint-path" => {
                opts.checkpoint_path = Some(PathBuf::from(
                    it.next().ok_or("--checkpoint-path needs a file")?,
                ));
            }
            "--max-recoveries" => {
                opts.max_recoveries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-recoveries needs a number")?;
            }
            "--resume" => {
                opts.resume = Some(PathBuf::from(it.next().ok_or("--resume needs a file")?));
            }
            "--engine" => {
                opts.engine = it.next().ok_or("--engine needs polling|event")?.parse()?;
            }
            "--trace-out" => {
                opts.obs.trace_out =
                    Some(PathBuf::from(it.next().ok_or("--trace-out needs a file")?));
            }
            "--trace-filter" => {
                opts.obs.trace_filter =
                    Some(it.next().ok_or("--trace-filter needs a substring")?.clone());
            }
            "--metrics-every" => {
                opts.obs.metrics_every = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--metrics-every needs a cycle count")?,
                );
            }
            "--metrics-out" => {
                opts.obs.metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a file")?,
                ));
            }
            "--profile" => {
                opts.obs.profile = true;
            }
            "--profile-out" => {
                opts.obs.profile_out = Some(PathBuf::from(
                    it.next().ok_or("--profile-out needs a file")?,
                ));
            }
            "--journal" => {
                opts.journal = Some(PathBuf::from(it.next().ok_or("--journal needs a file")?));
            }
            "--retries" => {
                opts.retries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--retries needs a number")?;
            }
            "--backoff-ms" => {
                opts.backoff_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--backoff-ms needs milliseconds")?;
            }
            "--deadline-secs" => {
                opts.deadline_secs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--deadline-secs needs seconds")?,
                );
            }
            "--threads" => {
                opts.threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a count")?,
                );
            }
            "--progress-secs" => {
                opts.progress_secs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--progress-secs needs seconds")?,
                );
            }
            "--cubes" => {
                opts.cubes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--cubes needs a power-of-two count")?;
            }
            "--topology" => {
                opts.topology = it.next().ok_or("--topology needs chain|star")?.parse()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn emit(results: &[RunResult], json: bool) -> ExitCode {
    if json {
        match serde_json::to_string_pretty(results) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("camps: cannot serialize results: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    for r in results {
        println!("{}", r.summary());
        if let Some(p) = &r.profile {
            println!("{}", p.render_table());
        }
    }
    if results.len() > 1 {
        let cells = speedup_table(results);
        if !cells.is_empty() {
            println!("speedup vs BASE (geomean over mixes):");
            for scheme in SchemeKind::ALL {
                if let Some(v) = average_speedup(&cells, scheme) {
                    println!("  {:>10}: {v:.3}", scheme.name());
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SystemConfig::paper_default();
    match args.first().map(String::as_str) {
        Some("run") => {
            // `camps run --resume <FILE>` takes mix/scheme/seed from the
            // snapshot manifest, so the positionals are optional there.
            let flags_only = args.get(1).is_some_and(|a| a.starts_with("--"));
            let (mix_scheme, rest) = if flags_only {
                (None, &args[1..])
            } else {
                if args.len() < 3 {
                    eprintln!(
                        "usage: camps run <MIX> <SCHEME> [options] | camps run --resume <FILE>"
                    );
                    return ExitCode::FAILURE;
                }
                let Some(mix) = Mix::by_id(&args[1]) else {
                    eprintln!("unknown mix `{}` (try `camps list`)", args[1]);
                    return ExitCode::FAILURE;
                };
                let Some(scheme) = parse_scheme(&args[2]) else {
                    eprintln!("unknown scheme `{}` (try `camps list`)", args[2]);
                    return ExitCode::FAILURE;
                };
                (Some((mix, scheme)), &args[3..])
            };
            let mut opts = match parse_options(rest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            cfg.topology.cubes = opts.cubes;
            cfg.topology.kind = opts.topology;
            if opts.obs.wants_any() {
                if !TraceHandle::compiled() {
                    eprintln!(
                        "camps: this binary was built without the `obs` feature; \
                         rebuild without `--no-default-features` to trace"
                    );
                    return ExitCode::FAILURE;
                }
                if opts.resume.is_some() {
                    eprintln!("camps: tracing flags are not supported with --resume");
                    return ExitCode::FAILURE;
                }
                // Metrics sampling with no sink still deserves a file.
                if opts.obs.metrics_every.is_some() && opts.obs.metrics_out.is_none() {
                    opts.obs.metrics_out = Some(PathBuf::from("camps.metrics.jsonl"));
                }
            }
            if let Some(path) = &opts.resume {
                let result = match resume_mix(&cfg, path) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("camps: resume failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                return emit(&[result], opts.json);
            }
            let Some((mix, scheme)) = mix_scheme else {
                eprintln!("camps run needs <MIX> <SCHEME>, or --resume <FILE>");
                return ExitCode::FAILURE;
            };
            let wants_recovery = opts.max_recoveries > 0 || opts.checkpoint_every.is_some();
            let result = if wants_recovery {
                let policy = RecoveryPolicy {
                    max_recoveries: opts.max_recoveries,
                    checkpoint_every: opts.checkpoint_every,
                    checkpoint_path: opts.checkpoint_every.is_some().then(|| {
                        opts.checkpoint_path
                            .clone()
                            .unwrap_or_else(|| PathBuf::from("camps.ckpt.json"))
                    }),
                };
                let recovered = if opts.obs.wants_any() {
                    run_mix_recoverable_observed(
                        &cfg,
                        mix,
                        scheme,
                        &opts.scale,
                        opts.seed,
                        &policy,
                        &opts.obs,
                    )
                } else {
                    run_mix_recoverable(&cfg, mix, scheme, &opts.scale, opts.seed, &policy)
                };
                match recovered {
                    Ok((r, report)) => {
                        if report.recovered() || report.checkpoints_taken > 0 {
                            eprint!("{}", report.render());
                        }
                        r
                    }
                    Err(e) => {
                        eprintln!("camps: run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if opts.obs.wants_any() {
                match run_mix_observed(
                    &cfg,
                    mix,
                    scheme,
                    &opts.scale,
                    opts.seed,
                    opts.engine,
                    &opts.obs,
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("camps: run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match run_mix_with_engine(&cfg, mix, scheme, &opts.scale, opts.seed, opts.engine) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("camps: run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            if let Some(p) = &opts.obs.trace_out {
                eprintln!("camps: trace written to {}", p.display());
            }
            if let Some(p) = &opts.obs.metrics_out {
                eprintln!("camps: metrics written to {}", p.display());
            }
            emit(&[result], opts.json)
        }
        Some("sweep") => {
            let opts = match parse_options(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            cfg.topology.cubes = opts.cubes;
            cfg.topology.kind = opts.topology;
            if opts.obs.trace_filter.is_some()
                || opts.obs.metrics_every.is_some()
                || opts.obs.metrics_out.is_some()
                || opts.obs.wants_profile()
            {
                eprintln!(
                    "camps: per-request tracing/profiling flags apply to `camps run`; \
                     `camps sweep` supports only --trace-out (sweep-level instants)"
                );
                return ExitCode::FAILURE;
            }
            if opts.obs.trace_out.is_some() && !TraceHandle::compiled() {
                eprintln!(
                    "camps: this binary was built without the `obs` feature; \
                     rebuild without `--no-default-features` to trace"
                );
                return ExitCode::FAILURE;
            }
            let mixes: Vec<Mix> = opts.mixes.iter().map(|m| **m).collect();
            let policy = SweepPolicy {
                max_retries: opts.retries,
                retry_backoff: Duration::from_millis(opts.backoff_ms),
                job_deadline: opts.deadline_secs.map(Duration::from_secs_f64),
                checkpoint_every: opts.checkpoint_every,
                journal_path: opts.journal.clone(),
                scratch_dir: None,
                threads: opts.threads,
                trace_out: opts.obs.trace_out.clone(),
                progress_every: opts.progress_secs.map(Duration::from_secs_f64),
                faults: Default::default(),
            };
            let run = match run_sweep(&cfg, &mixes, &opts.schemes, &opts.scale, opts.seed, &policy)
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("camps: sweep failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprint!("{}", run.report.render());
            let results: Vec<RunResult> = run.results.into_iter().flatten().collect();
            let code = emit(&results, opts.json);
            if run.report.quarantined > 0 {
                // Partial results were printed, but the sweep is not
                // whole — fail the invocation for scripts and CI.
                return ExitCode::FAILURE;
            }
            code
        }
        Some("list") => {
            println!("mixes (Table II):");
            for m in &ALL_MIXES {
                println!("  {:4} [{:?}] {}", m.id, m.class, m.benchmarks.join(", "));
            }
            println!("\nschemes: nopf base basehit mmd camps campsmod");
            ExitCode::SUCCESS
        }
        Some("config") => match serde_json::to_string_pretty(&cfg) {
            Ok(s) => {
                println!("{s}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("camps: cannot serialize config: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: camps <run|sweep|list|config> …\n\
                 \n  camps run HM1 campsmod --scale quick --json\
                 \n  camps run HM1 campsmod --engine polling   # slow reference engine\
                 \n  camps run HM1 campsmod --checkpoint-every 1000000 --max-recoveries 3\
                 \n  camps run HM1 campsmod --trace-out run.trace.json --metrics-every 1000\
                 \n  camps run --resume camps.ckpt.json\
                 \n  camps sweep --mixes HM1,LM1 --schemes base,campsmod\
                 \n  camps sweep --cubes 2 --topology chain   # multi-cube pool\
                 \n  camps sweep --journal sweep.jsonl --retries 2 --checkpoint-every 1000000\
                 \n  camps list | camps config"
            );
            ExitCode::FAILURE
        }
    }
}
