//! Resilient parallel sweep supervisor.
//!
//! Runs a workload-mix × scheme job matrix concurrently on real worker
//! threads (the vendored rayon pool) with production-grade failure
//! handling, in place of [`run_matrix`]'s original all-or-nothing
//! semantics:
//!
//! * **Fault isolation** — each job runs under `catch_unwind`; a panic
//!   becomes a typed [`SimError::Panic`] in that job's record instead of
//!   aborting the sweep, and sibling jobs never notice.
//! * **Wall-clock deadlines** — an optional per-attempt budget enforced
//!   alongside the cycle-domain watchdog: the watchdog catches a
//!   *wedged* machine, the deadline catches a *slow* one
//!   ([`SimError::Deadline`]).
//! * **Retry with resume** — failed attempts are retried with
//!   exponential backoff, resuming from the job's last periodic
//!   checkpoint (bit-identical restore, see DESIGN.md §8) instead of
//!   recomputing from scratch. Jobs that keep failing are
//!   **quarantined** and reported; everything else completes.
//! * **Crash-safe journal** — completed results stream into an
//!   append-only JSONL journal keyed by (config hash, mix, scheme, seed,
//!   run length) with a per-line checksum. A `kill -9`'d sweep resumes
//!   by skipping journaled jobs; a torn final line (the crash landed
//!   mid-`write`) is detected, tolerated, and compacted away.
//! * **Partial results** — the sweep always returns a [`SweepRun`]: the
//!   per-job results that exist, the per-job errors that occurred, and a
//!   [`SweepReport`] accounting for every job
//!   (completed/journaled/quarantined, retries, deadline hits, panics,
//!   wall time).
//!
//! Determinism: each job is single-threaded and seeded, the vendored
//! rayon pool returns results in job order regardless of thread count,
//! and checkpoint restore is bit-identical — so a sweep's merged results
//! are byte-for-byte the same whether it ran on 1 thread or 16, straight
//! through or killed and resumed.
//!
//! [`run_matrix`]: crate::experiment::run_matrix

use crate::experiment::RunLength;
use crate::metrics::RunResult;
use crate::recovery::{config_hash, read_snapshot, restore_run, write_snapshot};
use crate::system::System;
use camps_obs::{ObsConfig, TraceHandle};
use camps_prefetch::SchemeKind;
use camps_types::clock::Cycle;
use camps_types::config::SystemConfig;
use camps_types::error::SimError;
use camps_types::snapshot::fnv1a;
use camps_workloads::Mix;
use rayon::prelude::*;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identity of one sweep job, pinned tightly enough that a journaled
/// result can only ever be reused for the exact computation that
/// produced it: machine configuration (hashed), workload, scheme,
/// workload seed, and run length.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobKey {
    /// FNV-1a hash of the compact-JSON `SystemConfig`.
    pub config_hash: u64,
    /// Table II mix id.
    pub mix_id: String,
    /// Prefetching scheme.
    pub scheme: SchemeKind,
    /// Workload seed.
    pub seed: u64,
    /// Functional warmup instructions per core.
    pub warmup_instructions: u64,
    /// Detailed instructions per core.
    pub instructions: u64,
    /// Hard cycle cap.
    pub max_cycles: Cycle,
}

impl JobKey {
    fn new(config_hash: u64, mix: &Mix, scheme: SchemeKind, seed: u64, len: &RunLength) -> Self {
        Self {
            config_hash,
            mix_id: mix.id.to_string(),
            scheme,
            seed,
            warmup_instructions: len.warmup_instructions,
            instructions: len.instructions,
            max_cycles: len.max_cycles,
        }
    }

    /// `HM1/CAMPS-MOD#7` — the job's display identity.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}#{}", self.mix_id, self.scheme.name(), self.seed)
    }
}

/// A deterministic fault to apply to one job, for testing the
/// supervisor's isolation and retry machinery (the sweep analogue of
/// [`camps_types::config::FaultPlan`]).
#[derive(Debug, Clone, Copy)]
pub enum InjectedFault {
    /// Panic the instant the job starts.
    PanicOnStart,
    /// Panic once simulation reaches this cycle — late enough to leave a
    /// checkpoint behind, so the retry exercises resume-from-checkpoint.
    PanicAtCycle(Cycle),
    /// Sleep this long at job start, tripping the wall-clock deadline.
    SleepOnStart(Duration),
    /// Stall a vault from the given cycle (the machine wedges and the
    /// forward-progress watchdog fires). Alters the job's effective
    /// config, so checkpoints are suppressed for the faulted attempt.
    StallVault {
        /// Vault index to stall.
        vault: u32,
        /// First stalled cycle.
        from: Cycle,
    },
}

/// Which jobs fail, how, and for how many attempts.
#[derive(Debug, Clone, Default)]
pub struct SweepFaultPlan {
    entries: Vec<(usize, InjectedFault, u32)>,
}

impl SweepFaultPlan {
    /// An empty plan (no injected faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` for job index `job` (row-major over
    /// mixes × schemes) on every attempt numbered below `attempts` —
    /// `1` faults only the first attempt (the retry succeeds),
    /// `u32::MAX` faults every attempt (the job quarantines).
    #[must_use]
    pub fn inject(mut self, job: usize, fault: InjectedFault, attempts: u32) -> Self {
        self.entries.push((job, fault, attempts));
        self
    }

    fn fault_for(&self, job: usize, attempt: u32) -> Option<InjectedFault> {
        self.entries
            .iter()
            .find(|(j, _, upto)| *j == job && attempt < *upto)
            .map(|(_, f, _)| *f)
    }
}

/// Failure-handling knobs for [`run_sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepPolicy {
    /// Retries per job after the first attempt (0 = fail fast into
    /// quarantine on the first error).
    pub max_retries: u32,
    /// Base backoff between a failure and its retry; doubles per
    /// attempt. `Duration::ZERO` retries immediately.
    pub retry_backoff: Duration,
    /// Per-attempt wall-clock budget; `None` disables the deadline.
    pub job_deadline: Option<Duration>,
    /// Periodic per-job checkpoint interval (cycles). Enables
    /// retry-with-resume and crash resume of half-finished jobs; `None`
    /// means retries restart from scratch.
    pub checkpoint_every: Option<Cycle>,
    /// Append-only JSONL journal of completed results. Jobs already
    /// journaled (same [`JobKey`]) are skipped on re-invocation.
    pub journal_path: Option<PathBuf>,
    /// Directory for per-job checkpoint files. Defaults to
    /// `<journal>.ckpts/` next to the journal, else a config-hash-keyed
    /// directory under the system temp dir.
    pub scratch_dir: Option<PathBuf>,
    /// Worker thread count; `None`/0 uses `RAYON_NUM_THREADS` or all
    /// host cores.
    pub threads: Option<usize>,
    /// When set, sweep-level Perfetto instants (job done, retry,
    /// quarantine; timestamps in wall-clock microseconds since sweep
    /// start) are written here.
    pub trace_out: Option<PathBuf>,
    /// When set, a heartbeat line (jobs done/total, retries so far,
    /// quarantines so far, elapsed, crude ETA) is printed to stderr at
    /// this interval while the sweep runs. `None` (the default) keeps
    /// sweeps silent for scripting.
    pub progress_every: Option<Duration>,
    /// Injected faults (tests, soak, CI fault drills).
    pub faults: SweepFaultPlan,
}

/// Live sweep counters shared between the rayon workers and the
/// heartbeat reporter thread ([`SweepPolicy::progress_every`]).
#[derive(Debug, Default)]
struct SweepProgress {
    done: std::sync::atomic::AtomicUsize,
    retries: std::sync::atomic::AtomicU64,
    quarantined: std::sync::atomic::AtomicUsize,
}

impl SweepProgress {
    /// Records one finished job (journal skips count too — the user
    /// wants distance-to-done, not distance-to-computed).
    fn note_job(&self, retries: u32, quarantined: bool) {
        use std::sync::atomic::Ordering::Relaxed;
        self.retries.fetch_add(u64::from(retries), Relaxed);
        if quarantined {
            self.quarantined.fetch_add(1, Relaxed);
        }
        self.done.fetch_add(1, Relaxed);
    }

    /// One stderr heartbeat line with a crude linear ETA.
    fn report(&self, total: usize, started: Instant) {
        use std::sync::atomic::Ordering::Relaxed;
        let done = self.done.load(Relaxed);
        let retries = self.retries.load(Relaxed);
        let quarantined = self.quarantined.load(Relaxed);
        let elapsed = started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < total {
            let per_job = elapsed / done as f64;
            format!(", ETA ~{:.0}s", per_job * (total - done) as f64)
        } else {
            String::new()
        };
        eprintln!(
            "sweep: {done}/{total} jobs done, {retries} retries, \
             {quarantined} quarantined, {elapsed:.0}s elapsed{eta}"
        );
    }
}

/// What ultimately happened to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran (possibly after retries) and produced a result this sweep.
    Completed,
    /// Skipped: an identical-key result was already in the journal.
    Journaled,
    /// Exhausted its retry budget (or failed non-retryably); no result.
    Quarantined,
}

/// Per-job accounting in the [`SweepReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Table II mix id.
    pub mix_id: String,
    /// Prefetching scheme.
    pub scheme: SchemeKind,
    /// Workload seed.
    pub seed: u64,
    /// Final disposition.
    pub outcome: JobOutcome,
    /// Attempts actually executed this sweep (0 for journaled jobs).
    pub attempts: u32,
    /// Retries that resumed from a checkpoint instead of restarting.
    pub resumed_retries: u32,
    /// Attempts cut by the wall-clock deadline.
    pub deadline_hits: u32,
    /// Attempts that panicked.
    pub panics: u32,
    /// Attempts aborted by the cycle-domain watchdog.
    pub watchdog_trips: u32,
    /// Wall-clock seconds spent on this job (all attempts + backoff).
    pub wall_secs: f64,
    /// Rendered final error for quarantined jobs.
    #[serde(default)]
    pub error: Option<String>,
}

/// Aggregate outcome of a sweep: every job accounted for, nothing
/// silently discarded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Per-job records, in job (row-major mixes × schemes) order.
    pub jobs: Vec<JobRecord>,
    /// Jobs that ran to completion this sweep.
    pub completed: usize,
    /// Jobs skipped because the journal already had their result.
    pub journaled: usize,
    /// Jobs that exhausted their retry budget.
    pub quarantined: usize,
    /// Total retries across all jobs (attempts beyond each job's first).
    pub total_retries: u32,
    /// End-to-end sweep wall-clock seconds.
    pub wall_secs: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Journal entries loaded at startup (before key filtering).
    pub journal_entries_loaded: usize,
    /// Journal lines discarded as torn/corrupt at startup.
    pub journal_lines_discarded: usize,
    /// Journal append failures (results were still returned in-memory).
    pub journal_append_errors: usize,
}

impl SweepReport {
    /// True when every job has a result (none quarantined).
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.quarantined == 0
    }

    /// Human-readable multi-line summary (what the CLI prints).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "sweep: {} job(s) on {} thread(s) in {:.1}s — {} completed, {} from journal, \
             {} quarantined, {} retri(es)\n",
            self.jobs.len(),
            self.threads,
            self.wall_secs,
            self.completed,
            self.journaled,
            self.quarantined,
            self.total_retries,
        );
        if self.journal_lines_discarded > 0 {
            let _ = writeln!(
                out,
                "  journal: {} torn/corrupt line(s) discarded and compacted away",
                self.journal_lines_discarded
            );
        }
        for j in &self.jobs {
            if j.outcome == JobOutcome::Quarantined {
                let _ = writeln!(
                    out,
                    "  QUARANTINED {}/{}#{} after {} attempt(s) \
                     ({} panic(s), {} deadline hit(s), {} watchdog trip(s)): {}",
                    j.mix_id,
                    j.scheme.name(),
                    j.seed,
                    j.attempts,
                    j.panics,
                    j.deadline_hits,
                    j.watchdog_trips,
                    j.error.as_deref().unwrap_or("unknown error"),
                );
            } else if j.attempts > 1 {
                let _ = writeln!(
                    out,
                    "  recovered {}/{}#{} on attempt {} ({} resumed from checkpoint)",
                    j.mix_id,
                    j.scheme.name(),
                    j.seed,
                    j.attempts,
                    j.resumed_retries,
                );
            }
        }
        out
    }
}

/// Everything a sweep produces: per-job results, per-job errors, and the
/// report. Indices are job order (row-major mixes × schemes); a job has
/// exactly one of a result or an error.
#[derive(Debug)]
pub struct SweepRun {
    /// Per-job results; `None` for quarantined jobs.
    pub results: Vec<Option<RunResult>>,
    /// Per-job final errors; `None` for jobs with a result.
    pub errors: Vec<Option<SimError>>,
    /// Aggregate accounting.
    pub report: SweepReport,
}

impl SweepRun {
    /// The completed results, in job order (quarantined jobs skipped).
    #[must_use]
    pub fn completed_results(&self) -> Vec<&RunResult> {
        self.results.iter().filter_map(Option::as_ref).collect()
    }
}

/// One journaled (key, result) pair.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The job identity the result belongs to.
    pub key: JobKey,
    /// The completed run's result.
    pub result: RunResult,
}

/// What loading a journal found.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalRecovery {
    /// Intact entries loaded.
    pub entries: usize,
    /// Torn/corrupt lines discarded (a crash mid-append leaves at most
    /// one, but any number is tolerated).
    pub discarded_lines: usize,
    /// True when the file was rewritten to drop the discarded lines.
    pub compacted: bool,
}

fn io_err(path: &Path, e: std::io::Error) -> SimError {
    SimError::Io {
        path: path.display().to_string(),
        source: e,
    }
}

/// Serializes one journal line: `{"key":…,"checksum":…,"result":…}`.
/// The checksum is FNV-1a over the compact-JSON result subtree, so a
/// torn or bit-rotted line is detected even if it still parses as JSON.
fn encode_journal_line(key: &JobKey, result: &RunResult) -> Result<String, SimError> {
    let result_value = result.to_value();
    let result_text = serde_json::to_string(&result_value).map_err(|e| SimError::Snapshot {
        reason: format!("journal result serialization failed: {e}"),
    })?;
    let doc = Value::Map(vec![
        ("key".into(), key.to_value()),
        ("checksum".into(), Value::U64(fnv1a(result_text.as_bytes()))),
        ("result".into(), result_value),
    ]);
    serde_json::to_string(&doc).map_err(|e| SimError::Snapshot {
        reason: format!("journal line serialization failed: {e}"),
    })
}

/// Decodes one journal line; `None` for anything torn, corrupt, or
/// checksum-mismatched (the caller counts and discards it).
fn decode_journal_line(line: &str) -> Option<JournalEntry> {
    let doc: Value = serde_json::from_str(line).ok()?;
    let key = JobKey::from_value(camps_types::snapshot::field(&doc, "key").ok()?).ok()?;
    let declared = u64::from_value(camps_types::snapshot::field(&doc, "checksum").ok()?).ok()?;
    let result_value = camps_types::snapshot::field(&doc, "result").ok()?;
    let result_text = serde_json::to_string(result_value).ok()?;
    if fnv1a(result_text.as_bytes()) != declared {
        return None;
    }
    let result = RunResult::from_value(result_value).ok()?;
    Some(JournalEntry { key, result })
}

/// Reads every intact entry from a journal file. A missing file is an
/// empty journal; torn or corrupt lines are counted and skipped.
///
/// # Errors
/// [`SimError::Io`] only for real I/O failures (permissions etc.), never
/// for content damage.
pub fn read_journal(path: &Path) -> Result<(Vec<JournalEntry>, JournalRecovery), SimError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(io_err(path, e)),
    };
    let mut entries = Vec::new();
    let mut recovery = JournalRecovery::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match decode_journal_line(line) {
            Some(entry) => entries.push(entry),
            None => recovery.discarded_lines += 1,
        }
    }
    recovery.entries = entries.len();
    Ok((entries, recovery))
}

/// The append side of the journal: one shared handle, line-at-a-time
/// `write_all` + flush so a crash can tear at most the final line.
struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Loads existing entries (tolerating a torn tail), compacts the
    /// file if anything had to be discarded, and opens it for append.
    fn open(path: &Path) -> Result<(Vec<JournalEntry>, JournalRecovery, Self), SimError> {
        let (entries, mut recovery) = read_journal(path)?;
        if recovery.discarded_lines > 0 {
            // Rewrite with only the intact lines (atomic tmp + rename):
            // later appends must not land after a torn fragment.
            let mut text = String::new();
            for e in &entries {
                text.push_str(&encode_journal_line(&e.key, &e.result)?);
                text.push('\n');
            }
            let tmp = path.with_extension("compact.tmp");
            std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, e))?;
            std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
            recovery.compacted = true;
        }
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
        let file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok((
            entries,
            recovery,
            Self {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
        ))
    }

    /// Appends one completed result as a single atomic-enough line (one
    /// `write_all`, then flush — `kill -9` can tear only the last line,
    /// which the loader tolerates).
    fn append(&self, key: &JobKey, result: &RunResult) -> Result<(), SimError> {
        let mut line = encode_journal_line(key, result)?;
        line.push('\n');
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, e))?;
        file.flush().map_err(|e| io_err(&self.path, e))
    }
}

/// Mutable per-attempt bookkeeping threaded through one job's attempts.
#[derive(Debug, Default)]
struct JobStats {
    attempts: u32,
    resumed_retries: u32,
    deadline_hits: u32,
    panics: u32,
    watchdog_trips: u32,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Errors worth retrying: transient-looking failures (a wedged or slow
/// machine, a conservation trip, a bad checkpoint) — as opposed to
/// deterministic input errors (config/trace/setup) that would fail
/// identically on every attempt.
fn retryable(err: &SimError) -> bool {
    matches!(
        err,
        SimError::Panic { .. }
            | SimError::Deadline { .. }
            | SimError::Watchdog(_)
            | SimError::Integrity(_)
            | SimError::Snapshot { .. }
    )
}

/// One simulation attempt: build (or restore) the machine, run it under
/// the deadline, checkpoint periodically.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
    ckpt: Option<&Path>,
    checkpoint_every: Option<Cycle>,
    deadline: Option<Duration>,
    fault: Option<InjectedFault>,
    resumed: &mut bool,
) -> Result<RunResult, SimError> {
    let started = Instant::now();
    let mut effective;
    let cfg = match fault {
        Some(InjectedFault::PanicOnStart) => {
            panic!("injected sweep fault: panic on start");
        }
        Some(InjectedFault::SleepOnStart(d)) => {
            std::thread::sleep(d);
            cfg
        }
        Some(InjectedFault::StallVault { vault, from }) => {
            effective = cfg.clone();
            effective.faults.stall_vault = vault;
            effective.faults.stall_vault_from = from;
            &effective
        }
        _ => cfg,
    };
    // A config-mutating fault would write checkpoints a clean retry
    // cannot restore (the manifest pins the config hash) — suppress
    // checkpointing for such attempts.
    let cfg_mutated = matches!(fault, Some(InjectedFault::StallVault { .. }));
    let panic_at = match fault {
        Some(InjectedFault::PanicAtCycle(c)) => Some(c),
        _ => None,
    };

    let capacity = cfg.cube_map()?.capacity_bytes();
    let traces = mix.build_traces(capacity, seed)?;
    let mut sys = System::new(cfg, scheme, traces)?;
    let mut run = None;
    if let Some(path) = ckpt.filter(|p| p.exists() && !cfg_mutated) {
        // A checkpoint from an earlier attempt (or a killed sweep):
        // resume from it when it verifies, fall back to a fresh start
        // (and drop the bad file) when it does not.
        match read_snapshot(path).and_then(|(manifest, state)| {
            let mut restored = sys.run_begin(0, 0);
            restore_run(&mut sys, &mut restored, &manifest, &state)?;
            Ok(restored)
        }) {
            Ok(restored) => {
                run = Some(restored);
                *resumed = true;
            }
            Err(_) => {
                std::fs::remove_file(path).ok();
            }
        }
    }
    let mut run = match run {
        Some(r) => r,
        None => {
            sys.warmup(len.warmup_instructions);
            sys.run_begin(len.instructions, len.max_cycles)
        }
    };

    let mut next_ckpt = checkpoint_every.map(|i| sys.now() + i);
    loop {
        if let Some(c) = panic_at {
            if sys.now() >= c {
                panic!("injected sweep fault: panic at cycle {c}");
            }
        }
        if let Some(limit) = deadline {
            let elapsed = started.elapsed();
            if elapsed > limit {
                return Err(SimError::Deadline {
                    elapsed_secs: elapsed.as_secs_f64(),
                    limit_secs: limit.as_secs_f64(),
                });
            }
        }
        if !sys.run_step(&mut run)? {
            break;
        }
        if let (Some(at), Some(path), Some(every)) = (next_ckpt, ckpt, checkpoint_every) {
            if sys.now() >= at && !cfg_mutated {
                write_snapshot(path, &sys, &run, mix.id, seed)?;
                next_ckpt = Some(sys.now() + every);
            }
        }
    }
    sys.run_finish(&run, mix.id)
}

/// Runs one job to completion or quarantine: attempts with isolation,
/// deadline, backoff, and resume-from-checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_job(
    cfg: &SystemConfig,
    mix: &Mix,
    scheme: SchemeKind,
    len: &RunLength,
    seed: u64,
    job_index: usize,
    policy: &SweepPolicy,
    ckpt_path: Option<&Path>,
    tracer: &TraceHandle,
    sweep_started: Instant,
    key: &JobKey,
) -> (Result<RunResult, SimError>, JobStats) {
    let mut stats = JobStats::default();
    let mut attempt = 0u32;
    loop {
        stats.attempts += 1;
        let fault = policy.faults.fault_for(job_index, attempt);
        let mut resumed = false;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(
                cfg,
                mix,
                scheme,
                len,
                seed,
                ckpt_path,
                policy.checkpoint_every,
                policy.job_deadline,
                fault,
                &mut resumed,
            )
        }));
        if attempt > 0 && resumed {
            stats.resumed_retries += 1;
        }
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => Err(SimError::Panic {
                message: panic_message(payload),
            }),
        };
        match result {
            Ok(run) => {
                if let Some(path) = ckpt_path {
                    std::fs::remove_file(path).ok();
                }
                return (Ok(run), stats);
            }
            Err(err) => {
                match &err {
                    SimError::Panic { .. } => stats.panics += 1,
                    SimError::Deadline { .. } => stats.deadline_hits += 1,
                    SimError::Watchdog(_) => stats.watchdog_trips += 1,
                    _ => {}
                }
                if attempt >= policy.max_retries || !retryable(&err) {
                    tracer.instant(
                        format!("sweep_quarantine:{}", key.label()),
                        micros_since(sweep_started),
                    );
                    return (Err(err), stats);
                }
                tracer.instant(
                    format!("sweep_retry:{}", key.label()),
                    micros_since(sweep_started),
                );
                let backoff = policy.retry_backoff.saturating_mul(1u32 << attempt.min(16));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
        }
    }
}

fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Per-job checkpoint file, keyed by the *full* job identity: config
/// hash, workload, scheme, seed, and run length. The config hash prefix
/// matters — two sweeps sharing a scratch directory but differing only
/// in machine configuration (say, cube count) would otherwise collide on
/// the same filename, and a resume would restore a checkpoint from the
/// wrong machine (rejected by the manifest hash check, but the job then
/// restarts from zero instead of its own checkpoint).
fn ckpt_file(dir: &Path, key: &JobKey) -> PathBuf {
    dir.join(format!(
        "{:016x}-{}-{}-s{}-w{}-i{}.ckpt.json",
        key.config_hash,
        key.mix_id,
        key.scheme.name(),
        key.seed,
        key.warmup_instructions,
        key.instructions
    ))
}

/// Runs the `mixes × schemes` matrix under the supervisor. Always comes
/// back with partial results and a full accounting; the `Err` arm is
/// reserved for infrastructure failures that poison the whole sweep (an
/// unwritable journal, an invalid config).
///
/// # Errors
/// [`SimError::Io`]/[`SimError::Snapshot`] for journal/trace-file
/// failures; [`SimError::Config`] when `cfg` cannot be hashed. Per-job
/// failures do **not** surface here — they are quarantined into the
/// returned [`SweepRun`].
pub fn run_sweep(
    cfg: &SystemConfig,
    mixes: &[Mix],
    schemes: &[SchemeKind],
    len: &RunLength,
    seed: u64,
    policy: &SweepPolicy,
) -> Result<SweepRun, SimError> {
    let sweep_started = Instant::now();
    let chash = config_hash(cfg)?;
    let jobs: Vec<(usize, Mix, SchemeKind)> = mixes
        .iter()
        .flat_map(|m| schemes.iter().map(move |&s| (*m, s)))
        .enumerate()
        .map(|(i, (m, s))| (i, m, s))
        .collect();
    let keys: Vec<JobKey> = jobs
        .iter()
        .map(|(_, m, s)| JobKey::new(chash, m, *s, seed, len))
        .collect();

    // Journal: load what survives, repair torn tails, open for append.
    let mut journal = None;
    let mut recovery = JournalRecovery::default();
    let mut done: HashMap<&JobKey, &RunResult> = HashMap::new();
    let mut entries = Vec::new();
    if let Some(path) = &policy.journal_path {
        let (loaded, rec, handle) = Journal::open(path)?;
        entries = loaded;
        recovery = rec;
        journal = Some(handle);
    }
    for entry in &entries {
        // Last write wins; keys from other configs/lengths never match.
        done.insert(&entry.key, &entry.result);
    }

    // Scratch dir for per-job checkpoints.
    let scratch = if policy.checkpoint_every.is_some() {
        let dir = policy.scratch_dir.clone().unwrap_or_else(|| {
            policy.journal_path.as_ref().map_or_else(
                || std::env::temp_dir().join(format!("camps-sweep-{chash:016x}")),
                |j| j.with_extension("ckpts"),
            )
        });
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Some(dir)
    } else {
        None
    };

    let tracer = if policy.trace_out.is_some() {
        TraceHandle::new(&ObsConfig {
            trace_out: policy.trace_out.clone(),
            ..ObsConfig::default()
        })
    } else {
        TraceHandle::disabled()
    };

    let journal_append_errors = std::sync::atomic::AtomicUsize::new(0);

    // Progress heartbeat (opt-in): rayon's `install` blocks this thread
    // until the whole sweep drains, so the periodic reporter runs on a
    // plain OS thread fed by atomic counters the workers bump. Stopping
    // is a channel drop — `recv_timeout` doubles as the interval sleep,
    // so shutdown never waits out a sleep.
    let progress = std::sync::Arc::new(SweepProgress::default());
    let total_jobs = jobs.len();
    let heartbeat = policy.progress_every.map(|every| {
        let counters = std::sync::Arc::clone(&progress);
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) = stop_rx.recv_timeout(every)
            {
                counters.report(total_jobs, sweep_started);
            }
        });
        (handle, stop_tx)
    });

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(policy.threads.unwrap_or(0))
        .build()
        .map_err(|e| SimError::Setup {
            reason: format!("sweep thread pool: {e}"),
        })?;
    let threads = pool.current_num_threads();

    let job_outputs: Vec<(Result<RunResult, SimError>, JobStats, bool, f64)> = pool.install(|| {
        jobs.par_iter()
            .map(|(index, mix, scheme)| {
                let key = &keys[*index];
                if let Some(prev) = done.get(key) {
                    progress.note_job(0, false);
                    return (Ok((*prev).clone()), JobStats::default(), true, 0.0);
                }
                let job_started = Instant::now();
                let ckpt = scratch.as_ref().map(|d| ckpt_file(d, key));
                let (result, stats) = run_job(
                    cfg,
                    mix,
                    *scheme,
                    len,
                    seed,
                    *index,
                    policy,
                    ckpt.as_deref(),
                    &tracer,
                    sweep_started,
                    key,
                );
                if let (Ok(run), Some(j)) = (&result, journal.as_ref()) {
                    if j.append(key, run).is_err() {
                        journal_append_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                tracer.instant(
                    format!("sweep_job_done:{}", key.label()),
                    micros_since(sweep_started),
                );
                progress.note_job(stats.attempts.saturating_sub(1), result.is_err());
                (result, stats, false, job_started.elapsed().as_secs_f64())
            })
            .collect()
    });

    if let Some((handle, stop_tx)) = heartbeat {
        drop(stop_tx); // disconnects the channel; the reporter exits
        handle.join().ok();
    }

    // Assemble the run + report in job order.
    let mut results = Vec::with_capacity(job_outputs.len());
    let mut errors = Vec::with_capacity(job_outputs.len());
    let mut records = Vec::with_capacity(job_outputs.len());
    let (mut completed, mut journaled, mut quarantined, mut total_retries) = (0, 0, 0, 0u32);
    for ((result, stats, from_journal, wall_secs), key) in job_outputs.into_iter().zip(&keys) {
        let (outcome, error) = match (&result, from_journal) {
            (_, true) => {
                journaled += 1;
                (JobOutcome::Journaled, None)
            }
            (Ok(_), false) => {
                completed += 1;
                (JobOutcome::Completed, None)
            }
            (Err(e), false) => {
                quarantined += 1;
                (JobOutcome::Quarantined, Some(e.to_string()))
            }
        };
        total_retries += stats.attempts.saturating_sub(1);
        records.push(JobRecord {
            mix_id: key.mix_id.clone(),
            scheme: key.scheme,
            seed: key.seed,
            outcome,
            attempts: stats.attempts,
            resumed_retries: stats.resumed_retries,
            deadline_hits: stats.deadline_hits,
            panics: stats.panics,
            watchdog_trips: stats.watchdog_trips,
            wall_secs,
            error,
        });
        match result {
            Ok(r) => {
                results.push(Some(r));
                errors.push(None);
            }
            Err(e) => {
                results.push(None);
                errors.push(Some(e));
            }
        }
    }

    if let Some(path) = &policy.trace_out {
        tracer.export_trace(path).map_err(|e| io_err(path, e))?;
    }

    let report = SweepReport {
        jobs: records,
        completed,
        journaled,
        quarantined,
        total_retries,
        wall_secs: sweep_started.elapsed().as_secs_f64(),
        threads,
        journal_entries_loaded: recovery.entries,
        journal_lines_discarded: recovery.discarded_lines,
        journal_append_errors: journal_append_errors.into_inner(),
    };
    Ok(SweepRun {
        results,
        errors,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_workloads::ALL_MIXES;

    fn tiny() -> RunLength {
        RunLength::tiny()
    }

    #[test]
    fn job_key_round_trips_through_the_journal_line() {
        let cfg = SystemConfig::paper_default();
        let mix = &ALL_MIXES[0];
        let result = crate::experiment::run_mix(&cfg, mix, SchemeKind::Nopf, &tiny(), 1).unwrap();
        let key = JobKey::new(
            config_hash(&cfg).unwrap(),
            mix,
            SchemeKind::Nopf,
            1,
            &tiny(),
        );
        let line = encode_journal_line(&key, &result).unwrap();
        assert!(!line.contains('\n'), "journal lines must be single-line");
        let entry = decode_journal_line(&line).expect("intact line decodes");
        assert_eq!(entry.key, key);
        assert_eq!(
            serde_json::to_string(&entry.result.to_value()).unwrap(),
            serde_json::to_string(&result.to_value()).unwrap(),
            "journaled result must round-trip bit-identically"
        );
    }

    #[test]
    fn checkpoint_files_differ_across_configs() {
        // Same mix/scheme/seed/length, different machine (cube count):
        // the checkpoint filenames must not collide, or two sweeps
        // sharing one scratch directory would clobber each other's
        // resume state.
        let dir = Path::new("/tmp/sweep-ckpt");
        let mix = &ALL_MIXES[0];
        let one = SystemConfig::paper_default();
        let mut four = SystemConfig::paper_default();
        four.topology.cubes = 4;
        let key_one = JobKey::new(
            config_hash(&one).unwrap(),
            mix,
            SchemeKind::Nopf,
            1,
            &tiny(),
        );
        let key_four = JobKey::new(
            config_hash(&four).unwrap(),
            mix,
            SchemeKind::Nopf,
            1,
            &tiny(),
        );
        assert_ne!(key_one.config_hash, key_four.config_hash);
        assert_ne!(ckpt_file(dir, &key_one), ckpt_file(dir, &key_four));
        // Identical configs still agree on the filename (resume works).
        let again = JobKey::new(
            config_hash(&one).unwrap(),
            mix,
            SchemeKind::Nopf,
            1,
            &tiny(),
        );
        assert_eq!(ckpt_file(dir, &key_one), ckpt_file(dir, &again));
    }

    #[test]
    fn torn_and_corrupt_lines_are_rejected() {
        let cfg = SystemConfig::paper_default();
        let mix = &ALL_MIXES[0];
        let result = crate::experiment::run_mix(&cfg, mix, SchemeKind::Nopf, &tiny(), 1).unwrap();
        let key = JobKey::new(
            config_hash(&cfg).unwrap(),
            mix,
            SchemeKind::Nopf,
            1,
            &tiny(),
        );
        let line = encode_journal_line(&key, &result).unwrap();
        // Torn mid-write: any strict prefix fails.
        assert!(decode_journal_line(&line[..line.len() / 2]).is_none());
        // Bit flip inside the result payload: checksum catches it even
        // though the line still parses as JSON.
        let flipped = line.replace("\"cycles\":", "\"cycles\": 9");
        assert!(decode_journal_line(&flipped).is_none());
        assert!(decode_journal_line("").is_none());
        assert!(decode_journal_line("{}").is_none());
    }

    #[test]
    fn fault_plan_matches_attempts_below_threshold() {
        let plan = SweepFaultPlan::new()
            .inject(2, InjectedFault::PanicOnStart, 1)
            .inject(4, InjectedFault::PanicOnStart, u32::MAX);
        assert!(plan.fault_for(2, 0).is_some());
        assert!(plan.fault_for(2, 1).is_none(), "retry runs clean");
        assert!(plan.fault_for(4, 31).is_some(), "always-faulted job");
        assert!(plan.fault_for(0, 0).is_none());
    }
}
