//! Per-run results and figure-level aggregation helpers.

use camps_cpu::core_model::CoreStats;
use camps_obs::{ProfileSummary, StageBreakdown};
use camps_prefetch::SchemeKind;
use camps_stats::summary::geomean;
use camps_stats::AmplificationReport;
use camps_types::clock::Cycle;
use camps_types::config::SystemConfig;
use camps_vault::VaultStats;
use serde::{Deserialize, Serialize};

/// Everything measured in one (mix, scheme) simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The prefetching scheme that ran.
    pub scheme: SchemeKind,
    /// Workload id (Table II).
    pub mix_id: String,
    /// Per-core IPC at each core's own completion point.
    pub ipc: Vec<f64>,
    /// Benchmark name per core.
    pub core_names: Vec<String>,
    /// Per-core pipeline statistics.
    pub core_stats: Vec<CoreStats>,
    /// Merged vault statistics (conflicts, prefetches, energy events…).
    pub vaults: VaultStats,
    /// Mean demand-load latency including cache hits, CPU cycles.
    pub amat_all: f64,
    /// Mean main-memory read latency (L3 misses only), CPU cycles —
    /// the AMAT of Figure 8.
    pub amat_mem: f64,
    /// Detailed-simulation length in CPU cycles.
    pub cycles: Cycle,
    /// Total HMC energy (dynamic + background) in nanojoules.
    pub energy_nj: f64,
    /// Per-stage demand-read latency breakdown; present only when the
    /// run had observability installed (`None` otherwise, and absent
    /// from older serialized results).
    #[serde(default)]
    pub stage_latency: Option<StageBreakdown>,
    /// RowHammer activation-amplification summary (absent from results
    /// serialized before the adversarial workload layer existed).
    #[serde(default)]
    pub amplification: Option<AmplificationReport>,
    /// Host-side self-profile: per-component wall-clock attribution and
    /// wake/dispatch accounting. Present only when the run had profiling
    /// enabled; host wall time, so *not* deterministic across runs —
    /// clear it before byte-comparing results.
    #[serde(default)]
    pub profile: Option<ProfileSummary>,
}

impl RunResult {
    /// Prices the vault energy counters with the run's configuration.
    #[must_use]
    pub fn with_energy(mut self, cfg: &SystemConfig) -> Self {
        self.energy_nj =
            self.vaults
                .energy
                .total_nj(&cfg.energy, self.cycles, cfg.hmc.vaults, cfg.cpu.freq_hz);
        self
    }

    /// The paper's per-workload performance metric (§5.1): geometric mean
    /// of the eight cores' IPCs.
    #[must_use]
    pub fn geomean_ipc(&self) -> f64 {
        geomean(&self.ipc).unwrap_or(0.0)
    }

    /// Row-buffer conflict rate (Figure 6), 0 when no bank traffic.
    #[must_use]
    pub fn conflict_rate(&self) -> f64 {
        self.vaults.conflict_rate().unwrap_or(0.0)
    }

    /// Prefetch accuracy (Figure 7), 0 when nothing was prefetched.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        self.vaults.prefetch_accuracy().unwrap_or(0.0)
    }
}

impl RunResult {
    /// A human-readable multi-line summary (examples, logs, quick looks).
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} under {} ==", self.mix_id, self.scheme);
        let _ = writeln!(out, "cycles           : {}", self.cycles);
        let _ = writeln!(out, "geomean IPC      : {:.3}", self.geomean_ipc());
        for (name, ipc) in self.core_names.iter().zip(&self.ipc) {
            let _ = writeln!(out, "  {name:>10}: IPC {ipc:.3}");
        }
        let _ = writeln!(
            out,
            "conflict rate    : {:.1}%",
            self.conflict_rate() * 100.0
        );
        let _ = writeln!(
            out,
            "prefetches       : {} ({:.1}% referenced)",
            self.vaults.prefetches,
            self.prefetch_accuracy() * 100.0
        );
        let _ = writeln!(out, "buffer hits      : {}", self.vaults.buffer_hits);
        let _ = writeln!(out, "memory AMAT      : {:.1} cycles", self.amat_mem);
        let _ = writeln!(out, "HMC energy       : {:.3} mJ", self.energy_nj / 1e6);
        out
    }
}

/// Standard multiprogrammed-fairness metrics, computed against a
/// reference run of the same mix (typically NOPF or BASE): weighted
/// speedup (system throughput), harmonic-mean speedup (fairness-weighted
/// throughput), and maximum per-core slowdown (worst-case fairness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fairness {
    /// Σᵢ IPCᵢ / IPCᵢ_ref — system throughput relative to the reference.
    pub weighted_speedup: f64,
    /// n / Σᵢ (IPCᵢ_ref / IPCᵢ) — harmonic mean of per-core speedups.
    pub harmonic_speedup: f64,
    /// maxᵢ (IPCᵢ_ref / IPCᵢ) — the most-slowed core's slowdown.
    pub max_slowdown: f64,
}

/// Computes fairness metrics of `run` against `reference` (same mix, same
/// core order). Returns `None` on shape mismatch or non-positive IPCs.
#[must_use]
pub fn fairness(run: &RunResult, reference: &RunResult) -> Option<Fairness> {
    if run.ipc.len() != reference.ipc.len() || run.ipc.is_empty() {
        return None;
    }
    if run.ipc.iter().chain(&reference.ipc).any(|&x| x <= 0.0) {
        return None;
    }
    let n = run.ipc.len() as f64;
    let weighted: f64 = run.ipc.iter().zip(&reference.ipc).map(|(a, b)| a / b).sum();
    let inv_sum: f64 = run.ipc.iter().zip(&reference.ipc).map(|(a, b)| b / a).sum();
    let max_slowdown = run
        .ipc
        .iter()
        .zip(&reference.ipc)
        .map(|(a, b)| b / a)
        .fold(0.0f64, f64::max);
    Some(Fairness {
        weighted_speedup: weighted / n,
        harmonic_speedup: n / inv_sum,
        max_slowdown,
    })
}

/// Normalized-speedup entry for one (mix, scheme) cell of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupCell {
    /// Workload id.
    pub mix_id: String,
    /// Scheme.
    pub scheme: SchemeKind,
    /// `geomean_ipc(scheme) / geomean_ipc(BASE)` for the same mix.
    pub speedup: f64,
}

/// Builds Figure 5's table: per-mix speedups of every scheme normalized to
/// BASE on the same mix, plus the geometric-mean AVG row the paper quotes
/// (+17.9 % for CAMPS-MOD over BASE, +8.7 % over MMD).
///
/// `results` may hold any set of runs; mixes without a BASE run are
/// skipped.
#[must_use]
pub fn speedup_table(results: &[RunResult]) -> Vec<SpeedupCell> {
    let mut cells = Vec::new();
    let mixes: Vec<&str> = {
        let mut seen = Vec::new();
        for r in results {
            if !seen.contains(&r.mix_id.as_str()) {
                seen.push(r.mix_id.as_str());
            }
        }
        seen
    };
    for mix in mixes {
        let Some(base) = results
            .iter()
            .find(|r| r.mix_id == mix && r.scheme == SchemeKind::Base)
        else {
            continue;
        };
        let base_perf = base.geomean_ipc();
        if base_perf <= 0.0 {
            continue;
        }
        for r in results.iter().filter(|r| r.mix_id == mix) {
            cells.push(SpeedupCell {
                mix_id: mix.to_string(),
                scheme: r.scheme,
                speedup: r.geomean_ipc() / base_perf,
            });
        }
    }
    cells
}

/// Geometric mean of a scheme's speedups across mixes (the AVG bar of
/// Figure 5). `None` if the scheme has no cells.
#[must_use]
pub fn average_speedup(cells: &[SpeedupCell], scheme: SchemeKind) -> Option<f64> {
    let v: Vec<f64> = cells
        .iter()
        .filter(|c| c.scheme == scheme)
        .map(|c| c.speedup)
        .collect();
    geomean(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(mix: &str, scheme: SchemeKind, ipc: f64) -> RunResult {
        RunResult {
            scheme,
            mix_id: mix.to_string(),
            ipc: vec![ipc; 8],
            core_names: vec![String::new(); 8],
            core_stats: vec![CoreStats::default(); 8],
            vaults: VaultStats::new(),
            amat_all: 0.0,
            amat_mem: 0.0,
            cycles: 1,
            energy_nj: 0.0,
            stage_latency: None,
            amplification: None,
            profile: None,
        }
    }

    #[test]
    fn fairness_of_identical_runs_is_unity() {
        let a = result("HM1", SchemeKind::Base, 1.5);
        let f = fairness(&a, &a).unwrap();
        assert!((f.weighted_speedup - 1.0).abs() < 1e-12);
        assert!((f.harmonic_speedup - 1.0).abs() < 1e-12);
        assert!((f.max_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_detects_asymmetric_slowdown() {
        let reference = result("HM1", SchemeKind::Base, 1.0);
        let mut run = result("HM1", SchemeKind::CampsMod, 1.0);
        run.ipc[0] = 0.5; // one core halved, others unchanged
        let f = fairness(&run, &reference).unwrap();
        assert!((f.max_slowdown - 2.0).abs() < 1e-12);
        assert!(f.weighted_speedup < 1.0);
        assert!(
            f.harmonic_speedup < f.weighted_speedup,
            "harmonic punishes outliers"
        );
    }

    #[test]
    fn fairness_rejects_mismatched_or_degenerate_input() {
        let a = result("HM1", SchemeKind::Base, 1.0);
        let mut b = result("HM1", SchemeKind::Base, 1.0);
        b.ipc.pop();
        assert!(fairness(&a, &b).is_none());
        let mut z = result("HM1", SchemeKind::Base, 1.0);
        z.ipc[3] = 0.0;
        assert!(fairness(&z, &a).is_none());
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let mut r = result("HM1", SchemeKind::CampsMod, 1.5);
        r.core_names = vec!["lbm".into(); 8];
        let s = r.summary();
        assert!(s.contains("HM1"));
        assert!(s.contains("CAMPS-MOD"));
        assert!(s.contains("lbm"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn geomean_ipc_of_uniform_cores() {
        let r = result("HM1", SchemeKind::Base, 1.5);
        assert!((r.geomean_ipc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speedups_normalize_to_base() {
        let results = vec![
            result("HM1", SchemeKind::Base, 1.0),
            result("HM1", SchemeKind::CampsMod, 1.25),
            result("LM1", SchemeKind::Base, 2.0),
            result("LM1", SchemeKind::CampsMod, 2.2),
        ];
        let cells = speedup_table(&results);
        let get = |mix: &str, s: SchemeKind| {
            cells
                .iter()
                .find(|c| c.mix_id == mix && c.scheme == s)
                .map(|c| c.speedup)
                .unwrap()
        };
        assert!((get("HM1", SchemeKind::Base) - 1.0).abs() < 1e-12);
        assert!((get("HM1", SchemeKind::CampsMod) - 1.25).abs() < 1e-12);
        assert!((get("LM1", SchemeKind::CampsMod) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn average_speedup_is_geomean_over_mixes() {
        let results = vec![
            result("HM1", SchemeKind::Base, 1.0),
            result("HM1", SchemeKind::CampsMod, 1.21),
            result("LM1", SchemeKind::Base, 1.0),
            result("LM1", SchemeKind::CampsMod, 1.0),
        ];
        let cells = speedup_table(&results);
        let avg = average_speedup(&cells, SchemeKind::CampsMod).unwrap();
        assert!((avg - 1.1).abs() < 1e-9); // gm(1.21, 1.0) = 1.1
    }

    #[test]
    fn mix_without_base_is_skipped() {
        let results = vec![result("MX1", SchemeKind::CampsMod, 1.5)];
        assert!(speedup_table(&results).is_empty());
        assert!(average_speedup(&[], SchemeKind::Base).is_none());
    }
}
