//! The complete simulated machine: cores, cache hierarchy, and cube.

use crate::audit::RequestAuditor;
use crate::hmc::HmcDevice;
use crate::metrics::RunResult;
use crate::topology::Topology;
use camps_cache::hierarchy::{CacheHierarchy, HierarchyOutcome};
use camps_cache::mshr::MshrFile;
use camps_cpu::core_model::{Core, MemoryPort, PortResult};
use camps_cpu::trace::TraceSource;
use camps_obs::{
    Comp, MetricsSample, ObsConfig, Profiler, ReqClass, TraceHandle, METRICS_SCHEMA_VERSION,
};
use camps_prefetch::SchemeKind;
use camps_stats::{AuditLedger, Running};
use camps_types::addr::PhysAddr;
use camps_types::clock::Cycle;
use camps_types::config::{FaultPlan, SystemConfig};
use camps_types::error::{IntegrityError, SimError, WatchdogReport};
use camps_types::request::{AccessKind, CoreId, MemRequest, RequestId};
use camps_types::snapshot::{decode, field, Snapshot};
use camps_types::wake::{fold_wake, Wake, WakeSource};
use serde::value::Value;
use serde::{de, Serialize as _};
use std::collections::{HashMap, HashSet, VecDeque};

/// Sentinel MSHR waiter token for store fills (no core to wake).
const STORE_WAITER: u64 = u64::MAX;

/// Sentinel MSHR waiter token for core-side prefetch fills (fill the LLC
/// only, wake no one, never dirty).
const CORE_PF_WAITER: u64 = u64::MAX - 1;

/// Everything below the cores: caches, MSHRs, host controller, and the
/// cube pool (one or more cubes behind a [`Topology`]).
///
/// Implements [`MemoryPort`], so cores tick directly against it.
pub struct MemorySubsystem {
    hierarchy: CacheHierarchy,
    mshrs: MshrFile,
    topo: Topology,
    /// Write-allocate fills that must land dirty.
    dirty_fills: HashSet<u64>,
    /// Per-waiter issue cycles for latency accounting.
    issue_cycle: HashMap<u64, Cycle>,
    /// First *attempt* cycle of loads that were rejected (MSHR/host-queue
    /// backpressure), keyed by (core, block). AMAT must include the time
    /// a miss spends unable to even enter the memory system — that is
    /// where an oversubscribed scheme's pain shows up.
    first_attempt: HashMap<(u8, u64), Cycle>,
    /// L3 dirty victims waiting to enter the cube.
    writeback_q: VecDeque<PhysAddr>,
    /// Scratch reused across calls.
    wb_scratch: Vec<PhysAddr>,
    resp_scratch: Vec<camps_types::request::MemResponse>,
    next_id: u64,
    block_mask: u64,
    block_bytes: u64,
    /// Core-side next-line prefetcher (two-level prefetching extension).
    core_pf: camps_types::config::CoreSidePrefetchConfig,
    /// Core-side prefetches issued / and how many filled usefully is
    /// visible via the hierarchy's hit rates; we count issues here.
    pub core_pf_issued: u64,
    /// Demand-load latency, cache hits included (overall AMAT).
    pub amat_all: Running,
    /// Main-memory read latency (L3-miss round trips; Figure 8's metric).
    pub amat_mem: Running,
    /// Per-source service counts from responses.
    pub buffer_served: u64,
    /// Total read responses.
    pub mem_reads: u64,
    /// Request-conservation checker (integrity layer).
    auditor: RequestAuditor,
    /// Responses handed back to the host, all kinds. Part of the
    /// watchdog's forward-progress signature: a wedged cube stops
    /// advancing this even while cores spin.
    responses_delivered: u64,
    /// Observability hooks (runtime-only; excluded from `Snapshot` so
    /// checkpoints are byte-identical with and without tracing).
    obs: TraceHandle,
}

impl MemorySubsystem {
    /// Builds caches + cube for `scheme`.
    ///
    /// # Errors
    /// Returns [`SimError::Config`] when `cfg` fails validation.
    pub fn new(cfg: &SystemConfig, scheme: SchemeKind) -> Result<Self, SimError> {
        Ok(Self {
            hierarchy: CacheHierarchy::new(cfg),
            mshrs: MshrFile::new(cfg.l3.mshrs, cfg.l3.line_bytes),
            topo: Topology::new(cfg, scheme)?,
            dirty_fills: HashSet::new(),
            issue_cycle: HashMap::new(),
            first_attempt: HashMap::new(),
            writeback_q: VecDeque::new(),
            wb_scratch: Vec::new(),
            resp_scratch: Vec::new(),
            next_id: 0,
            block_mask: !(u64::from(cfg.hmc.block_bytes) - 1),
            block_bytes: u64::from(cfg.hmc.block_bytes),
            core_pf: cfg.core_prefetch,
            core_pf_issued: 0,
            amat_all: Running::new(),
            amat_mem: Running::new(),
            buffer_served: 0,
            mem_reads: 0,
            auditor: RequestAuditor::new(
                cfg.integrity.audit,
                cfg.hmc.vaults as usize * cfg.topology.cubes as usize,
            ),
            responses_delivered: 0,
            obs: TraceHandle::disabled(),
        })
    }

    /// Direct access to the host-attached cube (tests and single-cube
    /// callers; multi-cube code should go through [`Self::topology`]).
    pub fn hmc_mut(&mut self) -> &mut HmcDevice {
        self.topo.cube0_mut()
    }

    /// Direct read access to the host-attached cube.
    #[must_use]
    pub fn hmc(&self) -> &HmcDevice {
        self.topo.cube0()
    }

    /// The cube pool: address interleaving, fabric, and every cube.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the cube pool.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// The cache hierarchy (functional warmup uses it directly).
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// Installs observability hooks here, on every cube, and on every
    /// vault (all clones of one handle).
    pub fn set_obs(&mut self, obs: TraceHandle) {
        self.topo.set_obs(obs.clone());
        self.obs = obs;
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// Submits `req` to the cube pool, recording the injection with the
    /// auditor when the pool accepts it. All host-side submits go
    /// through here so the request ledger sees every demand, writeback,
    /// and core-side prefetch. The auditor's vault index is pool-global
    /// (`cube * vaults_per_cube + local_vault`).
    fn submit_audited(&mut self, req: MemRequest, now: Cycle) -> bool {
        let (_, vault) = self.topo.route_of(req.addr);
        let id = req.id;
        let accepted = self.topo.submit(req, now);
        if accepted {
            self.auditor.record_injected(id, vault);
        }
        accepted
    }

    /// Takes the first latched request-conservation violation, if any.
    pub fn take_violation(&mut self) -> Option<IntegrityError> {
        self.auditor.take_violation()
    }

    /// End-of-run conservation check; only meaningful when [`busy`]
    /// (self) is false. A latched violation is readable afterwards via
    /// [`Self::take_violation`].
    pub fn check_drained(&mut self) {
        self.auditor.check_drained();
    }

    /// Per-vault injected/completed request counts.
    #[must_use]
    pub fn audit_ledger(&self) -> &AuditLedger {
        self.auditor.ledger()
    }

    /// Total responses delivered back to the host so far.
    #[must_use]
    pub fn responses_delivered(&self) -> u64 {
        self.responses_delivered
    }

    /// Demand misses currently tracked by the MSHR file (diagnostics).
    #[must_use]
    pub fn mshr_in_flight(&self) -> usize {
        self.mshrs.in_flight()
    }

    /// L3 victims still waiting to enter the cube (diagnostics).
    #[must_use]
    pub fn writeback_queue_len(&self) -> usize {
        self.writeback_q.len()
    }

    /// Advances the memory side one cycle; `(core, slot)` pairs whose
    /// loads completed this cycle are appended to `woken` (the caller
    /// owns the vector so the hot loop reuses one allocation).
    pub fn tick(&mut self, now: Cycle, woken: &mut Vec<(CoreId, u64)>, prof: &mut Profiler) {
        debug_assert!(
            self.wb_scratch.is_empty(),
            "writeback scratch not drained between ticks"
        );
        let t = prof.stamp();
        // Drain pending L3 writebacks into the cube pool as posted
        // writes (FIFO: a full owning cube blocks the queue head).
        while let Some(&wb) = self.writeback_q.front() {
            if self.topo.headroom_for(wb) == 0 {
                break;
            }
            let id = self.fresh_id();
            self.obs.issue(id.0, 0, wb.0, ReqClass::Writeback, now, now);
            let accepted = self.submit_audited(
                MemRequest {
                    id,
                    addr: wb,
                    kind: AccessKind::Write,
                    core: CoreId(0),
                    created_at: now,
                },
                now,
            );
            debug_assert!(accepted, "headroom was checked");
            self.writeback_q.pop_front();
        }
        let _ = prof.lap(Comp::WbDrain, t);

        self.resp_scratch.clear();
        let mut responses = std::mem::take(&mut self.resp_scratch);
        self.topo.tick(now, &mut responses, prof);

        prof.enter(Comp::CacheFill);
        for resp in &responses {
            if resp.push {
                // Unsolicited LLC push (ablation): fill the shared cache,
                // wake no one.
                self.wb_scratch.clear();
                let mut wbs = std::mem::take(&mut self.wb_scratch);
                self.hierarchy.fill_llc_only(resp.addr, &mut wbs);
                self.writeback_q.extend(wbs.drain(..));
                self.wb_scratch = wbs;
                continue;
            }
            // Every solicited response closes out an audited request;
            // unsolicited pushes above never entered the ledger.
            self.auditor.record_completed(resp.id);
            self.obs.finish(resp.id.0, resp.source, now);
            self.responses_delivered += 1;
            if !resp.kind.is_read() {
                continue; // posted-write acks carry no waiters
            }
            self.mem_reads += 1;
            if resp.source == camps_types::request::ServiceSource::PrefetchBuffer {
                self.buffer_served += 1;
            }
            let block = resp.addr.0 & self.block_mask;
            let dirty = self.dirty_fills.remove(&block);
            let core = usize::from(resp.core.0);
            if core >= self.hierarchy.cores() {
                // A corrupt response would index past the private caches;
                // latch the violation instead of panicking — the run loop
                // polls and aborts with a typed error on the next check.
                self.auditor.latch_violation(IntegrityError::CorruptCoreId {
                    core: resp.core.0,
                    cores: self.hierarchy.cores(),
                });
                continue;
            }
            let waiters = self.mshrs.complete(resp.addr);
            self.wb_scratch.clear();
            let mut wbs = std::mem::take(&mut self.wb_scratch);
            if waiters == [CORE_PF_WAITER] {
                // Pure core-side prefetch: park it in the shared LLC.
                self.hierarchy.fill_llc_only(resp.addr, &mut wbs);
            } else {
                self.hierarchy.fill(core, resp.addr, dirty, &mut wbs);
            }
            self.writeback_q.extend(wbs.drain(..));
            self.wb_scratch = wbs;
            for waiter in waiters {
                let issued = self.issue_cycle.remove(&waiter).unwrap_or(resp.created_at);
                let latency = now.saturating_sub(issued);
                if waiter == CORE_PF_WAITER {
                    // Prefetch fills carry no waiter and no AMAT sample.
                } else if waiter == STORE_WAITER {
                    self.amat_mem.record(latency as f64);
                } else {
                    self.amat_all.record(latency as f64);
                    self.amat_mem.record(latency as f64);
                    woken.push((CoreId((waiter >> 48) as u8), waiter & 0xFFFF_FFFF_FFFF));
                }
            }
        }
        prof.exit(Comp::CacheFill);
        self.resp_scratch = responses;
    }

    /// True while memory-side work remains.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.topo.busy() || self.mshrs.in_flight() > 0 || !self.writeback_q.is_empty()
    }

    fn token(core: CoreId, slot: u64) -> u64 {
        (u64::from(core.0) << 48) | (slot & 0xFFFF_FFFF_FFFF)
    }

    /// Two-level prefetching extension: after a demand L3 miss, fetch the
    /// next `degree` sequential blocks into the LLC (best-effort; skipped
    /// under MSHR or host-queue pressure so demand always wins).
    fn issue_core_prefetches(&mut self, now: Cycle, core: CoreId, addr: PhysAddr) {
        if !self.core_pf.enable {
            return;
        }
        for i in 1..=u64::from(self.core_pf.degree) {
            let target = PhysAddr((addr.0 & self.block_mask).wrapping_add(i * self.block_bytes));
            if self.hierarchy.access_untimed(target) || self.mshrs.contains(target) {
                continue; // already on chip or in flight
            }
            if self.mshrs.is_full() || self.topo.headroom_for(target) == 0 {
                return; // never squeeze demand
            }
            self.mshrs.allocate(target, CORE_PF_WAITER);
            let id = self.fresh_id();
            self.obs
                .issue(id.0, core.0, target.0, ReqClass::CorePrefetch, now, now);
            let accepted = self.submit_audited(
                MemRequest {
                    id,
                    addr: target,
                    kind: AccessKind::Read,
                    core,
                    created_at: now,
                },
                now,
            );
            debug_assert!(accepted, "headroom was checked");
            self.core_pf_issued += 1;
        }
    }
}

impl Wake for MemorySubsystem {
    /// The memory side wakes with the cube pool, plus an immediate wake
    /// while the queued L3 writeback at the head can drain into its
    /// cube's free host-queue headroom (the drain runs at the top of
    /// every tick). MSHRs and caches hold no timers of their own — their
    /// state only changes when the pool delivers a response, which the
    /// pool's own wake already covers.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if let Some(&wb) = self.writeback_q.front() {
            if self.topo.headroom_for(wb) > 0 {
                return Some(now + 1);
            }
        }
        self.topo.next_event(now)
    }
}

impl Snapshot for MemorySubsystem {
    fn save_state(&self) -> Value {
        // `block_mask`/`block_bytes`/`core_pf` are derived from the
        // config; `wb_scratch`/`resp_scratch` are intra-tick scratch.
        // Hash collections serialize sorted so the byte stream (and its
        // checksum) is deterministic.
        let mut dirty_fills: Vec<u64> = self.dirty_fills.iter().copied().collect();
        dirty_fills.sort_unstable();
        let mut issue_cycle: Vec<(u64, Cycle)> =
            self.issue_cycle.iter().map(|(&k, &v)| (k, v)).collect();
        issue_cycle.sort_unstable();
        let mut first_attempt: Vec<(u8, u64, Cycle)> = self
            .first_attempt
            .iter()
            .map(|(&(core, block), &at)| (core, block, at))
            .collect();
        first_attempt.sort_unstable();
        Value::Map(vec![
            ("hierarchy".into(), self.hierarchy.save_state()),
            ("mshrs".into(), self.mshrs.save_state()),
            // Key kept as `hmc` across the topology refactor: at one
            // cube the value is the bare device state (byte-identical to
            // pre-topology snapshots); multi-cube pools nest a map with
            // a `cubes` key, which restore detects by shape.
            ("hmc".into(), self.topo.save_state()),
            ("dirty_fills".into(), dirty_fills.to_value()),
            ("issue_cycle".into(), issue_cycle.to_value()),
            ("first_attempt".into(), first_attempt.to_value()),
            ("writeback_q".into(), self.writeback_q.to_value()),
            ("next_id".into(), self.next_id.to_value()),
            ("core_pf_issued".into(), self.core_pf_issued.to_value()),
            ("amat_all".into(), self.amat_all.to_value()),
            ("amat_mem".into(), self.amat_mem.to_value()),
            ("buffer_served".into(), self.buffer_served.to_value()),
            ("mem_reads".into(), self.mem_reads.to_value()),
            ("auditor".into(), self.auditor.save_state()),
            (
                "responses_delivered".into(),
                self.responses_delivered.to_value(),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        self.hierarchy.restore_state(field(state, "hierarchy")?)?;
        self.mshrs.restore_state(field(state, "mshrs")?)?;
        self.topo.restore_state(field(state, "hmc")?)?;
        let dirty_fills: Vec<u64> = decode(state, "dirty_fills")?;
        self.dirty_fills = dirty_fills.into_iter().collect();
        let issue_cycle: Vec<(u64, Cycle)> = decode(state, "issue_cycle")?;
        self.issue_cycle = issue_cycle.into_iter().collect();
        let first_attempt: Vec<(u8, u64, Cycle)> = decode(state, "first_attempt")?;
        self.first_attempt = first_attempt
            .into_iter()
            .map(|(core, block, at)| ((core, block), at))
            .collect();
        self.writeback_q = decode(state, "writeback_q")?;
        self.wb_scratch.clear();
        self.resp_scratch.clear();
        self.next_id = decode(state, "next_id")?;
        self.core_pf_issued = decode(state, "core_pf_issued")?;
        self.amat_all = decode(state, "amat_all")?;
        self.amat_mem = decode(state, "amat_mem")?;
        self.buffer_served = decode(state, "buffer_served")?;
        self.mem_reads = decode(state, "mem_reads")?;
        self.auditor.restore_state(field(state, "auditor")?)?;
        self.responses_delivered = decode(state, "responses_delivered")?;
        Ok(())
    }
}

impl MemorySubsystem {
    /// Demand-load L3 miss: merge into (or allocate) an MSHR and inject
    /// the read into the cube pool.
    fn load_miss(
        &mut self,
        now: Cycle,
        core: CoreId,
        slot: u64,
        addr: PhysAddr,
        lookup_latency: u64,
    ) -> PortResult {
        let block = addr.0 & self.block_mask;
        if self.mshrs.contains(addr) {
            let token = Self::token(core, slot);
            self.mshrs.allocate(addr, token);
            let issued = self.first_attempt.remove(&(core.0, block)).unwrap_or(now);
            self.issue_cycle.insert(token, issued);
            return PortResult::Accepted;
        }
        if self.mshrs.is_full() || self.topo.headroom_for(addr) == 0 {
            self.first_attempt.entry((core.0, block)).or_insert(now);
            return PortResult::Rejected;
        }
        let token = Self::token(core, slot);
        self.mshrs.allocate(addr, token);
        let issued = self.first_attempt.remove(&(core.0, block)).unwrap_or(now);
        self.issue_cycle.insert(token, issued);
        let id = self.fresh_id();
        // Inject = this cycle: the request joins the host queue
        // now and can launch before `created_at` (which only
        // rides along for reporting), so the stage edges must be
        // real event times or the host-queue span goes negative.
        self.obs
            .issue(id.0, core.0, block, ReqClass::DemandRead, issued, now);
        let accepted = self.submit_audited(
            MemRequest {
                id,
                addr: addr.block_base(self.block_bytes),
                kind: AccessKind::Read,
                core,
                created_at: now + lookup_latency,
            },
            now,
        );
        debug_assert!(accepted, "headroom was checked");
        self.issue_core_prefetches(now, core, addr);
        PortResult::Accepted
    }

    /// Store L3 miss (write-allocate): fetch the block, fill dirty.
    fn store_miss(
        &mut self,
        now: Cycle,
        core: CoreId,
        addr: PhysAddr,
        lookup_latency: u64,
    ) -> bool {
        let block = addr.0 & self.block_mask;
        if self.mshrs.contains(addr) {
            self.mshrs.allocate(addr, STORE_WAITER);
            self.issue_cycle.entry(STORE_WAITER).or_insert(now);
            self.dirty_fills.insert(block);
            return true;
        }
        if self.mshrs.is_full() || self.topo.headroom_for(addr) == 0 {
            return false;
        }
        self.mshrs.allocate(addr, STORE_WAITER);
        self.dirty_fills.insert(block);
        let id = self.fresh_id();
        self.obs
            .issue(id.0, core.0, block, ReqClass::Store, now, now);
        let accepted = self.submit_audited(
            MemRequest {
                id,
                addr: PhysAddr(block),
                kind: AccessKind::Read,
                core,
                created_at: now + lookup_latency,
            },
            now,
        );
        debug_assert!(accepted, "headroom was checked");
        true
    }
}

impl MemoryPort for MemorySubsystem {
    fn load(
        &mut self,
        now: Cycle,
        core: CoreId,
        slot: u64,
        addr: PhysAddr,
        prof: &mut Profiler,
    ) -> PortResult {
        self.wb_scratch.clear();
        let mut wbs = std::mem::take(&mut self.wb_scratch);
        let outcome = self
            .hierarchy
            .access(usize::from(core.0), addr, false, &mut wbs, prof);
        self.writeback_q.extend(wbs.drain(..));
        self.wb_scratch = wbs;
        match outcome {
            HierarchyOutcome::Hit { latency, .. } => {
                self.amat_all.record(latency as f64);
                PortResult::Hit { latency }
            }
            HierarchyOutcome::Miss { lookup_latency } => {
                let t = prof.stamp();
                let r = self.load_miss(now, core, slot, addr, lookup_latency);
                let _ = prof.lap(Comp::Mshr, t);
                r
            }
        }
    }

    fn store(&mut self, now: Cycle, core: CoreId, addr: PhysAddr, prof: &mut Profiler) -> bool {
        self.wb_scratch.clear();
        let mut wbs = std::mem::take(&mut self.wb_scratch);
        let outcome = self
            .hierarchy
            .access(usize::from(core.0), addr, true, &mut wbs, prof);
        self.writeback_q.extend(wbs.drain(..));
        self.wb_scratch = wbs;
        match outcome {
            HierarchyOutcome::Hit { .. } => true,
            HierarchyOutcome::Miss { lookup_latency } => {
                let t = prof.stamp();
                let r = self.store_miss(now, core, addr, lookup_latency);
                let _ = prof.lap(Comp::Mshr, t);
                r
            }
        }
    }
}

/// Loop bookkeeping for an in-flight [`System::run`] invocation, split
/// out so the recovery driver can checkpoint and roll it back alongside
/// the machine itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunState {
    /// Cycle the run started at.
    start: Cycle,
    /// Per-core retirement target.
    instructions: u64,
    /// Absolute cycle cap.
    deadline: Cycle,
    /// Cycle (relative to `start`) each core reached its target.
    done_at: Vec<Option<Cycle>>,
    /// Watchdog: last observed forward-progress signature.
    last_progress: (u64, u64),
    /// Watchdog: cycle the signature last changed.
    stalled_since: Cycle,
}

impl RunState {
    /// True once every core hit its retirement target.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.done_at.iter().all(Option::is_some)
    }
}

impl Snapshot for RunState {
    fn save_state(&self) -> Value {
        Value::Map(vec![
            ("start".into(), self.start.to_value()),
            ("instructions".into(), self.instructions.to_value()),
            ("deadline".into(), self.deadline.to_value()),
            ("done_at".into(), self.done_at.to_value()),
            ("last_progress".into(), self.last_progress.to_value()),
            ("stalled_since".into(), self.stalled_since.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let done_at: Vec<Option<Cycle>> = decode(state, "done_at")?;
        if done_at.len() != self.done_at.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} per-core slots for a {}-core run",
                done_at.len(),
                self.done_at.len()
            )));
        }
        self.start = decode(state, "start")?;
        self.instructions = decode(state, "instructions")?;
        self.deadline = decode(state, "deadline")?;
        self.done_at = done_at;
        self.last_progress = decode(state, "last_progress")?;
        self.stalled_since = decode(state, "stalled_since")?;
        Ok(())
    }
}

/// Stepping strategy of the run loop.
///
/// Both engines execute the exact same per-cycle tick body and produce
/// bit-identical results; they differ only in which cycles they visit.
/// The polling engine visits every cycle. The event engine asks each
/// component for its next wake time ([`camps_types::wake::Wake`]) and
/// jumps straight there, charging the skipped cycles to the cores' idle
/// accounting in bulk ([`Core::skip_idle`]).
///
/// The engine is a property of the *driver*, not the machine: it is not
/// part of [`SystemConfig`], does not enter the snapshot config hash,
/// and is not serialized, so a snapshot taken under one engine restores
/// under the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Tick every cycle (the reference engine).
    Polling,
    /// Skip to the next wake time (bit-identical, much faster when idle).
    #[default]
    Event,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "polling" => Ok(Self::Polling),
            "event" => Ok(Self::Event),
            other => Err(format!("unknown engine `{other}` (polling|event)")),
        }
    }
}

/// The whole machine plus the run loop.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    mem: MemorySubsystem,
    scheme: SchemeKind,
    now: Cycle,
    /// Stepping strategy; never serialized (snapshots are engine-neutral).
    engine: Engine,
    /// Scratch for completed-load wakeups, reused across `run_step`s.
    woken_scratch: Vec<(CoreId, u64)>,
    /// Event-engine scan backoff: cycles left before the next wake scan.
    /// When a scan finds nothing skippable, rescanning every cycle only
    /// burns time on dense mixes — ticking without scanning is always
    /// correct (it *is* the polling engine), so we pause the scan for a
    /// few cycles. Never serialized (engine-local pacing state).
    scan_backoff: u64,
    /// Observability hooks; never serialized (see [`MemorySubsystem`]).
    obs: TraceHandle,
    /// Host-side self-profiler. A sibling of `cores`/`mem` so the tick
    /// loop can split-borrow it alongside both. Runtime-only: never
    /// serialized, and [`Profiler::off`] unless enabled via
    /// [`ObsConfig`], so profiled and unprofiled runs stay bit-identical.
    prof: Profiler,
    /// Metrics sampling interval; `None` disables the sampler.
    metrics_every: Option<u64>,
    /// Absolute cycle of the next metrics sample.
    next_sample: Cycle,
    /// Ticks the run loop actually executed (event engine: per wake).
    wake_ticks: u64,
    /// Cycles the event engine skipped without ticking.
    cycles_skipped: u64,
}

impl System {
    /// Builds the machine: one core per trace, all vaults running
    /// `scheme`.
    ///
    /// # Errors
    /// Returns [`SimError::Config`] for an invalid configuration and
    /// [`SimError::Setup`] when the trace count does not match
    /// `cfg.cpu.cores`.
    pub fn new(
        cfg: &SystemConfig,
        scheme: SchemeKind,
        traces: Vec<Box<dyn TraceSource>>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if traces.len() != cfg.cpu.cores as usize {
            return Err(SimError::Setup {
                reason: format!(
                    "need one trace per core: got {} traces for {} cores",
                    traces.len(),
                    cfg.cpu.cores
                ),
            });
        }
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::new(CoreId(i as u8), &cfg.cpu, t))
            .collect();
        Ok(Self {
            cfg: cfg.clone(),
            cores,
            mem: MemorySubsystem::new(cfg, scheme)?,
            scheme,
            now: 0,
            engine: Engine::default(),
            woken_scratch: Vec::new(),
            scan_backoff: 0,
            obs: TraceHandle::disabled(),
            prof: Profiler::off(),
            metrics_every: None,
            next_sample: 0,
            wake_ticks: 0,
            cycles_skipped: 0,
        })
    }

    /// Selects the stepping strategy for subsequent run loops.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The stepping strategy in force.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Installs observability per `obs_cfg`: lifecycle tracing hooks on
    /// the whole memory path, plus the periodic metrics sampler when
    /// `metrics_every` is set. A no-op (warning-free) when the crate was
    /// built without the `obs` feature — check
    /// [`TraceHandle::compiled`] to report that to the user.
    pub fn enable_obs(&mut self, obs_cfg: &ObsConfig) {
        let handle = TraceHandle::new(obs_cfg);
        self.mem.set_obs(handle.clone());
        self.obs = handle;
        self.metrics_every = if self.obs.is_enabled() {
            obs_cfg.metrics_every
        } else {
            None
        };
        if let Some(every) = self.metrics_every {
            self.next_sample = self.now + every;
        }
        if obs_cfg.wants_profile() {
            self.prof = Profiler::enabled();
        }
    }

    /// The host-side self-profiler (disabled unless requested via
    /// [`Self::enable_obs`]).
    #[must_use]
    pub fn profiler(&self) -> &Profiler {
        &self.prof
    }

    /// The installed observability handle (disabled by default).
    #[must_use]
    pub fn obs(&self) -> &TraceHandle {
        &self.obs
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Read access to the memory subsystem.
    #[must_use]
    pub fn memory(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// The configuration the machine was built from.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The prefetching scheme every vault runs.
    #[must_use]
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// Disables every scheduled fault. The recovery driver calls this
    /// after a rollback so the retry does not re-trip on the same
    /// injected fault (the plan is "quarantined").
    pub fn quarantine_faults(&mut self) {
        self.cfg.faults = FaultPlan::default();
        self.mem.topology_mut().set_faults(FaultPlan::default());
    }

    /// Functionally warms the caches by streaming `instructions` per core
    /// through the hierarchy with no timing — the equivalent of the
    /// paper's fast-forward + cache-warmup phase (§4.1). The per-core
    /// trace cursors advance, so detailed simulation continues from warmed
    /// state.
    pub fn warmup(&mut self, instructions: u64) {
        for core_idx in 0..self.cores.len() {
            let mut done = 0u64;
            while done < instructions {
                let op = self.cores[core_idx].warmup_op();
                done += op.instructions();
                if let Some((addr, kind)) = op.mem {
                    let h = self.mem.hierarchy_mut();
                    let mut wb = Vec::new();
                    // Warmup is untimed; keep it out of the profile.
                    if let HierarchyOutcome::Miss { .. } = h.access(
                        core_idx,
                        addr,
                        !kind.is_read(),
                        &mut wb,
                        &mut Profiler::off(),
                    ) {
                        h.fill(core_idx, addr, !kind.is_read(), &mut wb);
                    }
                }
            }
        }
    }

    /// Runs detailed simulation until every core has retired
    /// `instructions` (or `max_cycles` elapse), returning the run's
    /// metrics. Per-core IPC is measured at the cycle each core reached
    /// its own target, while the machine keeps running to provide
    /// contention until the slowest core finishes — the standard
    /// multiprogrammed methodology.
    ///
    /// # Errors
    /// Returns [`SimError::Integrity`] when the request auditor latches
    /// a conservation violation, and [`SimError::Watchdog`] — with a
    /// full occupancy dump — when no core retires an instruction and no
    /// response leaves the cube for
    /// [`watchdog_cycles`](camps_types::IntegrityConfig::watchdog_cycles)
    /// consecutive cycles (0 disables the watchdog).
    pub fn run(
        &mut self,
        instructions: u64,
        max_cycles: Cycle,
        mix_id: &str,
    ) -> Result<RunResult, SimError> {
        let mut state = self.run_begin(instructions, max_cycles);
        self.prof.enter(Comp::RunLoop);
        let looped = loop {
            match self.run_step(&mut state) {
                Ok(true) => {}
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        self.prof.exit(Comp::RunLoop);
        looped?;
        self.run_finish(&state, mix_id)
    }

    /// Starts a run: captures the loop bookkeeping that [`Self::run_step`]
    /// advances. Split out (with [`Self::run_finish`]) so the recovery
    /// driver can interleave checkpoints with the cycle loop and roll the
    /// bookkeeping back together with the machine.
    pub fn run_begin(&mut self, instructions: u64, max_cycles: Cycle) -> RunState {
        RunState {
            start: self.now,
            instructions,
            deadline: self.now + max_cycles,
            done_at: vec![None; self.cores.len()],
            last_progress: self.progress_signature(),
            stalled_since: self.now,
        }
    }

    /// Advances the machine one cycle. Returns `Ok(true)` while the run
    /// has work left and `Ok(false)` once every core hit its target (or
    /// the cycle cap elapsed).
    ///
    /// # Errors
    /// The same integrity/watchdog errors as [`Self::run`].
    pub fn run_step(&mut self, state: &mut RunState) -> Result<bool, SimError> {
        if !(state.done_at.iter().any(Option::is_none) && self.now < state.deadline) {
            return Ok(false);
        }
        if self.engine == Engine::Event && self.scan_backoff > 0 {
            self.scan_backoff -= 1;
            self.prof.note_jump(WakeSource::Backoff, 0);
        } else if self.engine == Engine::Event {
            // Jump to the cycle before the earliest pending event, charging
            // the skipped cycles to the cores' idle accounting in bulk. The
            // wake contract is conservative (never late), so the tick below
            // lands on — or before — the first cycle where anything can
            // happen, and the tick body is the same as the polling engine's.
            //
            // The dispatch accounting (which source won the fold, how many
            // cycles the jump coalesced) only *observes* the computation —
            // it must never change `wake` or `target`, or the engines'
            // bit-identity contract breaks.
            self.prof.enter(Comp::WakeScan);
            let next = self.now + 1;
            let mut wake: Option<Cycle> = None;
            let mut source = WakeSource::Deadline;
            for core in &self.cores {
                let before = wake;
                fold_wake(&mut wake, self.now, core.next_event(self.now));
                if wake != before {
                    source = WakeSource::Core;
                }
                if wake == Some(next) {
                    break; // can't skip anything; don't scan the memory side
                }
            }
            if wake != Some(next) {
                let before = wake;
                fold_wake(&mut wake, self.now, self.mem.next_event(self.now));
                if wake != before {
                    source = WakeSource::Memory;
                }
            }
            if wake != Some(next) && self.cfg.integrity.watchdog_cycles > 0 {
                // The watchdog must still fire at the exact polling cycle
                // even when every component sleeps past it.
                let fire = state.stalled_since + self.cfg.integrity.watchdog_cycles;
                let before = wake;
                fold_wake(&mut wake, self.now, Some(fire));
                if wake != before {
                    source = WakeSource::Watchdog;
                }
            }
            if wake != Some(next) && self.metrics_every.is_some() {
                // Samples must land on their exact cycle under both
                // engines, so the sampler is a wake source of its own.
                let before = wake;
                fold_wake(&mut wake, self.now, Some(self.next_sample));
                if wake != before {
                    source = WakeSource::Sampler;
                }
            }
            let target = wake.unwrap_or(state.deadline).min(state.deadline).max(next);
            if wake.is_none_or(|w| w > state.deadline) {
                source = WakeSource::Deadline;
            }
            let skipped = target - self.now - 1;
            self.cycles_skipped += skipped;
            if skipped > 0 {
                for core in &mut self.cores {
                    core.skip_idle(skipped);
                }
                self.now = target - 1;
            } else {
                // Nothing skippable: the machine is dense right now, and
                // will usually stay dense for a while. Tick scan-free for a
                // few cycles before probing again.
                self.scan_backoff = 8;
                self.prof.note_backoff_engaged();
            }
            self.prof.note_jump(source, skipped);
            self.prof.exit(Comp::WakeScan);
        }
        let sig_before = if self.prof.is_enabled() {
            Some(self.progress_signature())
        } else {
            None
        };
        self.prof.enter(Comp::RunStep);
        let stepped = self.step_body(state);
        self.prof.exit(Comp::RunStep);
        if let Some(before) = sig_before {
            self.prof.note_outcome(self.progress_signature() != before);
        }
        stepped
    }

    /// The per-cycle tick body shared verbatim by both engines; split
    /// from [`Self::run_step`] so the profiler's `run_step` span closes
    /// on every exit path (including typed errors).
    fn step_body(&mut self, state: &mut RunState) -> Result<bool, SimError> {
        self.now += 1;
        self.wake_ticks += 1;
        self.prof.enter(Comp::CoreRetire);
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.tick(self.now, &mut self.mem, &mut self.prof);
            if state.done_at[i].is_none() && core.stats().retired.get() >= state.instructions {
                state.done_at[i] = Some(self.now - state.start);
            }
        }
        self.prof.exit(Comp::CoreRetire);
        self.woken_scratch.clear();
        self.prof.enter(Comp::MemTick);
        self.mem
            .tick(self.now, &mut self.woken_scratch, &mut self.prof);
        self.prof.exit(Comp::MemTick);
        for i in 0..self.woken_scratch.len() {
            let (core, slot) = self.woken_scratch[i];
            // MSHR waiter tokens come back from the memory side; a corrupt
            // token must surface as a typed error, not an index panic.
            let Some(c) = self.cores.get_mut(usize::from(core.0)) else {
                return Err(SimError::Integrity(IntegrityError::CorruptCoreId {
                    core: core.0,
                    cores: self.cores.len(),
                }));
            };
            c.complete_load(slot);
        }
        if let Some(violation) = self.mem.take_violation() {
            return Err(SimError::Integrity(violation));
        }
        if let Some(every) = self.metrics_every {
            if self.now >= self.next_sample {
                self.prof.enter(Comp::Sampler);
                self.record_metrics_sample();
                self.prof.exit(Comp::Sampler);
                self.next_sample = self.now + every;
            }
        }
        let watchdog = self.cfg.integrity.watchdog_cycles;
        if watchdog > 0 {
            let sig = self.progress_signature();
            if sig == state.last_progress {
                let stall = self.now - state.stalled_since;
                if stall >= watchdog {
                    self.obs.mark("watchdog_trip", self.now);
                    return Err(SimError::Watchdog(Box::new(self.diagnostic_report(stall))));
                }
            } else {
                state.last_progress = sig;
                state.stalled_since = self.now;
            }
        }
        Ok(true)
    }

    /// Closes out a run: drain-audits the memory side and computes the
    /// metrics from the loop bookkeeping.
    ///
    /// # Errors
    /// [`SimError::Integrity`] if the drained machine lost requests.
    pub fn run_finish(&mut self, state: &RunState, mix_id: &str) -> Result<RunResult, SimError> {
        if !self.mem.busy() {
            // The machine claims idle: every injected request must have
            // come back. (While memory is still draining — the run ended
            // on retirement, not quiescence — outstanding entries are
            // legitimate in-flight work, not losses.)
            self.mem.check_drained();
            if let Some(violation) = self.mem.take_violation() {
                return Err(SimError::Integrity(violation));
            }
        }
        let elapsed = self.now - state.start;
        let ipc: Vec<f64> = self
            .cores
            .iter()
            .zip(&state.done_at)
            .map(|(core, done)| {
                let cycles = done.unwrap_or(elapsed).max(1);
                core.stats().retired.get().min(state.instructions) as f64 / cycles as f64
            })
            .collect();
        let vaults = self.mem.topology_mut().finalize(self.now);
        let amplification = Some(camps_stats::AmplificationReport::from_counts(
            vaults.demand_activations.get(),
            vaults.prefetch_activations.get(),
            vaults.writeback_activations.get(),
            vaults.worst_row_window_acts,
            vaults.mitigations.get(),
            vaults.refreshes.get(),
        ));
        Ok(RunResult {
            scheme: self.scheme,
            mix_id: mix_id.to_string(),
            ipc,
            core_names: self
                .cores
                .iter()
                .map(|c| c.workload_name().to_string())
                .collect(),
            core_stats: self.cores.iter().map(|c| c.stats().clone()).collect(),
            vaults,
            amat_all: self.mem.amat_all.mean().unwrap_or(0.0),
            amat_mem: self.mem.amat_mem.mean().unwrap_or(0.0),
            cycles: elapsed,
            energy_nj: 0.0, // filled below (needs cfg)
            stage_latency: self.obs.breakdown(),
            amplification,
            profile: self.prof.summary(),
        }
        .with_energy(&self.cfg))
    }

    /// Gathers one [`MetricsSample`] across cores, host structures, and
    /// every vault, and appends it to the tracer's time-series.
    fn record_metrics_sample(&mut self) {
        let retired: u64 = self.cores.iter().map(|c| c.stats().retired.get()).sum();
        let topo = self.mem.topology();
        let mut vault_read_queue = 0u64;
        let mut vault_write_queue = 0u64;
        let mut buffer_rows = 0u64;
        let mut buffer_capacity = 0u64;
        let mut rut_entries = 0u64;
        let mut ct_entries = 0u64;
        let mut row_hits = 0u64;
        let mut row_misses = 0u64;
        let mut row_conflicts = 0u64;
        let mut buffer_hits = 0u64;
        let mut prefetches = 0u64;
        let mut pf_useful = 0u64;
        let mut pf_unused_evictions = 0u64;
        let mut worst_row_window_acts = 0u64;
        let mut rowguard_mitigations = 0u64;
        for v in topo.all_cubes().iter().flat_map(|c| c.vaults()) {
            vault_read_queue += v.read_queue_len() as u64;
            vault_write_queue += v.write_queue_len() as u64;
            let (rows, cap) = v.buffer_occupancy();
            buffer_rows += rows as u64;
            buffer_capacity += cap as u64;
            let (rut, ct) = v.table_occupancy();
            rut_entries += rut as u64;
            ct_entries += ct as u64;
            let s = v.stats();
            row_hits += s.row_hits.get();
            row_misses += s.row_misses.get();
            row_conflicts += s.row_conflicts.get();
            buffer_hits += s.buffer_hits.get();
            prefetches += s.prefetches.get();
            pf_useful += s.prefetches_referenced.get();
            pf_unused_evictions += v.buffer_unused_evictions();
            // Worst-case exposure is a max across vaults, like the merge.
            worst_row_window_acts = worst_row_window_acts.max(s.worst_row_window_acts);
            rowguard_mitigations += s.mitigations.get();
        }
        let (traced_reads, traced_cycles) = self.obs.traced_reads();
        self.obs.push_sample(MetricsSample {
            schema: METRICS_SCHEMA_VERSION,
            cycle: self.now,
            retired,
            responses: self.mem.responses_delivered(),
            mem_reads: self.mem.mem_reads,
            buffer_served: self.mem.buffer_served,
            host_queue: topo.host_queue_len() as u64,
            mshr_in_flight: self.mem.mshr_in_flight() as u64,
            writeback_queue: self.mem.writeback_queue_len() as u64,
            vault_read_queue,
            vault_write_queue,
            buffer_rows,
            buffer_capacity,
            rut_entries,
            ct_entries,
            row_hits,
            row_misses,
            row_conflicts,
            buffer_hits,
            prefetches,
            pf_useful,
            pf_unused_evictions,
            amat_mem_mean: self.mem.amat_mem.mean().unwrap_or(0.0),
            traced_reads,
            traced_cycles,
            wake_ticks: self.wake_ticks,
            cycles_skipped: self.cycles_skipped,
            host_profile_ns: self.prof.host_ns(),
            spurious_wakes: self.prof.spurious_total(),
            worst_row_window_acts,
            rowguard_mitigations,
            cubes: topo.cubes() as u64,
            cube_link_inflight: topo.link_inflight() as u64,
            cube_host_queue: topo.host_queue_lens(),
        });
    }

    /// Forward-progress signature: total retired instructions plus total
    /// responses delivered. A live machine advances at least one of the
    /// two; a wedged one advances neither.
    fn progress_signature(&self) -> (u64, u64) {
        let retired: u64 = self.cores.iter().map(|c| c.stats().retired.get()).sum();
        (retired, self.mem.responses_delivered())
    }

    /// Structured occupancy dump for the watchdog: where every queue,
    /// row, and token stood when forward progress stopped.
    fn diagnostic_report(&self, stall_cycles: Cycle) -> WatchdogReport {
        let topo = self.mem.topology();
        WatchdogReport {
            now: self.now,
            stall_cycles,
            host_queue: topo.host_queue_len(),
            mshr_in_flight: self.mem.mshr_in_flight(),
            writeback_queue: self.mem.writeback_queue_len(),
            rob_occupancy: self.cores.iter().map(Core::rob_occupancy).collect(),
            req_link_tokens: topo.req_link_tokens(),
            resp_link_tokens: topo.resp_link_tokens(),
            vaults: topo.vault_snapshots(),
        }
    }
}

impl Snapshot for System {
    fn save_state(&self) -> Value {
        // `cfg` and `scheme` are construction inputs recorded (as a hash
        // and a name) in the snapshot manifest, not in the state tree.
        let cores: Vec<Value> = self.cores.iter().map(Snapshot::save_state).collect();
        Value::Map(vec![
            ("cores".into(), Value::Seq(cores)),
            ("mem".into(), self.mem.save_state()),
            ("now".into(), self.now.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let Value::Seq(core_states) = field(state, "cores")? else {
            return Err(de::Error::custom("snapshot: `cores` is not a sequence"));
        };
        if core_states.len() != self.cores.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} core states for a {}-core machine",
                core_states.len(),
                self.cores.len()
            )));
        }
        for (core, cs) in self.cores.iter_mut().zip(core_states) {
            core.restore_state(cs)?;
        }
        self.mem.restore_state(field(state, "mem")?)?;
        self.now = decode(state, "now")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_cpu::trace::{TraceOp, VecTrace};

    fn small_cfg() -> SystemConfig {
        SystemConfig::small()
    }

    fn streaming_traces(cfg: &SystemConfig) -> Vec<Box<dyn TraceSource>> {
        (0..cfg.cpu.cores)
            .map(|c| {
                // Per-core disjoint streaming over 1 MB.
                let ops: Vec<TraceOp> = (0..2048u64)
                    .map(|i| {
                        TraceOp::load(2, PhysAddr((u64::from(c) << 24) + (i * 64) % (1 << 20)))
                    })
                    .collect();
                Box::new(VecTrace::new(format!("stream{c}"), ops)) as Box<dyn TraceSource>
            })
            .collect()
    }

    #[test]
    fn system_runs_and_produces_ipc() {
        let cfg = small_cfg();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, streaming_traces(&cfg)).unwrap();
        let result = sys.run(20_000, 2_000_000, "unit").unwrap();
        assert_eq!(result.ipc.len(), cfg.cpu.cores as usize);
        for &ipc in &result.ipc {
            assert!(ipc > 0.0 && ipc <= 4.0, "ipc {ipc}");
        }
        assert!(result.cycles > 0);
        assert!(result.vaults.reads.get() > 0);
    }

    #[test]
    fn warmup_reduces_cold_misses() {
        let cfg = small_cfg();
        let mut cold = System::new(&cfg, SchemeKind::Nopf, streaming_traces(&cfg)).unwrap();
        let mut warm = System::new(&cfg, SchemeKind::Nopf, streaming_traces(&cfg)).unwrap();
        warm.warmup(50_000);
        let rc = cold.run(10_000, 1_000_000, "cold").unwrap();
        let rw = warm.run(10_000, 1_000_000, "warm").unwrap();
        // The trace loops over 1 MB (fits in the small L3 with room to
        // spare only partially) — warmed caches must not do worse.
        let cold_reads = rc.vaults.reads.get();
        let warm_reads = rw.vaults.reads.get();
        assert!(
            warm_reads <= cold_reads,
            "warm {warm_reads} vs cold {cold_reads}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let cfg = small_cfg();
        let mut a = System::new(&cfg, SchemeKind::CampsMod, streaming_traces(&cfg)).unwrap();
        let mut b = System::new(&cfg, SchemeKind::CampsMod, streaming_traces(&cfg)).unwrap();
        let ra = a.run(10_000, 1_000_000, "det").unwrap();
        let rb = b.run(10_000, 1_000_000, "det").unwrap();
        assert_eq!(ra.ipc, rb.ipc);
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.vaults, rb.vaults);
    }

    #[test]
    fn mid_run_snapshot_restores_bit_identical_results() {
        let cfg = small_cfg();
        for scheme in [SchemeKind::Nopf, SchemeKind::Camps] {
            let mut a = System::new(&cfg, scheme, streaming_traces(&cfg)).unwrap();
            let mut st_a = a.run_begin(10_000, 1_000_000);
            for _ in 0..3_000 {
                assert!(a.run_step(&mut st_a).unwrap());
            }
            let sys_state = a.save_state();
            let run_state = st_a.save_state();
            // Fresh machine, overlay the checkpoint, continue both.
            let mut b = System::new(&cfg, scheme, streaming_traces(&cfg)).unwrap();
            let mut st_b = b.run_begin(10_000, 1_000_000);
            b.restore_state(&sys_state).unwrap();
            st_b.restore_state(&run_state).unwrap();
            while a.run_step(&mut st_a).unwrap() {}
            while b.run_step(&mut st_b).unwrap() {}
            let ra = a.run_finish(&st_a, "snap").unwrap();
            let rb = b.run_finish(&st_b, "snap").unwrap();
            assert_eq!(ra.ipc, rb.ipc, "{scheme:?}");
            assert_eq!(ra.cycles, rb.cycles, "{scheme:?}");
            assert_eq!(ra.vaults, rb.vaults, "{scheme:?}");
            assert_eq!(ra.amat_mem, rb.amat_mem, "{scheme:?}");
        }
    }

    #[test]
    fn snapshot_rejects_wrong_core_count() {
        let cfg = small_cfg();
        let sys = System::new(&cfg, SchemeKind::Nopf, streaming_traces(&cfg)).unwrap();
        let state = sys.save_state();
        let mut one_core_cfg = cfg.clone();
        one_core_cfg.cpu.cores = 1;
        let traces = streaming_traces(&one_core_cfg);
        let mut small = System::new(&one_core_cfg, SchemeKind::Nopf, traces).unwrap();
        let err = small.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("core"), "got: {err}");
    }

    #[test]
    fn prefetching_scheme_generates_prefetches() {
        let cfg = small_cfg();
        let mut sys = System::new(&cfg, SchemeKind::Base, streaming_traces(&cfg)).unwrap();
        let result = sys.run(20_000, 2_000_000, "base").unwrap();
        assert!(result.vaults.prefetches.get() > 0, "BASE must prefetch");
    }

    #[test]
    fn amat_positive_when_memory_touched() {
        let cfg = small_cfg();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, streaming_traces(&cfg)).unwrap();
        let result = sys.run(10_000, 1_000_000, "amat").unwrap();
        assert!(result.amat_mem > 100.0, "memory AMAT {}", result.amat_mem);
        assert!(result.amat_all > 0.0);
        // With a fully-missing stream the two coincide; hits only lower it.
        assert!(result.amat_all <= result.amat_mem);
    }

    #[test]
    fn trace_count_mismatch_is_a_setup_error() {
        let cfg = small_cfg();
        let Err(err) = System::new(&cfg, SchemeKind::Nopf, vec![]) else {
            panic!("zero traces for a multi-core config must be rejected");
        };
        let SimError::Setup { reason } = err else {
            panic!("expected a setup error, got {err}");
        };
        assert!(reason.contains("one trace per core"), "{reason}");
    }

    #[test]
    fn invalid_config_is_a_config_error() {
        let mut cfg = small_cfg();
        cfg.link.tokens = 0;
        let Err(err) = System::new(&cfg, SchemeKind::Nopf, streaming_traces(&small_cfg())) else {
            panic!("zero link tokens must be rejected");
        };
        assert!(matches!(err, SimError::Config(_)), "got {err}");
    }
}

#[cfg(test)]
mod integrity_tests {
    use super::*;
    use camps_cpu::trace::{TraceOp, VecTrace};

    fn traces(cfg: &SystemConfig) -> Vec<Box<dyn TraceSource>> {
        (0..cfg.cpu.cores)
            .map(|c| {
                let ops: Vec<TraceOp> = (0..2048u64)
                    .map(|i| {
                        TraceOp::load(2, PhysAddr((u64::from(c) << 24) + (i * 64) % (1 << 20)))
                    })
                    .collect();
                Box::new(VecTrace::new(format!("stream{c}"), ops)) as Box<dyn TraceSource>
            })
            .collect()
    }

    #[test]
    fn stalled_vault_trips_the_watchdog_with_a_diagnostic_dump() {
        let mut cfg = SystemConfig::small();
        cfg.faults.stall_vault = 0;
        cfg.faults.stall_vault_from = 1;
        cfg.integrity.watchdog_cycles = 5_000;
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let Err(err) = sys.run(20_000, 2_000_000, "wedged") else {
            panic!("a stalled vault must wedge the run, not finish it");
        };
        let SimError::Watchdog(report) = err else {
            panic!("expected the watchdog to fire, got {err}");
        };
        assert_eq!(report.stall_cycles, 5_000);
        assert_eq!(report.vaults.len(), cfg.hmc.vaults as usize);
        // The wedged vault holds work it will never finish.
        let v0 = &report.vaults[0];
        assert!(
            v0.read_q + v0.retry_q + v0.inflight_jobs > 0,
            "stalled vault shows no backlog: {v0:?}"
        );
        // The rendered dump names the stall and the vault occupancies.
        let dump = report.render();
        assert!(dump.contains("no forward progress"), "{dump}");
        assert!(dump.contains("vault"), "{dump}");
    }

    #[test]
    fn duplicated_response_is_caught_by_the_auditor() {
        let mut cfg = SystemConfig::small();
        cfg.integrity.audit = true;
        cfg.faults.duplicate_response_every = 1;
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let Err(err) = sys.run(20_000, 2_000_000, "dup") else {
            panic!("duplicated responses must fail the run");
        };
        assert!(
            matches!(
                err,
                SimError::Integrity(IntegrityError::DuplicateCompletion { .. })
            ),
            "got {err}"
        );
    }

    #[test]
    fn clean_run_keeps_the_ledger_balanced() {
        let cfg = SystemConfig::small();
        let mut sys = System::new(&cfg, SchemeKind::Camps, traces(&cfg)).unwrap();
        sys.run(10_000, 1_000_000, "clean").unwrap();
        let ledger = sys.memory().audit_ledger();
        assert!(ledger.injected() > 0, "the run must touch memory");
        assert!(
            ledger.outstanding() <= ledger.injected(),
            "conservation arithmetic"
        );
    }

    #[test]
    fn watchdog_disabled_means_a_wedged_run_times_out_instead() {
        let mut cfg = SystemConfig::small();
        cfg.faults.stall_vault = 0;
        cfg.faults.stall_vault_from = 1;
        cfg.integrity.watchdog_cycles = 0;
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        // With the watchdog off the run grinds to the cycle cap; the old
        // pre-integrity behaviour (silent truncation) is preserved when
        // explicitly requested. Audit drain check is skipped because the
        // memory side is still (forever) busy.
        let r = sys.run(20_000, 30_000, "timeout").unwrap();
        assert_eq!(r.cycles, 30_000);
    }
}

#[cfg(test)]
mod port_tests {
    use super::*;
    use camps_cpu::core_model::{MemoryPort, PortResult};

    fn subsystem() -> MemorySubsystem {
        MemorySubsystem::new(&SystemConfig::small(), SchemeKind::Nopf).unwrap()
    }

    #[test]
    fn cache_hit_returns_latency_without_memory_traffic() {
        let mut m = subsystem();
        // Prime the hierarchy.
        let mut wb = Vec::new();
        m.hierarchy_mut().fill(0, PhysAddr(0x100), false, &mut wb);
        match m.load(5, CoreId(0), 1, PhysAddr(0x100), &mut Profiler::off()) {
            PortResult::Hit { latency } => assert_eq!(latency, 2),
            other => panic!("expected L1 hit, got {other:?}"),
        }
        assert!(!m.busy(), "a cache hit must not touch the cube");
    }

    #[test]
    fn miss_is_accepted_and_completes_with_wakeup() {
        let mut m = subsystem();
        assert_eq!(
            m.load(0, CoreId(1), 42, PhysAddr(0x2000), &mut Profiler::off()),
            PortResult::Accepted
        );
        let mut woken = Vec::new();
        let mut now = 0;
        while woken.is_empty() && now < 100_000 {
            now += 1;
            m.tick(now, &mut woken, &mut Profiler::off());
        }
        assert_eq!(woken, vec![(CoreId(1), 42)]);
        // The fill landed: the same load now hits on-chip.
        assert!(matches!(
            m.load(now, CoreId(1), 43, PhysAddr(0x2000), &mut Profiler::off()),
            PortResult::Hit { .. }
        ));
    }

    #[test]
    fn same_block_loads_merge_into_one_memory_read() {
        let mut m = subsystem();
        assert_eq!(
            m.load(0, CoreId(0), 1, PhysAddr(0x3000), &mut Profiler::off()),
            PortResult::Accepted
        );
        assert_eq!(
            m.load(0, CoreId(0), 2, PhysAddr(0x3008), &mut Profiler::off()),
            PortResult::Accepted
        );
        let mut woken = Vec::new();
        let mut now = 0;
        while woken.len() < 2 && now < 100_000 {
            now += 1;
            m.tick(now, &mut woken, &mut Profiler::off());
        }
        assert_eq!(woken.len(), 2, "both waiters wake from one response");
        assert_eq!(m.mem_reads, 1, "MSHR merging must collapse the reads");
    }

    #[test]
    fn mshr_exhaustion_rejects_loads() {
        let mut cfg = SystemConfig::small();
        cfg.l3.mshrs = 2;
        let mut m = MemorySubsystem::new(&cfg, SchemeKind::Nopf).unwrap();
        assert_eq!(
            m.load(0, CoreId(0), 1, PhysAddr(0x0), &mut Profiler::off()),
            PortResult::Accepted
        );
        assert_eq!(
            m.load(0, CoreId(0), 2, PhysAddr(0x1000), &mut Profiler::off()),
            PortResult::Accepted
        );
        assert_eq!(
            m.load(0, CoreId(0), 3, PhysAddr(0x2000), &mut Profiler::off()),
            PortResult::Rejected
        );
        // Merging still works while full.
        assert_eq!(
            m.load(0, CoreId(0), 4, PhysAddr(0x1008), &mut Profiler::off()),
            PortResult::Accepted
        );
    }

    #[test]
    fn store_miss_write_allocates_and_dirties() {
        let mut m = subsystem();
        assert!(
            m.store(0, CoreId(0), PhysAddr(0x4000), &mut Profiler::off()),
            "posted store accepted"
        );
        let mut now = 0;
        let mut sink = Vec::new();
        while m.busy() && now < 200_000 {
            now += 1;
            m.tick(now, &mut sink, &mut Profiler::off());
        }
        // The block was fetched (write-allocate read) and filled dirty:
        // a later load hits on-chip.
        assert!(matches!(
            m.load(now, CoreId(0), 9, PhysAddr(0x4000), &mut Profiler::off()),
            PortResult::Hit { .. }
        ));
        assert_eq!(m.mem_reads, 1);
    }

    #[test]
    fn rejected_then_accepted_load_counts_stall_in_amat() {
        let mut cfg = SystemConfig::small();
        cfg.l3.mshrs = 1;
        let mut m = MemorySubsystem::new(&cfg, SchemeKind::Nopf).unwrap();
        assert_eq!(
            m.load(10, CoreId(0), 1, PhysAddr(0x0), &mut Profiler::off()),
            PortResult::Accepted
        );
        // Second miss is rejected at cycle 10; retried successfully later.
        assert_eq!(
            m.load(10, CoreId(0), 2, PhysAddr(0x1000), &mut Profiler::off()),
            PortResult::Rejected
        );
        let mut now = 10;
        let mut woken = Vec::new();
        while woken.is_empty() && now < 100_000 {
            now += 1;
            m.tick(now, &mut woken, &mut Profiler::off());
        }
        let retry_at = now + 5;
        assert_eq!(
            m.load(
                retry_at,
                CoreId(0),
                2,
                PhysAddr(0x1000),
                &mut Profiler::off()
            ),
            PortResult::Accepted
        );
        woken.clear();
        while m.busy() {
            now += 1;
            m.tick(now, &mut woken, &mut Profiler::off());
        }
        // The second load's recorded latency starts at the first attempt
        // (cycle 10), not the retry: its sample must exceed the retry gap.
        assert!(m.amat_mem.max().unwrap() >= (retry_at - 10) as f64);
    }
}

#[cfg(test)]
mod core_prefetch_tests {
    use super::*;
    use camps_cpu::core_model::MemoryPort;

    #[test]
    fn next_line_prefetch_fills_the_llc() {
        let mut cfg = SystemConfig::small();
        cfg.core_prefetch.enable = true;
        cfg.core_prefetch.degree = 2;
        let mut m = MemorySubsystem::new(&cfg, SchemeKind::Nopf).unwrap();
        // One demand miss at block 0 → prefetches for blocks 1 and 2.
        let _ = m.load(0, CoreId(0), 1, PhysAddr(0), &mut Profiler::off());
        assert_eq!(m.core_pf_issued, 2);
        let mut now = 0;
        let mut sink = Vec::new();
        while m.busy() && now < 200_000 {
            now += 1;
            m.tick(now, &mut sink, &mut Profiler::off());
        }
        // The next block is now an on-chip (L3) hit without any demand
        // having touched it.
        assert!(matches!(
            m.load(now, CoreId(0), 2, PhysAddr(64), &mut Profiler::off()),
            camps_cpu::core_model::PortResult::Hit { .. }
        ));
    }

    #[test]
    fn disabled_core_prefetcher_issues_nothing() {
        let cfg = SystemConfig::small();
        let mut m = MemorySubsystem::new(&cfg, SchemeKind::Nopf).unwrap();
        let _ = m.load(0, CoreId(0), 1, PhysAddr(0), &mut Profiler::off());
        assert_eq!(m.core_pf_issued, 0);
    }

    #[test]
    fn core_prefetch_never_displaces_demand_capacity() {
        let mut cfg = SystemConfig::small();
        cfg.core_prefetch.enable = true;
        cfg.core_prefetch.degree = 8;
        cfg.l3.mshrs = 2;
        let mut m = MemorySubsystem::new(&cfg, SchemeKind::Nopf).unwrap();
        // Demand takes one MSHR; prefetches may take at most the rest and
        // must stop before exhausting them... they stop when full, so a
        // second demand can still merge or be cleanly rejected (not panic).
        let _ = m.load(0, CoreId(0), 1, PhysAddr(0), &mut Profiler::off());
        let r = m.load(0, CoreId(0), 2, PhysAddr(0x10000), &mut Profiler::off());
        assert!(matches!(
            r,
            camps_cpu::core_model::PortResult::Rejected
                | camps_cpu::core_model::PortResult::Accepted
        ));
    }
}
