//! Checkpointing and rollback-and-retry recovery around the run loop.
//!
//! The driver wraps [`System::run_step`] with periodic in-memory (and
//! optionally on-disk) checkpoints. When the run fails with a
//! *recoverable* error — a watchdog trip or an integrity violation, the
//! errors fault injection produces — it rolls the machine back to the
//! most recent good checkpoint, quarantines the fault plan, and retries,
//! up to a bounded number of attempts. Every rollback is recorded in a
//! structured [`RecoveryReport`].
//!
//! Escalation: each checkpoint is consumed by at most one rollback. If a
//! retry fails again before a fresh checkpoint was taken, the next
//! rollback falls all the way back to the run's starting state — state
//! corruption already baked into a checkpoint (e.g. a request dropped
//! *before* the snapshot was taken) cannot wedge the driver in a loop.
//!
//! On-disk format (DESIGN.md §8): a single JSON document
//! `{"manifest": {...}, "checksum": N, "state": {...}}` where `checksum`
//! is FNV-1a over the compact JSON serialization of the `state` subtree
//! and the manifest pins format version, config hash, scheme, mix, seed,
//! and cycle. The loader verifies all of these before touching any state.

use crate::metrics::RunResult;
use crate::system::{RunState, System};
use camps_prefetch::SchemeKind;
use camps_types::clock::Cycle;
use camps_types::config::SystemConfig;
use camps_types::error::SimError;
use camps_types::snapshot::{field, fnv1a, Snapshot, SnapshotManifest};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

pub use camps_types::snapshot::{SnapshotManifest as Manifest, SNAPSHOT_FORMAT_VERSION};

/// Recovery knobs for [`run_with_recovery`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryPolicy {
    /// Maximum rollback-and-retry attempts before the original error
    /// propagates. 0 disables recovery entirely.
    pub max_recoveries: u32,
    /// Checkpoint interval in cycles. `None` falls back to the config's
    /// [`checkpoint_every`](camps_types::IntegrityConfig::checkpoint_every);
    /// if both are `None`, only the run-start state is checkpointed.
    pub checkpoint_every: Option<Cycle>,
    /// When set, every checkpoint is also written here (atomically
    /// replaced), so an interrupted process can be resumed with
    /// [`read_snapshot`].
    pub checkpoint_path: Option<PathBuf>,
}

/// One rollback performed by the driver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// 1-based retry number.
    pub attempt: u32,
    /// Cycle at which the run failed.
    pub failed_at: Cycle,
    /// Cycle of the checkpoint the machine was rolled back to.
    pub resumed_from: Cycle,
    /// Rendered form of the error that triggered the rollback.
    pub error: String,
}

/// What the recovery driver did during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Rollbacks performed, in order.
    pub events: Vec<RecoveryEvent>,
    /// Checkpoints taken (excluding the implicit run-start state).
    pub checkpoints_taken: u64,
}

impl RecoveryReport {
    /// True when the run needed at least one rollback to complete.
    #[must_use]
    pub fn recovered(&self) -> bool {
        !self.events.is_empty()
    }

    /// Human-readable multi-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "recovery report: {} checkpoint(s), {} rollback(s)\n",
            self.checkpoints_taken,
            self.events.len()
        );
        for e in &self.events {
            out.push_str(&format!(
                "  attempt {}: failed at cycle {} ({}), resumed from cycle {}\n",
                e.attempt, e.failed_at, e.error, e.resumed_from
            ));
        }
        out
    }
}

/// FNV-1a hash of the compact-JSON form of `cfg` — the manifest's
/// configuration fingerprint.
///
/// # Errors
/// [`SimError::Snapshot`] if the config fails to serialize.
pub fn config_hash(cfg: &SystemConfig) -> Result<u64, SimError> {
    let text = serde_json::to_string(cfg).map_err(|e| SimError::Snapshot {
        reason: format!("config serialization failed: {e}"),
    })?;
    Ok(fnv1a(text.as_bytes()))
}

fn scheme_name(scheme: SchemeKind) -> String {
    match scheme.to_value() {
        Value::Str(s) => s,
        other => format!("{other:?}"), // unreachable for a unit enum
    }
}

/// Parses the manifest's scheme name (the serde identifier, e.g.
/// `"CampsMod"`) back into a [`SchemeKind`].
///
/// # Errors
/// [`SimError::Snapshot`] for an unknown name.
pub fn scheme_from_name(name: &str) -> Result<SchemeKind, SimError> {
    SchemeKind::from_value(&Value::Str(name.to_string())).map_err(|_| SimError::Snapshot {
        reason: format!("manifest names unknown scheme `{name}`"),
    })
}

/// Builds the identification block for a snapshot of `sys` at its
/// current cycle.
///
/// # Errors
/// Propagates [`config_hash`] failures.
pub fn build_manifest(sys: &System, mix_id: &str, seed: u64) -> Result<SnapshotManifest, SimError> {
    Ok(SnapshotManifest {
        format: SNAPSHOT_FORMAT_VERSION,
        config_hash: config_hash(sys.config())?,
        scheme: scheme_name(sys.scheme()),
        mix_id: mix_id.to_string(),
        seed,
        cycle: sys.now(),
        build: env!("CARGO_PKG_VERSION").to_string(),
    })
}

fn state_checksum(state: &Value) -> Result<u64, SimError> {
    let text = serde_json::to_string(state).map_err(|e| SimError::Snapshot {
        reason: format!("state serialization failed: {e}"),
    })?;
    Ok(fnv1a(text.as_bytes()))
}

/// Encodes a manifest + state pair as the on-disk JSON document.
///
/// # Errors
/// [`SimError::Snapshot`] on serialization failure.
pub fn encode_snapshot(manifest: &SnapshotManifest, state: &Value) -> Result<String, SimError> {
    let doc = Value::Map(vec![
        ("manifest".into(), manifest.to_value()),
        ("checksum".into(), Value::U64(state_checksum(state)?)),
        ("state".into(), state.clone()),
    ]);
    serde_json::to_string_pretty(&doc).map_err(|e| SimError::Snapshot {
        reason: format!("snapshot serialization failed: {e}"),
    })
}

/// Decodes (and fully verifies) an on-disk snapshot document: format
/// version and state checksum are checked before anything is returned.
///
/// # Errors
/// [`SimError::Snapshot`] on malformed JSON, a format-version mismatch,
/// or a checksum mismatch.
pub fn decode_snapshot(text: &str) -> Result<(SnapshotManifest, Value), SimError> {
    let doc: Value = serde_json::from_str(text).map_err(|e| SimError::Snapshot {
        reason: format!("snapshot is not valid JSON: {e}"),
    })?;
    let manifest = SnapshotManifest::from_value(field(&doc, "manifest")?)?;
    if manifest.format != SNAPSHOT_FORMAT_VERSION {
        return Err(SimError::Snapshot {
            reason: format!(
                "snapshot format v{} is not readable by this build (v{SNAPSHOT_FORMAT_VERSION})",
                manifest.format
            ),
        });
    }
    let declared: u64 = u64::from_value(field(&doc, "checksum")?)?;
    let state = field(&doc, "state")?.clone();
    let actual = state_checksum(&state)?;
    if declared != actual {
        return Err(SimError::Snapshot {
            reason: format!(
                "snapshot checksum mismatch: declared {declared:#018x}, computed {actual:#018x} \
                 (truncated or corrupted file)"
            ),
        });
    }
    Ok((manifest, state))
}

/// Captures `sys` + `run` into a snapshot document string.
///
/// # Errors
/// Propagates manifest/serialization failures.
pub fn snapshot_to_string(
    sys: &System,
    run: &RunState,
    mix_id: &str,
    seed: u64,
) -> Result<String, SimError> {
    let manifest = build_manifest(sys, mix_id, seed)?;
    let state = Value::Map(vec![
        ("system".into(), sys.save_state()),
        ("run".into(), run.save_state()),
    ]);
    encode_snapshot(&manifest, &state)
}

/// Writes a verified snapshot of `sys` + `run` to `path` (write to a
/// temporary sibling, then rename, so a crash never leaves a torn file).
///
/// # Errors
/// [`SimError::Snapshot`] on serialization or I/O failure.
pub fn write_snapshot(
    path: &Path,
    sys: &System,
    run: &RunState,
    mix_id: &str,
    seed: u64,
) -> Result<(), SimError> {
    let text = snapshot_to_string(sys, run, mix_id, seed)?;
    let tmp = path.with_extension("tmp");
    let io_err = |e: std::io::Error| SimError::Snapshot {
        reason: format!("writing {}: {e}", path.display()),
    };
    std::fs::write(&tmp, text).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Reads and verifies a snapshot document from `path`.
///
/// # Errors
/// [`SimError::Snapshot`] on I/O failure or any verification failure.
pub fn read_snapshot(path: &Path) -> Result<(SnapshotManifest, Value), SimError> {
    let text = std::fs::read_to_string(path).map_err(|e| SimError::Snapshot {
        reason: format!("reading {}: {e}", path.display()),
    })?;
    decode_snapshot(&text)
}

/// Overlays a decoded snapshot onto a freshly built `sys` + `run` pair,
/// after verifying the manifest matches the machine (config hash and
/// scheme). The caller is responsible for rebuilding `sys` from the same
/// config/traces the manifest describes.
///
/// # Errors
/// [`SimError::Snapshot`] on a manifest mismatch or a state-shape
/// mismatch.
pub fn restore_run(
    sys: &mut System,
    run: &mut RunState,
    manifest: &SnapshotManifest,
    state: &Value,
) -> Result<(), SimError> {
    let expect_hash = config_hash(sys.config())?;
    if manifest.config_hash != expect_hash {
        return Err(SimError::Snapshot {
            reason: format!(
                "snapshot was taken under a different configuration \
                 (hash {:#018x}, this machine {expect_hash:#018x})",
                manifest.config_hash
            ),
        });
    }
    let scheme = scheme_from_name(&manifest.scheme)?;
    if scheme != sys.scheme() {
        return Err(SimError::Snapshot {
            reason: format!(
                "snapshot ran scheme {}, this machine runs {:?}",
                manifest.scheme,
                sys.scheme()
            ),
        });
    }
    sys.restore_state(field(state, "system")?)?;
    run.restore_state(field(state, "run")?)?;
    Ok(())
}

fn recoverable(err: &SimError) -> bool {
    matches!(err, SimError::Watchdog(_) | SimError::Integrity(_))
}

/// Runs `sys` to completion with periodic checkpoints and
/// rollback-and-retry recovery (see the module docs).
///
/// With `policy.max_recoveries == 0` this behaves exactly like
/// [`System::run`]: the first error propagates unchanged.
///
/// # Errors
/// The original (first-un-retried or non-recoverable) [`SimError`]; disk
/// checkpoint failures surface as [`SimError::Snapshot`].
pub fn run_with_recovery(
    sys: &mut System,
    instructions: u64,
    max_cycles: Cycle,
    mix_id: &str,
    seed: u64,
    policy: &RecoveryPolicy,
) -> Result<(RunResult, RecoveryReport), SimError> {
    let interval = policy
        .checkpoint_every
        .or(sys.config().integrity.checkpoint_every);
    let mut run = sys.run_begin(instructions, max_cycles);
    let baseline = (sys.now(), sys.save_state(), run.save_state());
    // The most recent periodic checkpoint; `None` once consumed by a
    // rollback (the escalation rule in the module docs).
    let mut last_good: Option<(Cycle, Value, Value)> = None;
    let mut next_checkpoint = interval.map(|i| sys.now() + i);
    let mut report = RecoveryReport::default();
    let mut attempts = 0u32;
    loop {
        match sys.run_step(&mut run) {
            Ok(true) => {
                let Some(at) = next_checkpoint else { continue };
                if sys.now() < at {
                    continue;
                }
                if let Some(path) = &policy.checkpoint_path {
                    write_snapshot(path, sys, &run, mix_id, seed)?;
                }
                last_good = Some((sys.now(), sys.save_state(), run.save_state()));
                sys.obs().mark("checkpoint", sys.now());
                report.checkpoints_taken += 1;
                next_checkpoint = Some(
                    sys.now() + interval.expect("invariant: next_checkpoint implies interval"),
                );
            }
            Ok(false) => break,
            Err(err) if attempts < policy.max_recoveries && recoverable(&err) => {
                attempts += 1;
                let failed_at = sys.now();
                let (from_cycle, sys_state, run_state) = match last_good.take() {
                    Some(cp) => cp,
                    None => baseline.clone(),
                };
                sys.restore_state(&sys_state)?;
                run.restore_state(&run_state)?;
                // A fault plan that already tripped the run once would
                // trip the retry identically (the machine is
                // deterministic) — quarantine it.
                sys.quarantine_faults();
                // The re-simulated interval shows up as a slice on the
                // trace's recovery track.
                sys.obs().window("rollback", from_cycle, failed_at);
                report.events.push(RecoveryEvent {
                    attempt: attempts,
                    failed_at,
                    resumed_from: from_cycle,
                    error: err.to_string(),
                });
            }
            Err(err) => return Err(err),
        }
    }
    let result = sys.run_finish(&run, mix_id)?;
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_cpu::trace::{TraceOp, TraceSource, VecTrace};
    use camps_types::addr::PhysAddr;
    use camps_types::error::IntegrityError;

    fn traces(cfg: &SystemConfig) -> Vec<Box<dyn TraceSource>> {
        (0..cfg.cpu.cores)
            .map(|c| {
                let ops: Vec<TraceOp> = (0..2048u64)
                    .map(|i| {
                        TraceOp::load(2, PhysAddr((u64::from(c) << 24) + (i * 64) % (1 << 20)))
                    })
                    .collect();
                Box::new(VecTrace::new(format!("stream{c}"), ops)) as Box<dyn TraceSource>
            })
            .collect()
    }

    fn stalled_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.faults.stall_vault = 0;
        cfg.faults.stall_vault_from = 1;
        cfg.integrity.watchdog_cycles = 5_000;
        cfg
    }

    #[test]
    fn watchdog_trip_recovers_via_rollback() {
        let cfg = stalled_cfg();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let policy = RecoveryPolicy {
            max_recoveries: 2,
            checkpoint_every: Some(2_000),
            checkpoint_path: None,
        };
        let (result, report) =
            run_with_recovery(&mut sys, 20_000, 2_000_000, "recover", 0, &policy).unwrap();
        assert!(report.recovered(), "the stall must force a rollback");
        assert_eq!(report.events[0].attempt, 1);
        assert!(report.events[0].error.contains("progress"), "{report:?}");
        assert!(
            report.events[0].resumed_from <= report.events[0].failed_at,
            "rollback goes backward"
        );
        assert!(result.cycles > 0);
        for &ipc in &result.ipc {
            assert!(ipc > 0.0, "recovered run still produces IPC");
        }
        let rendered = report.render();
        assert!(rendered.contains("rollback"), "{rendered}");
    }

    #[test]
    fn zero_max_recoveries_propagates_the_original_error() {
        let cfg = stalled_cfg();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let policy = RecoveryPolicy::default(); // max_recoveries = 0
        let err = run_with_recovery(&mut sys, 20_000, 2_000_000, "norec", 0, &policy).unwrap_err();
        assert!(matches!(err, SimError::Watchdog(_)), "got {err}");
    }

    #[test]
    fn recovered_run_matches_a_fault_free_run() {
        // Rolling back to the pre-fault baseline and quarantining the
        // plan must yield the exact metrics of a run that never faulted.
        let clean_cfg = {
            let mut c = stalled_cfg();
            c.faults = Default::default();
            c
        };
        let mut clean = System::new(&clean_cfg, SchemeKind::Nopf, traces(&clean_cfg)).unwrap();
        let expected = clean.run(10_000, 1_000_000, "clean").unwrap();

        let cfg = stalled_cfg();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let policy = RecoveryPolicy {
            max_recoveries: 1,
            checkpoint_every: None, // only the baseline exists
            checkpoint_path: None,
        };
        let (result, report) =
            run_with_recovery(&mut sys, 10_000, 1_000_000, "clean", 0, &policy).unwrap();
        assert!(report.recovered());
        assert_eq!(result.ipc, expected.ipc);
        assert_eq!(result.cycles, expected.cycles);
        assert_eq!(result.vaults, expected.vaults);
    }

    #[test]
    fn duplicate_response_fault_recovers_as_integrity_rollback() {
        let mut cfg = SystemConfig::small();
        cfg.integrity.audit = true;
        cfg.faults.duplicate_response_every = 50;
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let policy = RecoveryPolicy {
            max_recoveries: 3,
            checkpoint_every: None,
            checkpoint_path: None,
        };
        let (_, report) =
            run_with_recovery(&mut sys, 10_000, 1_000_000, "dup", 0, &policy).unwrap();
        assert!(report.recovered());
        assert!(
            report.events[0].error.contains("twice"),
            "expected a duplicate-completion error, got {:?}",
            report.events[0]
        );
    }

    #[test]
    fn snapshot_file_round_trips_with_verification() {
        let cfg = SystemConfig::small();
        let mut sys = System::new(&cfg, SchemeKind::Camps, traces(&cfg)).unwrap();
        let mut run = sys.run_begin(10_000, 1_000_000);
        for _ in 0..2_500 {
            sys.run_step(&mut run).unwrap();
        }
        let dir = std::env::temp_dir().join("camps-recovery-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.ckpt.json");
        write_snapshot(&path, &sys, &run, "unit", 7).unwrap();
        let (manifest, state) = read_snapshot(&path).unwrap();
        assert_eq!(manifest.format, SNAPSHOT_FORMAT_VERSION);
        assert_eq!(manifest.mix_id, "unit");
        assert_eq!(manifest.seed, 7);
        assert_eq!(manifest.cycle, sys.now());
        assert_eq!(manifest.scheme, "Camps");
        // Restore into a fresh machine and continue both to the end.
        let mut fresh = System::new(&cfg, SchemeKind::Camps, traces(&cfg)).unwrap();
        let mut fresh_run = fresh.run_begin(10_000, 1_000_000);
        restore_run(&mut fresh, &mut fresh_run, &manifest, &state).unwrap();
        while sys.run_step(&mut run).unwrap() {}
        while fresh.run_step(&mut fresh_run).unwrap() {}
        let ra = sys.run_finish(&run, "unit").unwrap();
        let rb = fresh.run_finish(&fresh_run, "unit").unwrap();
        assert_eq!(ra.ipc, rb.ipc);
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.vaults, rb.vaults);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_snapshot_is_rejected_by_checksum() {
        let cfg = SystemConfig::small();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let run = sys.run_begin(1_000, 100_000);
        let text = snapshot_to_string(&sys, &run, "unit", 0).unwrap();
        // Flip a digit inside the state payload (not the manifest).
        let state_at = text.find("\"state\"").unwrap();
        let digit_at = text[state_at..].find(|c: char| c.is_ascii_digit()).unwrap() + state_at;
        let mut corrupt = text.clone();
        let old = corrupt.as_bytes()[digit_at];
        let new = if old == b'9' { b'0' } else { old + 1 };
        // Safety: replacing one ASCII digit with another keeps it UTF-8.
        unsafe { corrupt.as_bytes_mut()[digit_at] = new };
        let err = decode_snapshot(&corrupt).unwrap_err();
        assert!(
            matches!(&err, SimError::Snapshot { reason } if reason.contains("checksum")),
            "got {err}"
        );
        // The untouched document still verifies.
        decode_snapshot(&text).unwrap();
    }

    #[test]
    fn restore_rejects_config_and_scheme_drift() {
        let cfg = SystemConfig::small();
        let mut sys = System::new(&cfg, SchemeKind::Nopf, traces(&cfg)).unwrap();
        let run = sys.run_begin(1_000, 100_000);
        let text = snapshot_to_string(&sys, &run, "unit", 0).unwrap();
        let (manifest, state) = decode_snapshot(&text).unwrap();
        // Different scheme, same config.
        let mut other = System::new(&cfg, SchemeKind::Camps, traces(&cfg)).unwrap();
        let mut other_run = other.run_begin(1_000, 100_000);
        let err = restore_run(&mut other, &mut other_run, &manifest, &state).unwrap_err();
        assert!(
            matches!(&err, SimError::Snapshot { reason } if reason.contains("scheme")),
            "got {err}"
        );
        // Different config (changed watchdog), same scheme.
        let mut drifted = cfg.clone();
        drifted.integrity.watchdog_cycles += 1;
        let mut third = System::new(&drifted, SchemeKind::Nopf, traces(&drifted)).unwrap();
        let mut third_run = third.run_begin(1_000, 100_000);
        let err = restore_run(&mut third, &mut third_run, &manifest, &state).unwrap_err();
        assert!(
            matches!(&err, SimError::Snapshot { reason } if reason.contains("configuration")),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_core_id_is_a_typed_integrity_error() {
        // Directly exercise the new variant's rendering.
        let err = SimError::Integrity(IntegrityError::CorruptCoreId { core: 9, cores: 4 });
        assert!(err.to_string().contains("core 9"), "{err}");
    }
}
