//! Process-level crash test: `kill -9` a mid-flight `camps sweep`, then
//! re-invoke it with the same journal and prove the merged results are
//! byte-for-byte identical to an uninterrupted sweep.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const CAMPS: &str = env!("CARGO_BIN_EXE_camps");

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("camps-sweep-kill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep_args(journal: &Path) -> Vec<String> {
    [
        "sweep",
        "--mixes",
        "HM1",
        "--schemes",
        "nopf,base,campsmod",
        "--scale",
        "tiny",
        "--threads",
        "1",
        "--checkpoint-every",
        "2000",
        "--journal",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([journal.display().to_string(), "--json".to_string()])
    .collect()
}

/// Complete (newline-terminated) journal lines — a torn tail does not
/// count as progress.
fn complete_lines(journal: &Path) -> usize {
    std::fs::read_to_string(journal)
        .map(|t| t.bytes().filter(|&b| b == b'\n').count())
        .unwrap_or(0)
}

#[test]
fn killed_sweep_resumes_from_journal_bit_identically() {
    let dir = scratch();

    // Uninterrupted reference, its own journal.
    let reference = Command::new(CAMPS)
        .args(sweep_args(&dir.join("reference.jsonl")))
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "reference sweep failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Victim: same matrix, fresh journal, SIGKILL as soon as the first
    // completed job has been journaled.
    let journal = dir.join("victim.jsonl");
    let mut victim = Command::new(CAMPS)
        .args(sweep_args(&journal))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut finished_early = false;
    loop {
        if complete_lines(&journal) >= 1 {
            break;
        }
        if victim.try_wait().unwrap().is_some() {
            // Lost the race: the whole sweep completed before the kill.
            // The resume checks below still hold (everything journaled).
            finished_early = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim sweep wrote no journal line within the timeout"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    if !finished_early {
        victim.kill().unwrap(); // SIGKILL on unix — no cleanup handlers run
    }
    victim.wait().unwrap();
    let journaled_at_kill = complete_lines(&journal);
    assert!(journaled_at_kill >= 1, "journal lost its completed entries");

    // Re-invoke with the same journal: completed jobs must be skipped,
    // the rest run, and the merged matrix must match the reference
    // byte for byte.
    let resumed = Command::new(CAMPS)
        .args(sweep_args(&journal))
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "resumed sweep failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains(&format!("{journaled_at_kill} from journal")),
        "resume must skip the jobs journaled before the kill; stderr:\n{stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&reference.stdout),
        "merged results after kill + resume must be bit-identical to an \
         uninterrupted sweep"
    );

    std::fs::remove_dir_all(&dir).ok();
}
