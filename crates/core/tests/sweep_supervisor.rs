//! Integration tests for the resilient sweep supervisor: fault
//! isolation, deadline enforcement, retry-with-resume, journal crash
//! tolerance, and thread-count independence.

use camps::experiment::RunLength;
use camps::metrics::RunResult;
use camps::sweep::{
    read_journal, run_sweep, InjectedFault, JobOutcome, SweepFaultPlan, SweepPolicy,
};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::Mix;
use serde::Serialize as _;
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 7;

fn mixes() -> Vec<Mix> {
    vec![*Mix::by_id("HM1").unwrap()]
}

fn schemes() -> Vec<SchemeKind> {
    vec![SchemeKind::Nopf, SchemeKind::Base, SchemeKind::CampsMod]
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("camps-sweep-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&r.to_value()).unwrap()
}

#[test]
fn panicking_job_quarantines_without_poisoning_siblings() {
    let cfg = SystemConfig::paper_default();
    let policy = SweepPolicy {
        faults: SweepFaultPlan::new().inject(1, InjectedFault::PanicOnStart, u32::MAX),
        ..SweepPolicy::default()
    };
    let run = run_sweep(
        &cfg,
        &mixes(),
        &schemes(),
        &RunLength::tiny(),
        SEED,
        &policy,
    )
    .unwrap();
    assert_eq!(run.report.quarantined, 1);
    assert_eq!(run.report.completed, 2, "siblings must still complete");
    assert!(run.results[0].is_some() && run.results[2].is_some());
    assert!(run.results[1].is_none());
    let bad = &run.report.jobs[1];
    assert_eq!(bad.outcome, JobOutcome::Quarantined);
    assert_eq!(bad.panics, 1);
    assert_eq!(bad.attempts, 1, "max_retries 0 means one attempt");
    let msg = bad.error.as_deref().unwrap();
    assert!(msg.contains("panicked"), "typed panic error, got: {msg}");
    // The quarantined slot carries the typed error, not a result.
    assert!(matches!(
        run.errors[1],
        Some(camps_types::error::SimError::Panic { .. })
    ));
    // Siblings are bit-identical to a clean sweep: the panic cost a job,
    // never correctness.
    let clean = run_sweep(
        &cfg,
        &mixes(),
        &schemes(),
        &RunLength::tiny(),
        SEED,
        &SweepPolicy::default(),
    )
    .unwrap();
    for i in [0, 2] {
        assert_eq!(
            fingerprint(run.results[i].as_ref().unwrap()),
            fingerprint(clean.results[i].as_ref().unwrap()),
        );
    }
}

#[test]
fn deadline_overrun_quarantines_and_is_recorded() {
    let cfg = SystemConfig::paper_default();
    let policy = SweepPolicy {
        // Generous limit against CI noise: healthy jobs finish a tiny
        // run in a couple of seconds even in debug builds, while the
        // faulted job sleeps well past the limit.
        job_deadline: Some(Duration::from_secs(10)),
        faults: SweepFaultPlan::new().inject(
            0,
            InjectedFault::SleepOnStart(Duration::from_secs(12)),
            u32::MAX,
        ),
        ..SweepPolicy::default()
    };
    let run = run_sweep(
        &cfg,
        &mixes(),
        &schemes(),
        &RunLength::tiny(),
        SEED,
        &policy,
    )
    .unwrap();
    assert_eq!(run.report.quarantined, 1);
    assert_eq!(
        run.report.completed, 2,
        "deadline must not leak to siblings"
    );
    let bad = &run.report.jobs[0];
    assert_eq!(bad.outcome, JobOutcome::Quarantined);
    assert_eq!(bad.deadline_hits, 1);
    assert!(matches!(
        run.errors[0],
        Some(camps_types::error::SimError::Deadline { .. })
    ));
    assert!(
        bad.error.as_deref().unwrap().contains("deadline"),
        "error should name the deadline: {:?}",
        bad.error
    );
}

#[test]
fn retry_resumes_from_checkpoint_and_matches_clean_run() {
    let cfg = SystemConfig::paper_default();
    let dir = scratch("resume");
    let one_scheme = vec![SchemeKind::Base];
    let policy = SweepPolicy {
        max_retries: 1,
        checkpoint_every: Some(2_000),
        scratch_dir: Some(dir.clone()),
        // Panic well into the run, after several checkpoints exist; the
        // single retry runs clean and must pick up from the last one.
        faults: SweepFaultPlan::new().inject(0, InjectedFault::PanicAtCycle(6_000), 1),
        ..SweepPolicy::default()
    };
    let run = run_sweep(
        &cfg,
        &mixes(),
        &one_scheme,
        &RunLength::tiny(),
        SEED,
        &policy,
    )
    .unwrap();
    let rec = &run.report.jobs[0];
    assert_eq!(rec.outcome, JobOutcome::Completed);
    assert_eq!(rec.attempts, 2);
    assert_eq!(rec.panics, 1);
    assert_eq!(
        rec.resumed_retries, 1,
        "the retry must resume from the checkpoint, not restart: {rec:?}"
    );
    let clean = run_sweep(
        &cfg,
        &mixes(),
        &one_scheme,
        &RunLength::tiny(),
        SEED,
        &SweepPolicy::default(),
    )
    .unwrap();
    assert_eq!(
        fingerprint(run.results[0].as_ref().unwrap()),
        fingerprint(clean.results[0].as_ref().unwrap()),
        "resume-from-checkpoint must be bit-identical to the straight run"
    );
    // The successful job cleans its checkpoint up.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    assert!(
        leftovers.is_empty(),
        "stale checkpoints left: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_resume_skips_completed_jobs_and_tolerates_a_torn_tail() {
    let cfg = SystemConfig::paper_default();
    let dir = scratch("journal");
    let journal = dir.join("sweep.jsonl");
    let policy = SweepPolicy {
        journal_path: Some(journal.clone()),
        ..SweepPolicy::default()
    };
    let first = run_sweep(
        &cfg,
        &mixes(),
        &schemes(),
        &RunLength::tiny(),
        SEED,
        &policy,
    )
    .unwrap();
    assert_eq!(first.report.completed, 3);
    let (entries, rec) = read_journal(&journal).unwrap();
    assert_eq!(entries.len(), 3);
    assert_eq!(rec.discarded_lines, 0);

    // Simulate a crash mid-append: a torn fragment of a journal line
    // with no trailing newline, exactly what `kill -9` leaves behind.
    let text = std::fs::read_to_string(&journal).unwrap();
    let torn = &text.lines().next().unwrap()[..40];
    std::fs::write(&journal, format!("{text}{torn}")).unwrap();

    let second = run_sweep(
        &cfg,
        &mixes(),
        &schemes(),
        &RunLength::tiny(),
        SEED,
        &policy,
    )
    .unwrap();
    assert_eq!(
        second.report.journaled, 3,
        "all three jobs must come back from the journal without rerunning"
    );
    assert_eq!(second.report.completed, 0);
    assert_eq!(second.report.journal_lines_discarded, 1);
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(
            fingerprint(a.as_ref().unwrap()),
            fingerprint(b.as_ref().unwrap()),
            "journaled results must round-trip bit-identically"
        );
    }
    // The compaction rewrote the file: the torn fragment is gone and a
    // third load is clean.
    let (entries, rec) = read_journal(&journal).unwrap();
    assert_eq!(entries.len(), 3);
    assert_eq!(rec.discarded_lines, 0, "torn tail must be compacted away");

    // A different run length must not reuse the journal entries.
    let longer = RunLength {
        warmup_instructions: 2_000,
        instructions: 4_000,
        max_cycles: 1_000_000,
    };
    let other = run_sweep(&cfg, &mixes(), &schemes(), &longer, SEED, &policy).unwrap();
    assert_eq!(
        other.report.journaled, 0,
        "a different run length must invalidate journal reuse"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_results_are_independent_of_thread_count() {
    let cfg = SystemConfig::paper_default();
    let len = RunLength::tiny();
    let two_schemes = vec![SchemeKind::Nopf, SchemeKind::CampsMod];
    let run_with = |threads: usize| {
        let policy = SweepPolicy {
            threads: Some(threads),
            ..SweepPolicy::default()
        };
        run_sweep(&cfg, &mixes(), &two_schemes, &len, SEED, &policy).unwrap()
    };
    let one = run_with(1);
    let four = run_with(4);
    assert_eq!(one.results.len(), four.results.len());
    for (a, b) in one.results.iter().zip(&four.results) {
        assert_eq!(
            fingerprint(a.as_ref().unwrap()),
            fingerprint(b.as_ref().unwrap()),
            "results must not depend on worker thread count"
        );
    }
}

#[cfg(feature = "obs")]
#[test]
fn sweep_trace_records_job_and_retry_instants() {
    let cfg = SystemConfig::paper_default();
    let dir = scratch("trace");
    let trace = dir.join("sweep.trace.json");
    let policy = SweepPolicy {
        max_retries: 1,
        trace_out: Some(trace.clone()),
        faults: SweepFaultPlan::new().inject(0, InjectedFault::PanicOnStart, 1),
        ..SweepPolicy::default()
    };
    let one_scheme = vec![SchemeKind::Nopf];
    let run = run_sweep(
        &cfg,
        &mixes(),
        &one_scheme,
        &RunLength::tiny(),
        SEED,
        &policy,
    )
    .unwrap();
    assert_eq!(run.report.completed, 1);
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        text.contains("sweep_retry:HM1/NOPF#7"),
        "retry instant missing from trace"
    );
    assert!(
        text.contains("sweep_job_done:HM1/NOPF#7"),
        "completion instant missing from trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}
