//! Memory requests and responses exchanged between the cache hierarchy and
//! the HMC.

use crate::addr::PhysAddr;
use crate::clock::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique identifier of an in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// Identifier of a processor core, `0..cores`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub u8);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Whether a memory operation reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand load (or a cache-line fill triggered by one).
    Read,
    /// A store / dirty writeback.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, Self::Read)
    }
}

/// A demand request traveling from the host memory controller into the cube.
///
/// Requests operate at cache-block (64 B) granularity; the vault controller
/// expands prefetches to full rows internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique id used to match the eventual response.
    pub id: RequestId,
    /// Block-aligned physical address.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Originating core (for per-core statistics and fairness accounting).
    pub core: CoreId,
    /// CPU cycle at which the request entered the memory system (left the
    /// last-level cache). Latency statistics are measured from here.
    pub created_at: Cycle,
}

/// Where, inside the cube, a request was ultimately served from.
///
/// This drives the row-buffer conflict statistics of Figure 6 and the
/// AMAT breakdown of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceSource {
    /// Hit in the per-vault prefetch buffer (22-cycle latency in Table I).
    PrefetchBuffer,
    /// The bank's row buffer already held the needed row.
    RowBufferHit,
    /// The bank was idle/closed; the row had to be activated (row miss).
    RowBufferMiss,
    /// A *different* row was open; precharge + activate were needed
    /// (row-buffer conflict — the event CAMPS is designed to reduce).
    RowBufferConflict,
}

impl ServiceSource {
    /// True if the access required opening a row that was displaced by
    /// another row (a conflict).
    #[must_use]
    pub fn is_conflict(self) -> bool {
        matches!(self, Self::RowBufferConflict)
    }

    /// Stable lowercase name, used in trace and metrics output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::PrefetchBuffer => "prefetch_buffer",
            Self::RowBufferHit => "row_hit",
            Self::RowBufferMiss => "row_miss",
            Self::RowBufferConflict => "row_conflict",
        }
    }
}

/// The completion notification for a [`MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemResponse {
    /// Id of the request this response answers.
    pub id: RequestId,
    /// The request's block address (echoed for cache fills).
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Originating core.
    pub core: CoreId,
    /// CPU cycle the request entered the memory system.
    pub created_at: Cycle,
    /// CPU cycle the response is delivered back to the host controller.
    pub completed_at: Cycle,
    /// Where the data came from inside the cube.
    pub source: ServiceSource,
    /// True for unsolicited cache-push packets (prefetched blocks pushed
    /// to the LLC when `push_to_llc` is enabled): they fill the shared
    /// cache and wake no one.
    #[serde(default)]
    pub push: bool,
}

impl MemResponse {
    /// Round-trip main-memory latency in CPU cycles.
    #[must_use]
    pub fn latency(&self) -> Cycle {
        self.completed_at.saturating_sub(self.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_completed_minus_created() {
        let r = MemResponse {
            id: RequestId(1),
            addr: PhysAddr(0),
            kind: AccessKind::Read,
            core: CoreId(0),
            created_at: 100,
            completed_at: 342,
            source: ServiceSource::RowBufferHit,
            push: false,
        };
        assert_eq!(r.latency(), 242);
    }

    #[test]
    fn latency_saturates() {
        let r = MemResponse {
            id: RequestId(1),
            addr: PhysAddr(0),
            kind: AccessKind::Write,
            core: CoreId(0),
            created_at: 10,
            completed_at: 5,
            source: ServiceSource::PrefetchBuffer,
            push: false,
        };
        assert_eq!(r.latency(), 0);
    }

    #[test]
    fn conflict_classification() {
        assert!(ServiceSource::RowBufferConflict.is_conflict());
        assert!(!ServiceSource::RowBufferHit.is_conflict());
        assert!(!ServiceSource::PrefetchBuffer.is_conflict());
        assert!(!ServiceSource::RowBufferMiss.is_conflict());
    }

    #[test]
    fn access_kind_helpers() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }
}
