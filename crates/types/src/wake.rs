//! The wake-time contract of the event-driven simulation engine.
//!
//! Every stateful component implements [`Wake`] by answering one question:
//! *given that nothing external happens, when is the earliest cycle at
//! which ticking you could change state?* The engine folds those answers
//! into a single earliest-wake cycle and advances `now` straight to it,
//! skipping the cycles in between — which are provably no-op ticks.
//!
//! The contract is deliberately **conservative**: a component may report a
//! wake *earlier* than its next real state change (the engine simply runs
//! a no-op tick, identical to what the polling engine would have done),
//! but it must never report one *later* — that would skip a cycle on which
//! the polling engine would have acted, breaking bit-identical equivalence.

use crate::clock::Cycle;

/// A component that can report the next cycle at which it needs a tick.
pub trait Wake {
    /// Earliest cycle strictly after `now` at which ticking this component
    /// could change its state (beyond deterministic idle accounting that
    /// the engine applies in bulk), or `None` if the component is fully
    /// quiescent until some external input arrives.
    ///
    /// Implementations must be pure (`&self`) and conservative: too-early
    /// answers cost a wasted tick, too-late answers break equivalence with
    /// the polling engine.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;
}

/// Folds a wake candidate into an accumulator, keeping the earliest.
///
/// Candidates at or before `now` are clamped to `now + 1`: the component is
/// actionable immediately, and the earliest cycle the engine can legally
/// advance to is the very next one.
pub fn fold_wake(acc: &mut Option<Cycle>, now: Cycle, candidate: Option<Cycle>) {
    if let Some(at) = candidate {
        let at = at.max(now + 1);
        *acc = Some(acc.map_or(at, |cur| cur.min(at)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_keeps_earliest_and_clamps() {
        let mut acc = None;
        fold_wake(&mut acc, 10, None);
        assert_eq!(acc, None);
        fold_wake(&mut acc, 10, Some(25));
        assert_eq!(acc, Some(25));
        fold_wake(&mut acc, 10, Some(40));
        assert_eq!(acc, Some(25));
        fold_wake(&mut acc, 10, Some(3)); // past-due clamps to now + 1
        assert_eq!(acc, Some(11));
        fold_wake(&mut acc, 10, Some(10)); // `now` itself also clamps
        assert_eq!(acc, Some(11));
    }
}
