//! The wake-time contract of the event-driven simulation engine.
//!
//! Every stateful component implements [`Wake`] by answering one question:
//! *given that nothing external happens, when is the earliest cycle at
//! which ticking you could change state?* The engine folds those answers
//! into a single earliest-wake cycle and advances `now` straight to it,
//! skipping the cycles in between — which are provably no-op ticks.
//!
//! The contract is deliberately **conservative**: a component may report a
//! wake *earlier* than its next real state change (the engine simply runs
//! a no-op tick, identical to what the polling engine would have done),
//! but it must never report one *later* — that would skip a cycle on which
//! the polling engine would have acted, breaking bit-identical equivalence.

use crate::clock::Cycle;

/// A component that can report the next cycle at which it needs a tick.
pub trait Wake {
    /// Earliest cycle strictly after `now` at which ticking this component
    /// could change its state (beyond deterministic idle accounting that
    /// the engine applies in bulk), or `None` if the component is fully
    /// quiescent until some external input arrives.
    ///
    /// Implementations must be pure (`&self`) and conservative: too-early
    /// answers cost a wasted tick, too-late answers break equivalence with
    /// the polling engine.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;
}

/// Who won a wake fold: the component whose `next_event` answer (or
/// engine-internal deadline) set the cycle the event engine jumped to.
/// Used by the self-profiler's dispatch accounting — *which* source
/// wakes us, how often those wakes are spurious — and deliberately
/// decoupled from the fold itself so accounting can never perturb the
/// engine's bit-identical wake computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSource {
    /// A core's front-end or pending memory slot.
    Core,
    /// The memory subsystem (host queue, links, vaults, refresh).
    Memory,
    /// The stall watchdog's trip deadline.
    Watchdog,
    /// The periodic metrics sampler.
    Sampler,
    /// No component reported a wake; the engine fell back to the run
    /// deadline (end of the measured window).
    Deadline,
    /// A scan-backoff tick: the engine skipped the wake fold entirely
    /// and ticked densely after a tick-dense stretch.
    Backoff,
}

impl WakeSource {
    /// Number of variants (sizing accounting arrays).
    pub const COUNT: usize = 6;

    /// Every variant, in `as usize` order.
    pub const ALL: [WakeSource; WakeSource::COUNT] = [
        WakeSource::Core,
        WakeSource::Memory,
        WakeSource::Watchdog,
        WakeSource::Sampler,
        WakeSource::Deadline,
        WakeSource::Backoff,
    ];

    /// Stable snake_case label for exports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            WakeSource::Core => "core",
            WakeSource::Memory => "memory",
            WakeSource::Watchdog => "watchdog",
            WakeSource::Sampler => "sampler",
            WakeSource::Deadline => "deadline",
            WakeSource::Backoff => "backoff",
        }
    }
}

/// Folds a wake candidate into an accumulator, keeping the earliest.
///
/// Candidates at or before `now` are clamped to `now + 1`: the component is
/// actionable immediately, and the earliest cycle the engine can legally
/// advance to is the very next one.
pub fn fold_wake(acc: &mut Option<Cycle>, now: Cycle, candidate: Option<Cycle>) {
    if let Some(at) = candidate {
        let at = at.max(now + 1);
        *acc = Some(acc.map_or(at, |cur| cur.min(at)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_keeps_earliest_and_clamps() {
        let mut acc = None;
        fold_wake(&mut acc, 10, None);
        assert_eq!(acc, None);
        fold_wake(&mut acc, 10, Some(25));
        assert_eq!(acc, Some(25));
        fold_wake(&mut acc, 10, Some(40));
        assert_eq!(acc, Some(25));
        fold_wake(&mut acc, 10, Some(3)); // past-due clamps to now + 1
        assert_eq!(acc, Some(11));
        fold_wake(&mut acc, 10, Some(10)); // `now` itself also clamps
        assert_eq!(acc, Some(11));
    }
}
