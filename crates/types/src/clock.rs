//! Cycle counting and clock-domain conversion.
//!
//! The simulator is driven at CPU-clock granularity (3 GHz in the paper's
//! Table I). DRAM timing parameters are specified in memory-bus cycles
//! (DDR3-1600 → 800 MHz command clock) and must be converted into CPU cycles
//! before they are compared against the global timeline. The conversion is a
//! rational ratio kept as `numer/denom` so that, e.g., a 3 GHz CPU over an
//! 800 MHz DRAM clock is exactly 15/4 with no floating-point drift.

use serde::{Deserialize, Serialize};

/// A point on (or a distance along) the global simulation timeline, measured
/// in CPU cycles.
pub type Cycle = u64;

/// A clock-domain converter from a slower component clock (e.g. the DRAM
/// command clock) into CPU cycles.
///
/// The ratio is `cpu_hz / component_hz`, stored as an exact fraction.
/// Conversions round **up**: a constraint of `n` component cycles is
/// satisfied no earlier than `ceil(n * numer / denom)` CPU cycles, which is
/// the conservative (legal) direction for timing constraints.
///
/// ```
/// use camps_types::clock::ClockDomain;
/// // 3 GHz CPU, 800 MHz DRAM command clock (DDR3-1600): ratio 15/4.
/// let d = ClockDomain::new(3_000_000_000, 800_000_000);
/// assert_eq!(d.to_cpu_cycles(11), 42); // ceil(11 * 3.75) — tRCD in Table I
/// assert_eq!(d.to_cpu_cycles(4), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockDomain {
    numer: u64,
    denom: u64,
}

impl ClockDomain {
    /// Builds a converter for a component running at `component_hz` inside a
    /// system whose global timeline ticks at `cpu_hz`.
    ///
    /// # Panics
    /// Panics if either frequency is zero or the component clock is faster
    /// than the CPU clock (the simulator never needs that direction).
    #[must_use]
    pub fn new(cpu_hz: u64, component_hz: u64) -> Self {
        assert!(
            cpu_hz > 0 && component_hz > 0,
            "frequencies must be nonzero"
        );
        assert!(
            component_hz <= cpu_hz,
            "component clock ({component_hz} Hz) must not exceed CPU clock ({cpu_hz} Hz)"
        );
        let g = gcd(cpu_hz, component_hz);
        Self {
            numer: cpu_hz / g,
            denom: component_hz / g,
        }
    }

    /// The identity domain (component clock == CPU clock).
    #[must_use]
    pub fn identity() -> Self {
        Self { numer: 1, denom: 1 }
    }

    /// Converts a duration in component cycles to CPU cycles, rounding up.
    #[must_use]
    pub fn to_cpu_cycles(&self, component_cycles: u64) -> Cycle {
        // ceil(a*n / d) without overflow for realistic magnitudes.
        let a = u128::from(component_cycles) * u128::from(self.numer);
        a.div_ceil(u128::from(self.denom)) as Cycle
    }

    /// The exact ratio as `(numerator, denominator)` in lowest terms.
    #[must_use]
    pub fn ratio(&self) -> (u64, u64) {
        (self.numer, self.denom)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Converts a number of bytes moved over a serial lane group into the CPU
/// cycles needed to serialize it.
///
/// `lane_gbps` is the per-lane line rate in gigabits per second; `lanes` is
/// the number of lanes moving data in one direction. The result rounds up.
///
/// ```
/// use camps_types::clock::serialization_cycles;
/// // One 16-byte FLIT over 16 lanes at 12.5 Gbps each, 3 GHz CPU:
/// // 128 bits / 200 Gbps = 0.64 ns = 1.92 CPU cycles → 2.
/// assert_eq!(serialization_cycles(16, 16, 12.5, 3_000_000_000), 2);
/// ```
#[must_use]
pub fn serialization_cycles(bytes: u64, lanes: u32, lane_gbps: f64, cpu_hz: u64) -> Cycle {
    assert!(lanes > 0 && lane_gbps > 0.0, "link must have bandwidth");
    let bits = bytes as f64 * 8.0;
    let seconds = bits / (lanes as f64 * lane_gbps * 1e9);
    (seconds * cpu_hz as f64).ceil() as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_reduced() {
        let d = ClockDomain::new(3_000_000_000, 800_000_000);
        assert_eq!(d.ratio(), (15, 4));
    }

    #[test]
    fn identity_round_trips() {
        let d = ClockDomain::identity();
        for n in [0, 1, 7, 1000] {
            assert_eq!(d.to_cpu_cycles(n), n);
        }
    }

    #[test]
    fn conversion_rounds_up() {
        let d = ClockDomain::new(3_000_000_000, 800_000_000);
        assert_eq!(d.to_cpu_cycles(0), 0);
        assert_eq!(d.to_cpu_cycles(1), 4); // 3.75 → 4
        assert_eq!(d.to_cpu_cycles(2), 8); // 7.5 → 8
        assert_eq!(d.to_cpu_cycles(4), 15); // exact
    }

    #[test]
    fn table1_timings_convert() {
        // tRCD = tRP = tCL = 11 DRAM cycles per Table I.
        let d = ClockDomain::new(3_000_000_000, 800_000_000);
        assert_eq!(d.to_cpu_cycles(11), 42);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn component_faster_than_cpu_panics() {
        let _ = ClockDomain::new(1_000, 2_000);
    }

    #[test]
    fn flit_serialization_matches_hand_math() {
        // 5 FLITs (80 B read response) over one 16-lane 12.5 Gbps link:
        // 640 bits / 200 Gbps = 3.2 ns = 9.6 cycles → 10.
        assert_eq!(serialization_cycles(80, 16, 12.5, 3_000_000_000), 10);
    }
}
