//! Typed simulation errors: configuration, trace format, I/O, integrity
//! violations, and watchdog aborts.
//!
//! Every fallible library path reachable from `run_mix` reports failures
//! through [`SimError`] instead of panicking, so callers (the `camps`
//! CLI, benches, library users) can degrade gracefully on bad inputs and
//! fail loudly — with a diagnostic, not a backtrace — on model bugs.

use crate::clock::Cycle;
use crate::request::RequestId;
use std::fmt;

/// An error raised while validating a simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field must be a nonzero power of two.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field failed a structural constraint.
    Invalid {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The forward-progress watchdog window is shorter than the worst-case
    /// legitimate DRAM access latency, so a healthy machine would be
    /// aborted as wedged.
    WatchdogTooShort {
        /// The configured `integrity.watchdog_cycles`.
        window: Cycle,
        /// Minimum legal window (worst-case access latency, CPU cycles).
        floor: Cycle,
    },
    /// A checkpoint interval of zero cycles was requested. Disabling
    /// periodic checkpoints is expressed by leaving the interval unset,
    /// never by zero.
    ZeroCheckpointInterval,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "config field `{field}` must be a nonzero power of two, got {value}"
                )
            }
            Self::Invalid { field, reason } => {
                write!(f, "config field `{field}` invalid: {reason}")
            }
            Self::WatchdogTooShort { window, floor } => {
                write!(
                    f,
                    "integrity.watchdog_cycles = {window} is below the worst-case \
                     DRAM access latency ({floor} CPU cycles); a healthy stall \
                     would trip the watchdog"
                )
            }
            Self::ZeroCheckpointInterval => {
                write!(
                    f,
                    "checkpoint interval must be nonzero (omit it to disable \
                     periodic checkpoints)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A structural defect in a binary `.camps-trace` image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Shorter than the fixed header (magic + version + count).
    TruncatedHeader {
        /// Bytes present.
        len: usize,
    },
    /// The magic bytes are not `CAMPSTRC`.
    BadMagic {
        /// What was found instead.
        found: [u8; 8],
    },
    /// A format version this reader does not understand.
    UnsupportedVersion {
        /// Version field from the header.
        found: u32,
    },
    /// The body ended in the middle of a record.
    TruncatedRecord {
        /// Zero-based index of the incomplete record.
        index: u64,
        /// Byte offset where the record started.
        offset: usize,
    },
    /// A record kind byte outside the defined set.
    UnknownKind {
        /// Zero-based record index.
        index: u64,
        /// The rejected kind byte.
        kind: u8,
    },
    /// Bytes remain after the declared record count was decoded.
    TrailingBytes {
        /// Undecoded bytes at the tail.
        remaining: usize,
    },
    /// The header declares zero records (a trace must supply work).
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TruncatedHeader { len } => {
                write!(f, "trace truncated: {len} bytes is shorter than the header")
            }
            Self::BadMagic { found } => {
                write!(f, "not a camps trace (magic {found:02x?})")
            }
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found}")
            }
            Self::TruncatedRecord { index, offset } => {
                write!(
                    f,
                    "trace truncated inside record {index} (byte offset {offset})"
                )
            }
            Self::UnknownKind { index, kind } => {
                write!(f, "record {index} has unknown kind byte {kind}")
            }
            Self::TrailingBytes { remaining } => {
                write!(
                    f,
                    "{remaining} trailing bytes after the declared record count"
                )
            }
            Self::Empty => write!(f, "trace declares zero records"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A request-conservation violation caught by the request auditor: a
/// request was lost, duplicated, or completed twice. Any of these means
/// the model (or an injected fault) corrupted the request lifecycle —
/// IPC/AMAT numbers from such a run are meaningless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The same request id was injected twice without completing.
    DuplicateInjection {
        /// The offending id.
        id: RequestId,
    },
    /// A completion arrived for an id that was never injected (or was
    /// already retired and then completed again after being forgotten).
    UnknownCompletion {
        /// The offending id.
        id: RequestId,
    },
    /// The same request completed twice.
    DuplicateCompletion {
        /// The offending id.
        id: RequestId,
    },
    /// The memory system reported idle while requests were still
    /// outstanding — they were silently dropped.
    LostRequests {
        /// How many never completed.
        outstanding: usize,
        /// Up to eight example ids for debugging.
        examples: Vec<RequestId>,
    },
    /// A response (or MSHR waiter token) named a core the machine does
    /// not have — the request lifecycle state is corrupt.
    CorruptCoreId {
        /// The core id carried by the response.
        core: u8,
        /// How many cores the machine actually has.
        cores: usize,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateInjection { id } => {
                write!(f, "request {id:?} injected twice while outstanding")
            }
            Self::UnknownCompletion { id } => {
                write!(f, "completion for unknown request {id:?}")
            }
            Self::DuplicateCompletion { id } => {
                write!(f, "request {id:?} completed twice")
            }
            Self::LostRequests {
                outstanding,
                examples,
            } => {
                write!(
                    f,
                    "{outstanding} requests lost (memory idle while outstanding), \
                     e.g. {examples:?}"
                )
            }
            Self::CorruptCoreId { core, cores } => {
                write!(f, "response names core {core} of a {cores}-core machine")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Occupancy snapshot of one vault controller for watchdog diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VaultSnapshot {
    /// Vault index.
    pub vault: u16,
    /// Demand/prefetch read queue occupancy.
    pub read_q: usize,
    /// Write queue occupancy.
    pub write_q: usize,
    /// Host-side retry queue occupancy (packets bounced off a full vault).
    pub retry_q: usize,
    /// `(bank, row)` pairs currently open in the bank row buffers.
    pub open_rows: Vec<(u16, u32)>,
    /// Prefetch-buffer rows resident.
    pub buffer_rows: usize,
    /// Row fetch / writeback jobs in flight inside the vault.
    pub inflight_jobs: usize,
}

/// The structured diagnostic dump produced when the forward-progress
/// watchdog fires: everything needed to see *where* the machine wedged.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogReport {
    /// Cycle at which the watchdog gave up.
    pub now: Cycle,
    /// Length of the no-progress window that tripped it.
    pub stall_cycles: Cycle,
    /// Host-controller queue occupancy.
    pub host_queue: usize,
    /// Blocks in flight in the L3 MSHR file.
    pub mshr_in_flight: usize,
    /// L3 dirty victims waiting to enter the cube.
    pub writeback_queue: usize,
    /// Per-core reorder-buffer occupancy.
    pub rob_occupancy: Vec<usize>,
    /// Free token counts per request-direction link.
    pub req_link_tokens: Vec<u32>,
    /// Free token counts per response-direction link.
    pub resp_link_tokens: Vec<u32>,
    /// Every vault's queue/row/buffer state.
    pub vaults: Vec<VaultSnapshot>,
}

impl WatchdogReport {
    /// A multi-line human-readable rendering of the dump (what the CLI
    /// prints before exiting nonzero).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "watchdog: no forward progress for {} cycles (at cycle {})",
            self.stall_cycles, self.now
        );
        let _ = writeln!(
            out,
            "  host queue {} | MSHRs in flight {} | writeback queue {}",
            self.host_queue, self.mshr_in_flight, self.writeback_queue
        );
        let _ = writeln!(out, "  ROB occupancy: {:?}", self.rob_occupancy);
        let _ = writeln!(
            out,
            "  link tokens free: req {:?} resp {:?}",
            self.req_link_tokens, self.resp_link_tokens
        );
        for v in &self.vaults {
            if v.read_q + v.write_q + v.retry_q + v.inflight_jobs == 0 {
                continue; // only wedged/occupied vaults are interesting
            }
            let _ = writeln!(
                out,
                "  vault {:2}: read_q {:2} write_q {:2} retry_q {:2} jobs {} \
                 buffer rows {} open rows {:?}",
                v.vault,
                v.read_q,
                v.write_q,
                v.retry_q,
                v.inflight_jobs,
                v.buffer_rows,
                v.open_rows
            );
        }
        out
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Any failure a simulation entry point can report.
#[derive(Debug)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A trace image is malformed.
    Trace(TraceError),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Run setup was inconsistent (e.g. trace count vs. core count).
    Setup {
        /// Human-readable reason.
        reason: String,
    },
    /// Request conservation was violated.
    Integrity(IntegrityError),
    /// The forward-progress watchdog aborted the run.
    Watchdog(Box<WatchdogReport>),
    /// A checkpoint could not be written, read, or applied: payload
    /// checksum mismatch, format-version mismatch, manifest/config
    /// disagreement, or a state tree whose shape the restorer rejects.
    Snapshot {
        /// Human-readable reason.
        reason: String,
    },
    /// A sweep job panicked. The sweep supervisor catches the unwind at
    /// the job boundary so one crashing job cannot tear down its
    /// siblings; the payload is preserved here for the job's record.
    Panic {
        /// The panic payload, rendered (`&str`/`String` payloads pass
        /// through; anything else becomes a placeholder).
        message: String,
    },
    /// A sweep job blew through its wall-clock deadline. Unlike the
    /// cycle-domain watchdog (which catches a *wedged* machine), this
    /// catches a *slow* one: livelock, pathological configs, or a host
    /// that is simply overloaded.
    Deadline {
        /// Wall-clock seconds the attempt had run for when it was cut.
        elapsed_secs: f64,
        /// The configured per-attempt limit, seconds.
        limit_secs: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::Trace(e) => write!(f, "bad trace: {e}"),
            Self::Io { path, source } => write!(f, "io error on `{path}`: {source}"),
            Self::Setup { reason } => write!(f, "bad run setup: {reason}"),
            Self::Integrity(e) => write!(f, "integrity violation: {e}"),
            Self::Watchdog(report) => write!(f, "{report}"),
            Self::Snapshot { reason } => write!(f, "snapshot error: {reason}"),
            Self::Panic { message } => write!(f, "job panicked: {message}"),
            Self::Deadline {
                elapsed_secs,
                limit_secs,
            } => write!(
                f,
                "job exceeded its wall-clock deadline ({elapsed_secs:.1}s elapsed, \
                 limit {limit_secs:.1}s)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Trace(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::Integrity(e) => Some(e),
            Self::Setup { .. }
            | Self::Watchdog(_)
            | Self::Snapshot { .. }
            | Self::Panic { .. }
            | Self::Deadline { .. } => None,
        }
    }
}

impl From<serde::de::Error> for SimError {
    fn from(e: serde::de::Error) -> Self {
        SimError::Snapshot {
            reason: e.to_string(),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<IntegrityError> for SimError {
    fn from(e: IntegrityError) -> Self {
        SimError::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = ConfigError::NotPowerOfTwo {
            field: "vaults",
            value: 3,
        };
        assert!(e.to_string().contains("vaults"));
        let e = ConfigError::Invalid {
            field: "rob",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("rob"));
    }

    #[test]
    fn cross_field_variants_display_the_constraint() {
        let e = ConfigError::WatchdogTooShort {
            window: 100,
            floor: 1000,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("1000"), "{s}");
        let s = ConfigError::ZeroCheckpointInterval.to_string();
        assert!(s.contains("nonzero"), "{s}");
    }

    #[test]
    fn snapshot_errors_wrap_deserialization_failures() {
        let e = SimError::from(serde::de::Error::custom("missing field `rob`"));
        assert!(e.to_string().contains("snapshot error"));
        assert!(e.to_string().contains("missing field `rob`"));
    }

    #[test]
    fn sim_error_wraps_and_displays_sources() {
        let e = SimError::from(ConfigError::Invalid {
            field: "links",
            reason: "zero".into(),
        });
        assert!(e.to_string().contains("links"));
        let e = SimError::from(TraceError::UnsupportedVersion { found: 9 });
        assert!(e.to_string().contains("version 9"));
        let e = SimError::from(IntegrityError::DuplicateCompletion { id: RequestId(7) });
        assert!(e.to_string().contains("completed twice"));
    }

    #[test]
    fn watchdog_report_renders_occupied_vaults_only() {
        let report = WatchdogReport {
            now: 1234,
            stall_cycles: 100,
            host_queue: 3,
            mshr_in_flight: 2,
            writeback_queue: 0,
            rob_occupancy: vec![8, 0],
            req_link_tokens: vec![10, 10],
            resp_link_tokens: vec![0, 0],
            vaults: vec![
                VaultSnapshot {
                    vault: 0,
                    read_q: 4,
                    write_q: 0,
                    retry_q: 1,
                    open_rows: vec![(2, 77)],
                    buffer_rows: 3,
                    inflight_jobs: 1,
                },
                VaultSnapshot {
                    vault: 1,
                    read_q: 0,
                    write_q: 0,
                    retry_q: 0,
                    open_rows: vec![],
                    buffer_rows: 0,
                    inflight_jobs: 0,
                },
            ],
        };
        let text = report.render();
        assert!(text.contains("no forward progress for 100 cycles"));
        assert!(text.contains("vault  0"));
        assert!(!text.contains("vault  1"), "idle vaults are elided");
        assert!(text.contains("(2, 77)"));
    }
}
