//! Configuration validation errors.

use std::fmt;

/// An error raised while validating a simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field must be a nonzero power of two.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field failed a structural constraint.
    Invalid {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "config field `{field}` must be a nonzero power of two, got {value}"
                )
            }
            Self::Invalid { field, reason } => {
                write!(f, "config field `{field}` invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = ConfigError::NotPowerOfTwo {
            field: "vaults",
            value: 3,
        };
        assert!(e.to_string().contains("vaults"));
        let e = ConfigError::Invalid {
            field: "rob",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("rob"));
    }
}
