//! Physical addresses and the HMC address mapping.
//!
//! Table I of the paper specifies the mapping `RoRaBaVaCo`
//! (row : rank : bank : vault : column, from most- to least-significant
//! bits, with the 64-byte block offset below the column bits). Placing the
//! vault and column bits low interleaves consecutive blocks of a row across
//! vaults? No — in `RoRaBaVaCo` the *column* bits are lowest, so the 16
//! consecutive 64 B blocks of a 1 KB row sit in the same bank of the same
//! vault, and consecutive *rows* of the address space rotate across vaults
//! then banks. This is what gives CAMPS its row-granularity locality.
//!
//! Alternative schemes are provided for ablation studies.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical byte address in the HMC-backed physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The address of the 64-byte block containing this address.
    #[must_use]
    pub fn block_base(self, block_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 & !(block_bytes - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

/// Bit-field order used to decompose a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// `row : rank : bank : vault : column : offset` — the paper's mapping
    /// (Table I). Consecutive rows rotate across vaults, keeping each row's
    /// blocks together in one bank.
    RoRaBaVaCo,
    /// `row : rank : vault : bank : column : offset` — rotates consecutive
    /// rows across banks first; ablation alternative.
    RoRaVaBaCo,
    /// `vault : row : rank : bank : column : offset` — coarse vault
    /// partitioning (each vault owns a contiguous slice); ablation
    /// alternative that minimizes vault-level interleaving.
    VaRoBaCo,
}

impl MappingScheme {
    /// All supported schemes, for sweeps.
    pub const ALL: [MappingScheme; 3] = [Self::RoRaBaVaCo, Self::RoRaVaBaCo, Self::VaRoBaCo];
}

impl fmt::Display for MappingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::RoRaBaVaCo => "RoRaBaVaCo",
            Self::RoRaVaBaCo => "RoRaVaBaCo",
            Self::VaRoBaCo => "VaRoBaCo",
        };
        f.write_str(s)
    }
}

/// A fully decoded address: which vault, bank, row, and block-column a
/// physical address refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Vault index within the cube, `0..vaults`.
    pub vault: u16,
    /// Bank index within the vault, `0..banks_per_vault`.
    pub bank: u16,
    /// Row index within the bank.
    pub row: u32,
    /// 64 B block index within the row, `0..blocks_per_row`.
    pub col: u16,
    /// Byte offset within the block.
    pub offset: u16,
}

impl DecodedAddr {
    /// Key identifying the row this address falls in, unique within a vault.
    #[must_use]
    pub fn row_key(&self) -> RowKey {
        RowKey {
            bank: self.bank,
            row: self.row,
        }
    }
}

/// A (bank, row) pair — the granularity at which CAMPS prefetches and at
/// which the conflict/utilization tables operate. Unique within one vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowKey {
    /// Bank index within the vault.
    pub bank: u16,
    /// Row index within the bank.
    pub row: u32,
}

/// Address encoder/decoder for a fixed HMC geometry.
///
/// All geometry fields must be powers of two so the mapping is a pure
/// bit-slice permutation (as in real hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    scheme: MappingScheme,
    vaults: u32,
    banks_per_vault: u32,
    ranks: u32,
    rows_per_bank: u32,
    row_bytes: u32,
    block_bytes: u32,
    // Cached bit widths.
    offset_bits: u32,
    col_bits: u32,
    vault_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

impl AddressMapping {
    /// Builds a mapping for the given geometry.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if any field is zero or not a power of two,
    /// or if the row size is not a multiple of the block size.
    pub fn new(
        scheme: MappingScheme,
        vaults: u32,
        banks_per_vault: u32,
        ranks: u32,
        rows_per_bank: u32,
        row_bytes: u32,
        block_bytes: u32,
    ) -> Result<Self, ConfigError> {
        for (name, v) in [
            ("vaults", vaults),
            ("banks_per_vault", banks_per_vault),
            ("ranks", ranks),
            ("rows_per_bank", rows_per_bank),
            ("row_bytes", row_bytes),
            ("block_bytes", block_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    field: name,
                    value: v as u64,
                });
            }
        }
        if row_bytes < block_bytes {
            return Err(ConfigError::Invalid {
                field: "row_bytes",
                reason: "row must be at least one block".into(),
            });
        }
        let blocks_per_row = row_bytes / block_bytes;
        Ok(Self {
            scheme,
            vaults,
            banks_per_vault,
            ranks,
            rows_per_bank,
            row_bytes,
            block_bytes,
            offset_bits: block_bytes.trailing_zeros(),
            col_bits: blocks_per_row.trailing_zeros(),
            vault_bits: vaults.trailing_zeros(),
            bank_bits: banks_per_vault.trailing_zeros(),
            rank_bits: ranks.trailing_zeros(),
            row_bits: rows_per_bank.trailing_zeros(),
        })
    }

    /// Total cube capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.vaults)
            * u64::from(self.banks_per_vault)
            * u64::from(self.ranks)
            * u64::from(self.rows_per_bank)
            * u64::from(self.row_bytes)
    }

    /// Number of address bits consumed by the mapping.
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        self.offset_bits
            + self.col_bits
            + self.vault_bits
            + self.bank_bits
            + self.rank_bits
            + self.row_bits
    }

    /// Number of 64 B blocks in one row.
    #[must_use]
    pub fn blocks_per_row(&self) -> u32 {
        self.row_bytes / self.block_bytes
    }

    /// The configured mapping scheme.
    #[must_use]
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Number of vaults in the cube.
    #[must_use]
    pub fn vaults(&self) -> u32 {
        self.vaults
    }

    /// Number of banks per vault.
    #[must_use]
    pub fn banks_per_vault(&self) -> u32 {
        self.banks_per_vault
    }

    /// Number of rows per bank.
    #[must_use]
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Row size in bytes (the prefetch granularity).
    #[must_use]
    pub fn row_bytes(&self) -> u32 {
        self.row_bytes
    }

    /// Cache block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Decodes a physical address. Addresses beyond the capacity wrap
    /// (the top bits are ignored), mirroring how hardware decoders slice a
    /// fixed window of bits.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DecodedAddr {
        let mut a = addr.0;
        let offset = take(&mut a, self.offset_bits) as u16;
        let col = take(&mut a, self.col_bits) as u16;
        let (vault, bank, _rank, row);
        match self.scheme {
            MappingScheme::RoRaBaVaCo => {
                vault = take(&mut a, self.vault_bits) as u16;
                bank = take(&mut a, self.bank_bits) as u16;
                _rank = take(&mut a, self.rank_bits);
                row = take(&mut a, self.row_bits) as u32;
            }
            MappingScheme::RoRaVaBaCo => {
                bank = take(&mut a, self.bank_bits) as u16;
                vault = take(&mut a, self.vault_bits) as u16;
                _rank = take(&mut a, self.rank_bits);
                row = take(&mut a, self.row_bits) as u32;
            }
            MappingScheme::VaRoBaCo => {
                bank = take(&mut a, self.bank_bits) as u16;
                _rank = take(&mut a, self.rank_bits);
                row = take(&mut a, self.row_bits) as u32;
                vault = take(&mut a, self.vault_bits) as u16;
            }
        }
        DecodedAddr {
            vault,
            bank,
            row,
            col,
            offset,
        }
    }

    /// Re-encodes a decoded address into the physical address it came from.
    ///
    /// `decode` and `encode` are exact inverses for in-range addresses
    /// (property-tested below).
    #[must_use]
    pub fn encode(&self, d: &DecodedAddr) -> PhysAddr {
        let mut a: u64 = 0;
        let mut shift = 0u32;
        let mut put = |value: u64, bits: u32| {
            a |= value << shift;
            shift += bits;
        };
        put(u64::from(d.offset), self.offset_bits);
        put(u64::from(d.col), self.col_bits);
        match self.scheme {
            MappingScheme::RoRaBaVaCo => {
                put(u64::from(d.vault), self.vault_bits);
                put(u64::from(d.bank), self.bank_bits);
                put(0, self.rank_bits);
                put(u64::from(d.row), self.row_bits);
            }
            MappingScheme::RoRaVaBaCo => {
                put(u64::from(d.bank), self.bank_bits);
                put(u64::from(d.vault), self.vault_bits);
                put(0, self.rank_bits);
                put(u64::from(d.row), self.row_bits);
            }
            MappingScheme::VaRoBaCo => {
                put(u64::from(d.bank), self.bank_bits);
                put(0, self.rank_bits);
                put(u64::from(d.row), self.row_bits);
                put(u64::from(d.vault), self.vault_bits);
            }
        }
        PhysAddr(a)
    }

    /// The physical address of block `col` within the row `key` of vault
    /// `vault` — used when a prefetched row is filled into the buffer and
    /// its blocks need block addresses for cache fills.
    #[must_use]
    pub fn block_addr(&self, vault: u16, key: RowKey, col: u16) -> PhysAddr {
        self.encode(&DecodedAddr {
            vault,
            bank: key.bank,
            row: key.row,
            col,
            offset: 0,
        })
    }
}

/// The cube-interleaving stage layered above [`AddressMapping`]: splices
/// a cube-id bit field into the physical address at the interleave
/// granularity, so a pool of `cubes` identical cubes presents one flat
/// address space.
///
/// Bit layout of a global address (low to high):
///
/// ```text
/// | granule offset | cube id | cube-local high bits |
///   splice_shift     cube_bits
/// ```
///
/// where `splice_shift = log2(block_bytes * interleave_blocks)`. With
/// one cube the field is zero bits wide and every operation is the
/// identity — the single-cube machine is bit-identical to a mapping
/// used directly. The splice is a pure bit permutation, so
/// (`cube_of`, `local_addr`) ↔ `global_addr` are exact inverses and no
/// two global addresses alias (property-tested below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeMap {
    mapping: AddressMapping,
    cubes: u32,
    cube_bits: u32,
    splice_shift: u32,
}

impl CubeMap {
    /// Builds the interleaving stage for `cubes` cubes of identical
    /// geometry, rotating ownership every `interleave_blocks` blocks.
    ///
    /// # Errors
    /// Returns [`ConfigError`] when `cubes` or `interleave_blocks` is
    /// zero or not a power of two, or when the interleave granule does
    /// not fit inside one cube's address space.
    pub fn new(
        mapping: AddressMapping,
        cubes: u32,
        interleave_blocks: u32,
    ) -> Result<Self, ConfigError> {
        if cubes == 0 || !cubes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "topology.cubes",
                value: u64::from(cubes),
            });
        }
        if interleave_blocks == 0 || !interleave_blocks.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "topology.interleave_blocks",
                value: u64::from(interleave_blocks),
            });
        }
        let splice_shift =
            mapping.block_bytes().trailing_zeros() + interleave_blocks.trailing_zeros();
        if splice_shift > mapping.addr_bits() {
            return Err(ConfigError::Invalid {
                field: "topology.interleave_blocks",
                reason: format!(
                    "interleave granule of 2^{splice_shift} bytes exceeds one cube's \
                     2^{} byte address space",
                    mapping.addr_bits()
                ),
            });
        }
        let cube_bits = cubes.trailing_zeros();
        if mapping.addr_bits() + cube_bits > 62 {
            return Err(ConfigError::Invalid {
                field: "topology.cubes",
                reason: "pool address space exceeds 62 bits".into(),
            });
        }
        Ok(Self {
            mapping,
            cubes,
            cube_bits,
            splice_shift,
        })
    }

    /// Number of cubes in the pool.
    #[must_use]
    pub fn cubes(&self) -> u32 {
        self.cubes
    }

    /// The per-cube mapping underneath the splice.
    #[must_use]
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Total pool capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.mapping.capacity_bytes() * u64::from(self.cubes)
    }

    /// Number of address bits consumed by the pool mapping.
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        self.mapping.addr_bits() + self.cube_bits
    }

    /// The cube owning `addr`.
    #[must_use]
    pub fn cube_of(&self, addr: PhysAddr) -> u16 {
        if self.cube_bits == 0 {
            return 0;
        }
        ((addr.0 >> self.splice_shift) & (u64::from(self.cubes) - 1)) as u16
    }

    /// Strips the cube-id field: the address as the owning cube sees it.
    /// The identity with one cube.
    #[must_use]
    pub fn local_addr(&self, addr: PhysAddr) -> PhysAddr {
        if self.cube_bits == 0 {
            return addr;
        }
        let low = addr.0 & ((1u64 << self.splice_shift) - 1);
        let high = addr.0 >> (self.splice_shift + self.cube_bits);
        PhysAddr((high << self.splice_shift) | low)
    }

    /// Splices `cube` back into a cube-local address — the exact inverse
    /// of ([`Self::cube_of`], [`Self::local_addr`]).
    #[must_use]
    pub fn global_addr(&self, cube: u16, local: PhysAddr) -> PhysAddr {
        if self.cube_bits == 0 {
            return local;
        }
        let low = local.0 & ((1u64 << self.splice_shift) - 1);
        let high = local.0 >> self.splice_shift;
        let cube = u64::from(cube) & (u64::from(self.cubes) - 1);
        PhysAddr(low | (cube << self.splice_shift) | (high << (self.splice_shift + self.cube_bits)))
    }

    /// Decodes a global address into its cube and cube-local fields.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> (u16, DecodedAddr) {
        (
            self.cube_of(addr),
            self.mapping.decode(self.local_addr(addr)),
        )
    }

    /// Re-encodes a (cube, decoded) pair into its global address.
    #[must_use]
    pub fn encode(&self, cube: u16, d: &DecodedAddr) -> PhysAddr {
        self.global_addr(cube, self.mapping.encode(d))
    }
}

/// Pops the low `bits` bits off `a`, returning them.
fn take(a: &mut u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    let v = *a & ((1u64 << bits) - 1);
    *a >>= bits;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_mapping() -> AddressMapping {
        // Table I: 32 vaults, 16 banks/vault, 1 KB rows, 64 B blocks, 4 GB.
        AddressMapping::new(MappingScheme::RoRaBaVaCo, 32, 16, 1, 8192, 1024, 64).unwrap()
    }

    #[test]
    fn paper_geometry_capacity_is_4gib() {
        let m = paper_mapping();
        assert_eq!(m.capacity_bytes(), 4 << 30);
        assert_eq!(m.addr_bits(), 32);
        assert_eq!(m.blocks_per_row(), 16);
    }

    #[test]
    fn zero_address_decodes_to_origin() {
        let d = paper_mapping().decode(PhysAddr(0));
        assert_eq!(
            d,
            DecodedAddr {
                vault: 0,
                bank: 0,
                row: 0,
                col: 0,
                offset: 0
            }
        );
    }

    #[test]
    fn consecutive_blocks_stay_in_one_row() {
        // RoRaBaVaCo: the 16 blocks of a 1 KB row share vault/bank/row.
        let m = paper_mapping();
        let base = m.decode(PhysAddr(0x4000));
        for blk in 0..16u64 {
            let d = m.decode(PhysAddr(0x4000 + blk * 64));
            assert_eq!((d.vault, d.bank, d.row), (base.vault, base.bank, base.row));
            assert_eq!(d.col, base.col + blk as u16);
        }
    }

    #[test]
    fn consecutive_rows_rotate_vaults_in_paper_scheme() {
        let m = paper_mapping();
        let a = m.decode(PhysAddr(0));
        let b = m.decode(PhysAddr(1024)); // next 1 KB row
        assert_eq!(a.vault + 1, b.vault);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn varo_scheme_keeps_vault_contiguous() {
        let m = AddressMapping::new(MappingScheme::VaRoBaCo, 32, 16, 1, 8192, 1024, 64).unwrap();
        let slice = m.capacity_bytes() / 32;
        for i in 0..8u64 {
            assert_eq!(m.decode(PhysAddr(i * 4096)).vault, 0);
            assert_eq!(m.decode(PhysAddr(slice + i * 4096)).vault, 1);
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let e = AddressMapping::new(MappingScheme::RoRaBaVaCo, 3, 16, 1, 8192, 1024, 64);
        assert!(matches!(
            e,
            Err(ConfigError::NotPowerOfTwo {
                field: "vaults",
                ..
            })
        ));
    }

    #[test]
    fn row_smaller_than_block_rejected() {
        let e = AddressMapping::new(MappingScheme::RoRaBaVaCo, 32, 16, 1, 8192, 32, 64);
        assert!(e.is_err());
    }

    #[test]
    fn block_base_masks_offset() {
        assert_eq!(PhysAddr(0x1234).block_base(64), PhysAddr(0x1200));
    }

    #[test]
    fn block_addr_reconstructs_column() {
        let m = paper_mapping();
        let d = m.decode(PhysAddr(0x1234_5678));
        let a = m.block_addr(d.vault, d.row_key(), d.col);
        assert_eq!(m.decode(a).col, d.col);
        assert_eq!(a.0, PhysAddr(0x1234_5678).block_base(64).0);
    }

    fn paper_cube_map(cubes: u32, interleave_blocks: u32) -> CubeMap {
        CubeMap::new(paper_mapping(), cubes, interleave_blocks).unwrap()
    }

    #[test]
    fn single_cube_map_is_the_identity() {
        let cm = paper_cube_map(1, 16);
        for raw in [0u64, 0x40, 0x1234_5678, (4u64 << 30) - 64] {
            assert_eq!(cm.cube_of(PhysAddr(raw)), 0);
            assert_eq!(cm.local_addr(PhysAddr(raw)), PhysAddr(raw));
            assert_eq!(cm.global_addr(0, PhysAddr(raw)), PhysAddr(raw));
        }
        assert_eq!(cm.capacity_bytes(), paper_mapping().capacity_bytes());
        assert_eq!(cm.addr_bits(), paper_mapping().addr_bits());
    }

    #[test]
    fn consecutive_granules_rotate_cubes() {
        // 16-block granule on 64 B blocks = 1 KB stripes across the pool.
        let cm = paper_cube_map(4, 16);
        for g in 0..16u64 {
            assert_eq!(cm.cube_of(PhysAddr(g * 1024)), (g % 4) as u16);
        }
        // Within a granule the owner never changes.
        for b in 0..16u64 {
            assert_eq!(cm.cube_of(PhysAddr(3 * 1024 + b * 64)), 3);
        }
    }

    #[test]
    fn cube_splice_preserves_local_decode() {
        // The same cube-local address decodes identically no matter which
        // cube it is spliced into.
        let cm = paper_cube_map(8, 4);
        let local = PhysAddr(0x0BAD_CAFE & !63);
        let want = cm.mapping().decode(local);
        for cube in 0..8u16 {
            let global = cm.global_addr(cube, local);
            let (c, d) = cm.decode(global);
            assert_eq!(c, cube);
            assert_eq!(d, want);
            assert_eq!(cm.encode(cube, &d), global.block_base(64));
        }
    }

    #[test]
    fn pool_capacity_scales_with_cubes() {
        assert_eq!(paper_cube_map(4, 16).capacity_bytes(), 16u64 << 30);
        assert_eq!(paper_cube_map(4, 16).addr_bits(), 34);
    }

    #[test]
    fn bad_cube_map_parameters_rejected() {
        assert!(matches!(
            CubeMap::new(paper_mapping(), 3, 16),
            Err(ConfigError::NotPowerOfTwo {
                field: "topology.cubes",
                ..
            })
        ));
        assert!(matches!(
            CubeMap::new(paper_mapping(), 2, 0),
            Err(ConfigError::NotPowerOfTwo {
                field: "topology.interleave_blocks",
                ..
            })
        ));
        // Granule of 2^33 bytes > one cube's 2^32 byte space.
        assert!(CubeMap::new(paper_mapping(), 2, 1 << 27).is_err());
    }

    proptest! {
        #[test]
        fn decode_encode_roundtrip(raw in 0u64..(4u64 << 30), scheme in 0usize..3) {
            let m = AddressMapping::new(
                MappingScheme::ALL[scheme], 32, 16, 1, 8192, 1024, 64).unwrap();
            let d = m.decode(PhysAddr(raw));
            prop_assert_eq!(m.encode(&d), PhysAddr(raw));
        }

        #[test]
        fn decoded_fields_in_range(raw in any::<u64>()) {
            let m = AddressMapping::new(
                MappingScheme::RoRaBaVaCo, 32, 16, 1, 8192, 1024, 64).unwrap();
            let d = m.decode(PhysAddr(raw));
            prop_assert!(u32::from(d.vault) < 32);
            prop_assert!(u32::from(d.bank) < 16);
            prop_assert!(d.row < 8192);
            prop_assert!(u32::from(d.col) < 16);
            prop_assert!(u32::from(d.offset) < 64);
        }

        #[test]
        fn distinct_addresses_distinct_decodes(
            a in 0u64..(4u64 << 30), b in 0u64..(4u64 << 30)
        ) {
            prop_assume!(a != b);
            let m = paper_mapping();
            let (da, db) = (m.decode(PhysAddr(a)), m.decode(PhysAddr(b)));
            prop_assert_ne!((da.vault, da.bank, da.row, da.col, da.offset),
                            (db.vault, db.bank, db.row, db.col, db.offset));
        }

        /// The splice is bijective for every cube count × interleave
        /// granularity × mapping variant: stripping and re-splicing the
        /// cube id reproduces the global address exactly.
        #[test]
        fn cube_map_splice_roundtrip(
            raw in any::<u64>(),
            cube_pow in 0u32..4,   // 1, 2, 4, 8 cubes
            ileave_pow in 0u32..9, // 1..=256-block granules
            scheme in 0usize..3,
        ) {
            let m = AddressMapping::new(
                MappingScheme::ALL[scheme], 32, 16, 1, 8192, 1024, 64).unwrap();
            let cm = CubeMap::new(m, 1 << cube_pow, 1 << ileave_pow).unwrap();
            let addr = PhysAddr(raw & ((1u64 << cm.addr_bits()) - 1));
            let (cube, local) = (cm.cube_of(addr), cm.local_addr(addr));
            prop_assert!(u32::from(cube) < cm.cubes());
            prop_assert!(local.0 < cm.mapping().capacity_bytes());
            prop_assert_eq!(cm.global_addr(cube, local), addr);
        }

        /// Full decode through cube + mapping round-trips to the block
        /// base, mirroring `decode_encode_roundtrip` one layer up.
        #[test]
        fn cube_map_decode_encode_roundtrip(
            raw in any::<u64>(),
            cube_pow in 0u32..4,
            ileave_pow in 0u32..9,
            scheme in 0usize..3,
        ) {
            let m = AddressMapping::new(
                MappingScheme::ALL[scheme], 32, 16, 1, 8192, 1024, 64).unwrap();
            let cm = CubeMap::new(m, 1 << cube_pow, 1 << ileave_pow).unwrap();
            let addr = PhysAddr(raw & ((1u64 << cm.addr_bits()) - 1));
            let (cube, d) = cm.decode(addr);
            prop_assert_eq!(cm.encode(cube, &d), addr);
        }

        /// No aliasing: two distinct pool addresses never land on the
        /// same (cube, vault, bank, row, col, offset) target.
        #[test]
        fn cube_map_no_aliasing(
            a in any::<u64>(),
            b in any::<u64>(),
            cube_pow in 0u32..4,
            ileave_pow in 0u32..9,
        ) {
            let cm = CubeMap::new(paper_mapping(), 1 << cube_pow, 1 << ileave_pow).unwrap();
            let mask = (1u64 << cm.addr_bits()) - 1;
            let (a, b) = (PhysAddr(a & mask), PhysAddr(b & mask));
            prop_assume!(a != b);
            let (ca, da) = cm.decode(a);
            let (cb, db) = cm.decode(b);
            prop_assert_ne!(
                (ca, da.vault, da.bank, da.row, da.col, da.offset),
                (cb, db.vault, db.bank, db.row, db.col, db.offset));
        }
    }
}
