//! Physical addresses and the HMC address mapping.
//!
//! Table I of the paper specifies the mapping `RoRaBaVaCo`
//! (row : rank : bank : vault : column, from most- to least-significant
//! bits, with the 64-byte block offset below the column bits). Placing the
//! vault and column bits low interleaves consecutive blocks of a row across
//! vaults? No — in `RoRaBaVaCo` the *column* bits are lowest, so the 16
//! consecutive 64 B blocks of a 1 KB row sit in the same bank of the same
//! vault, and consecutive *rows* of the address space rotate across vaults
//! then banks. This is what gives CAMPS its row-granularity locality.
//!
//! Alternative schemes are provided for ablation studies.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical byte address in the HMC-backed physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The address of the 64-byte block containing this address.
    #[must_use]
    pub fn block_base(self, block_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 & !(block_bytes - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

/// Bit-field order used to decompose a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// `row : rank : bank : vault : column : offset` — the paper's mapping
    /// (Table I). Consecutive rows rotate across vaults, keeping each row's
    /// blocks together in one bank.
    RoRaBaVaCo,
    /// `row : rank : vault : bank : column : offset` — rotates consecutive
    /// rows across banks first; ablation alternative.
    RoRaVaBaCo,
    /// `vault : row : rank : bank : column : offset` — coarse vault
    /// partitioning (each vault owns a contiguous slice); ablation
    /// alternative that minimizes vault-level interleaving.
    VaRoBaCo,
}

impl MappingScheme {
    /// All supported schemes, for sweeps.
    pub const ALL: [MappingScheme; 3] = [Self::RoRaBaVaCo, Self::RoRaVaBaCo, Self::VaRoBaCo];
}

impl fmt::Display for MappingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::RoRaBaVaCo => "RoRaBaVaCo",
            Self::RoRaVaBaCo => "RoRaVaBaCo",
            Self::VaRoBaCo => "VaRoBaCo",
        };
        f.write_str(s)
    }
}

/// A fully decoded address: which vault, bank, row, and block-column a
/// physical address refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Vault index within the cube, `0..vaults`.
    pub vault: u16,
    /// Bank index within the vault, `0..banks_per_vault`.
    pub bank: u16,
    /// Row index within the bank.
    pub row: u32,
    /// 64 B block index within the row, `0..blocks_per_row`.
    pub col: u16,
    /// Byte offset within the block.
    pub offset: u16,
}

impl DecodedAddr {
    /// Key identifying the row this address falls in, unique within a vault.
    #[must_use]
    pub fn row_key(&self) -> RowKey {
        RowKey {
            bank: self.bank,
            row: self.row,
        }
    }
}

/// A (bank, row) pair — the granularity at which CAMPS prefetches and at
/// which the conflict/utilization tables operate. Unique within one vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowKey {
    /// Bank index within the vault.
    pub bank: u16,
    /// Row index within the bank.
    pub row: u32,
}

/// Address encoder/decoder for a fixed HMC geometry.
///
/// All geometry fields must be powers of two so the mapping is a pure
/// bit-slice permutation (as in real hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    scheme: MappingScheme,
    vaults: u32,
    banks_per_vault: u32,
    ranks: u32,
    rows_per_bank: u32,
    row_bytes: u32,
    block_bytes: u32,
    // Cached bit widths.
    offset_bits: u32,
    col_bits: u32,
    vault_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

impl AddressMapping {
    /// Builds a mapping for the given geometry.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if any field is zero or not a power of two,
    /// or if the row size is not a multiple of the block size.
    pub fn new(
        scheme: MappingScheme,
        vaults: u32,
        banks_per_vault: u32,
        ranks: u32,
        rows_per_bank: u32,
        row_bytes: u32,
        block_bytes: u32,
    ) -> Result<Self, ConfigError> {
        for (name, v) in [
            ("vaults", vaults),
            ("banks_per_vault", banks_per_vault),
            ("ranks", ranks),
            ("rows_per_bank", rows_per_bank),
            ("row_bytes", row_bytes),
            ("block_bytes", block_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    field: name,
                    value: v as u64,
                });
            }
        }
        if row_bytes < block_bytes {
            return Err(ConfigError::Invalid {
                field: "row_bytes",
                reason: "row must be at least one block".into(),
            });
        }
        let blocks_per_row = row_bytes / block_bytes;
        Ok(Self {
            scheme,
            vaults,
            banks_per_vault,
            ranks,
            rows_per_bank,
            row_bytes,
            block_bytes,
            offset_bits: block_bytes.trailing_zeros(),
            col_bits: blocks_per_row.trailing_zeros(),
            vault_bits: vaults.trailing_zeros(),
            bank_bits: banks_per_vault.trailing_zeros(),
            rank_bits: ranks.trailing_zeros(),
            row_bits: rows_per_bank.trailing_zeros(),
        })
    }

    /// Total cube capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.vaults)
            * u64::from(self.banks_per_vault)
            * u64::from(self.ranks)
            * u64::from(self.rows_per_bank)
            * u64::from(self.row_bytes)
    }

    /// Number of address bits consumed by the mapping.
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        self.offset_bits
            + self.col_bits
            + self.vault_bits
            + self.bank_bits
            + self.rank_bits
            + self.row_bits
    }

    /// Number of 64 B blocks in one row.
    #[must_use]
    pub fn blocks_per_row(&self) -> u32 {
        self.row_bytes / self.block_bytes
    }

    /// The configured mapping scheme.
    #[must_use]
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Number of vaults in the cube.
    #[must_use]
    pub fn vaults(&self) -> u32 {
        self.vaults
    }

    /// Number of banks per vault.
    #[must_use]
    pub fn banks_per_vault(&self) -> u32 {
        self.banks_per_vault
    }

    /// Number of rows per bank.
    #[must_use]
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Row size in bytes (the prefetch granularity).
    #[must_use]
    pub fn row_bytes(&self) -> u32 {
        self.row_bytes
    }

    /// Cache block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Decodes a physical address. Addresses beyond the capacity wrap
    /// (the top bits are ignored), mirroring how hardware decoders slice a
    /// fixed window of bits.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DecodedAddr {
        let mut a = addr.0;
        let offset = take(&mut a, self.offset_bits) as u16;
        let col = take(&mut a, self.col_bits) as u16;
        let (vault, bank, _rank, row);
        match self.scheme {
            MappingScheme::RoRaBaVaCo => {
                vault = take(&mut a, self.vault_bits) as u16;
                bank = take(&mut a, self.bank_bits) as u16;
                _rank = take(&mut a, self.rank_bits);
                row = take(&mut a, self.row_bits) as u32;
            }
            MappingScheme::RoRaVaBaCo => {
                bank = take(&mut a, self.bank_bits) as u16;
                vault = take(&mut a, self.vault_bits) as u16;
                _rank = take(&mut a, self.rank_bits);
                row = take(&mut a, self.row_bits) as u32;
            }
            MappingScheme::VaRoBaCo => {
                bank = take(&mut a, self.bank_bits) as u16;
                _rank = take(&mut a, self.rank_bits);
                row = take(&mut a, self.row_bits) as u32;
                vault = take(&mut a, self.vault_bits) as u16;
            }
        }
        DecodedAddr {
            vault,
            bank,
            row,
            col,
            offset,
        }
    }

    /// Re-encodes a decoded address into the physical address it came from.
    ///
    /// `decode` and `encode` are exact inverses for in-range addresses
    /// (property-tested below).
    #[must_use]
    pub fn encode(&self, d: &DecodedAddr) -> PhysAddr {
        let mut a: u64 = 0;
        let mut shift = 0u32;
        let mut put = |value: u64, bits: u32| {
            a |= value << shift;
            shift += bits;
        };
        put(u64::from(d.offset), self.offset_bits);
        put(u64::from(d.col), self.col_bits);
        match self.scheme {
            MappingScheme::RoRaBaVaCo => {
                put(u64::from(d.vault), self.vault_bits);
                put(u64::from(d.bank), self.bank_bits);
                put(0, self.rank_bits);
                put(u64::from(d.row), self.row_bits);
            }
            MappingScheme::RoRaVaBaCo => {
                put(u64::from(d.bank), self.bank_bits);
                put(u64::from(d.vault), self.vault_bits);
                put(0, self.rank_bits);
                put(u64::from(d.row), self.row_bits);
            }
            MappingScheme::VaRoBaCo => {
                put(u64::from(d.bank), self.bank_bits);
                put(0, self.rank_bits);
                put(u64::from(d.row), self.row_bits);
                put(u64::from(d.vault), self.vault_bits);
            }
        }
        PhysAddr(a)
    }

    /// The physical address of block `col` within the row `key` of vault
    /// `vault` — used when a prefetched row is filled into the buffer and
    /// its blocks need block addresses for cache fills.
    #[must_use]
    pub fn block_addr(&self, vault: u16, key: RowKey, col: u16) -> PhysAddr {
        self.encode(&DecodedAddr {
            vault,
            bank: key.bank,
            row: key.row,
            col,
            offset: 0,
        })
    }
}

/// Pops the low `bits` bits off `a`, returning them.
fn take(a: &mut u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    let v = *a & ((1u64 << bits) - 1);
    *a >>= bits;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_mapping() -> AddressMapping {
        // Table I: 32 vaults, 16 banks/vault, 1 KB rows, 64 B blocks, 4 GB.
        AddressMapping::new(MappingScheme::RoRaBaVaCo, 32, 16, 1, 8192, 1024, 64).unwrap()
    }

    #[test]
    fn paper_geometry_capacity_is_4gib() {
        let m = paper_mapping();
        assert_eq!(m.capacity_bytes(), 4 << 30);
        assert_eq!(m.addr_bits(), 32);
        assert_eq!(m.blocks_per_row(), 16);
    }

    #[test]
    fn zero_address_decodes_to_origin() {
        let d = paper_mapping().decode(PhysAddr(0));
        assert_eq!(
            d,
            DecodedAddr {
                vault: 0,
                bank: 0,
                row: 0,
                col: 0,
                offset: 0
            }
        );
    }

    #[test]
    fn consecutive_blocks_stay_in_one_row() {
        // RoRaBaVaCo: the 16 blocks of a 1 KB row share vault/bank/row.
        let m = paper_mapping();
        let base = m.decode(PhysAddr(0x4000));
        for blk in 0..16u64 {
            let d = m.decode(PhysAddr(0x4000 + blk * 64));
            assert_eq!((d.vault, d.bank, d.row), (base.vault, base.bank, base.row));
            assert_eq!(d.col, base.col + blk as u16);
        }
    }

    #[test]
    fn consecutive_rows_rotate_vaults_in_paper_scheme() {
        let m = paper_mapping();
        let a = m.decode(PhysAddr(0));
        let b = m.decode(PhysAddr(1024)); // next 1 KB row
        assert_eq!(a.vault + 1, b.vault);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn varo_scheme_keeps_vault_contiguous() {
        let m = AddressMapping::new(MappingScheme::VaRoBaCo, 32, 16, 1, 8192, 1024, 64).unwrap();
        let slice = m.capacity_bytes() / 32;
        for i in 0..8u64 {
            assert_eq!(m.decode(PhysAddr(i * 4096)).vault, 0);
            assert_eq!(m.decode(PhysAddr(slice + i * 4096)).vault, 1);
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let e = AddressMapping::new(MappingScheme::RoRaBaVaCo, 3, 16, 1, 8192, 1024, 64);
        assert!(matches!(
            e,
            Err(ConfigError::NotPowerOfTwo {
                field: "vaults",
                ..
            })
        ));
    }

    #[test]
    fn row_smaller_than_block_rejected() {
        let e = AddressMapping::new(MappingScheme::RoRaBaVaCo, 32, 16, 1, 8192, 32, 64);
        assert!(e.is_err());
    }

    #[test]
    fn block_base_masks_offset() {
        assert_eq!(PhysAddr(0x1234).block_base(64), PhysAddr(0x1200));
    }

    #[test]
    fn block_addr_reconstructs_column() {
        let m = paper_mapping();
        let d = m.decode(PhysAddr(0x1234_5678));
        let a = m.block_addr(d.vault, d.row_key(), d.col);
        assert_eq!(m.decode(a).col, d.col);
        assert_eq!(a.0, PhysAddr(0x1234_5678).block_base(64).0);
    }

    proptest! {
        #[test]
        fn decode_encode_roundtrip(raw in 0u64..(4u64 << 30), scheme in 0usize..3) {
            let m = AddressMapping::new(
                MappingScheme::ALL[scheme], 32, 16, 1, 8192, 1024, 64).unwrap();
            let d = m.decode(PhysAddr(raw));
            prop_assert_eq!(m.encode(&d), PhysAddr(raw));
        }

        #[test]
        fn decoded_fields_in_range(raw in any::<u64>()) {
            let m = AddressMapping::new(
                MappingScheme::RoRaBaVaCo, 32, 16, 1, 8192, 1024, 64).unwrap();
            let d = m.decode(PhysAddr(raw));
            prop_assert!(u32::from(d.vault) < 32);
            prop_assert!(u32::from(d.bank) < 16);
            prop_assert!(d.row < 8192);
            prop_assert!(u32::from(d.col) < 16);
            prop_assert!(u32::from(d.offset) < 64);
        }

        #[test]
        fn distinct_addresses_distinct_decodes(
            a in 0u64..(4u64 << 30), b in 0u64..(4u64 << 30)
        ) {
            prop_assume!(a != b);
            let m = paper_mapping();
            let (da, db) = (m.decode(PhysAddr(a)), m.decode(PhysAddr(b)));
            prop_assert_ne!((da.vault, da.bank, da.row, da.col, da.offset),
                            (db.vault, db.bank, db.row, db.col, db.offset));
        }
    }
}
