//! Full system configuration.
//!
//! [`SystemConfig::paper_default`] reproduces Table I of the paper:
//!
//! | Component | Parameter |
//! |---|---|
//! | Processor | 8 cores @ 3 GHz, 4-wide, out-of-order |
//! | L1 (D) | 32 KB private, 2-way, 2-cycle hit |
//! | L2 | 256 KB private, 4-way, 6-cycle hit |
//! | L3 | 16 MB shared, 16-way, 20-cycle hit, 64 B lines |
//! | HMC | 8 DRAM layers, 32 vaults, 2 banks/vault-layer, 1 KB row buffer |
//! | Vault ctl | DDR3-1600, R/W queues of 32, tRCD=tRP=tCL=11 |
//! | Links | 4 serial links, 16+16 lanes full duplex, 12.5 Gbps |
//! | PF buffer | 16 KB per vault, fully associative, 1 KB line, 22-cycle hit |
//! | Mapping | RoRaBaVaCo; FR-FCFS scheduling; open-page policy |

use crate::addr::{AddressMapping, CubeMap, MappingScheme};
use crate::clock::{ClockDomain, Cycle};
use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Core pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores (Table I: 8).
    pub cores: u32,
    /// Core clock in Hz (Table I: 3 GHz).
    pub freq_hz: u64,
    /// Instructions issued into the ROB per cycle (Table I: 4).
    pub issue_width: u32,
    /// Instructions retired from the ROB head per cycle.
    pub retire_width: u32,
    /// Reorder-buffer capacity; bounds memory-level parallelism.
    pub rob_entries: u32,
    /// Store-buffer capacity; stores retire into it without stalling until
    /// it fills.
    pub store_buffer_entries: u32,
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u32,
    /// Lookup-to-data latency in CPU cycles.
    pub hit_latency: Cycle,
    /// Miss-status holding registers — bounds outstanding misses.
    pub mshrs: u32,
}

impl CacheLevelConfig {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * u64::from(self.line_bytes))
    }
}

/// Physical organization of the cube (drives the address mapping).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HmcGeometry {
    /// Number of vaults (Table I: 32).
    pub vaults: u32,
    /// Banks per vault (Table I: 2 banks/vault-layer × 8 layers = 16).
    pub banks_per_vault: u32,
    /// Ranks (HMC has none; kept at 1 for the `Ra` field of the mapping).
    pub ranks: u32,
    /// Rows per bank (8192 → 4 GiB cube with the other Table I values).
    pub rows_per_bank: u32,
    /// Row-buffer size in bytes (Table I: 1 KB) — the prefetch granularity.
    pub row_bytes: u32,
    /// Cache-block size in bytes (Table I: 64 B).
    pub block_bytes: u32,
    /// Address interleaving scheme (Table I: RoRaBaVaCo).
    pub mapping: MappingScheme,
}

impl HmcGeometry {
    /// Builds the address mapping for this geometry.
    ///
    /// # Errors
    /// Propagates geometry validation failures.
    pub fn address_mapping(&self) -> Result<AddressMapping, ConfigError> {
        AddressMapping::new(
            self.mapping,
            self.vaults,
            self.banks_per_vault,
            self.ranks,
            self.rows_per_bank,
            self.row_bytes,
            self.block_bytes,
        )
    }

    /// Blocks per row (16 for 1 KB rows of 64 B blocks).
    #[must_use]
    pub fn blocks_per_row(&self) -> u32 {
        self.row_bytes / self.block_bytes
    }
}

/// DRAM timing parameters, in *memory-bus cycles* (DDR3-1600 → 800 MHz).
///
/// Table I pins tRCD = tRP = tCL = 11; the remaining constraints use
/// standard DDR3-1600 values (documented per field) so the bank state
/// machine is complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTimingConfig {
    /// Memory command-clock frequency in Hz (DDR3-1600 → 800 MHz).
    pub freq_hz: u64,
    /// ACT → RD/WR delay (Table I: 11).
    pub t_rcd: u64,
    /// PRE → ACT delay (Table I: 11).
    pub t_rp: u64,
    /// RD → first data (CAS latency; Table I: 11).
    pub t_cl: u64,
    /// ACT → PRE minimum row-open time (DDR3-1600: 28).
    pub t_ras: u64,
    /// ACT → ACT same bank (DDR3-1600: 39 ≈ tRAS + tRP).
    pub t_rc: u64,
    /// End of write burst → PRE (write recovery; DDR3-1600: 12).
    pub t_wr: u64,
    /// RD → PRE (read-to-precharge; DDR3-1600: 6).
    pub t_rtp: u64,
    /// Burst-to-burst gap on the data TSVs (DDR3-1600: 4).
    pub t_ccd: u64,
    /// ACT → ACT different banks, same vault (DDR3-1600: 5).
    pub t_rrd: u64,
    /// Rolling window for at most four ACTs per vault (DDR3-1600: 24).
    pub t_faw: u64,
    /// Data-burst length for one 64 B block over the vault TSVs (4).
    pub t_burst: u64,
    /// Write latency (WL; DDR3-1600: 8).
    pub t_wl: u64,
    /// Total TSV bus time to stream a whole 1 KB row between a bank and
    /// the prefetch buffer, in memory cycles. The vault controller grants
    /// it one burst-slot at a time (interruptible by demand bursts). 40
    /// cycles = 10 burst slots for 16 blocks: the row-wide internal path
    /// runs at 1.6× the external burst rate — the "huge internal
    /// bandwidth" of §2.4, calibrated so the evaluation's BASE scheme
    /// lands where the paper puts it (see EXPERIMENTS.md).
    pub t_row_transfer: u64,
    /// All-bank refresh interval per vault (DDR3: 7.8 µs → 6240 cycles).
    /// §2.1: "The vault controller manages the lower level DRAM commands
    /// like address mapping, refreshing and memory access scheduling."
    /// Zero disables refresh (ablation).
    pub t_refi: u64,
    /// All-bank refresh duration (DDR3 4 Gb: ~260 ns → 208 cycles).
    pub t_rfc: u64,
}

impl DramTimingConfig {
    /// Converter from memory cycles into CPU cycles for a given core clock.
    #[must_use]
    pub fn domain(&self, cpu_hz: u64) -> ClockDomain {
        ClockDomain::new(cpu_hz, self.freq_hz)
    }
}

/// Memory-access scheduling algorithm used by each vault controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-ready, first-come-first-serve (Table I; Rixner et al. [31]).
    FrFcfs,
    /// Strict arrival order — ablation baseline.
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep rows open after access (Table I).
    Open,
    /// Precharge immediately after each access — ablation alternative.
    Closed,
}

/// Per-vault controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VaultConfig {
    /// Read-queue capacity (Table I: 32).
    pub read_queue: u32,
    /// Write-queue capacity (Table I: 32).
    pub write_queue: u32,
    /// Scheduling algorithm (Table I: FR-FCFS).
    pub scheduler: SchedulerKind,
    /// Page policy (Table I: open).
    pub page_policy: PagePolicy,
    /// Write drain starts when the write queue reaches this occupancy.
    pub write_drain_high: u32,
    /// Write drain stops when occupancy falls back to this level.
    pub write_drain_low: u32,
}

/// Serial-link and crossbar parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Number of full-duplex serial links (Table I: 4).
    pub links: u32,
    /// Lanes per direction per link (Table I: 16).
    pub lanes: u32,
    /// Per-lane line rate in Gbps (Table I: 12.5).
    pub lane_gbps: f64,
    /// FLIT size in bytes (HMC 2.1 protocol: 16).
    pub flit_bytes: u32,
    /// Fixed one-way latency (SerDes + flight + link-layer) in CPU cycles.
    pub propagation_cycles: Cycle,
    /// Crossbar traversal latency in CPU cycles.
    pub xbar_cycles: Cycle,
    /// Link-layer flow-control tokens per link (max FLITs in flight).
    pub tokens: u32,
    /// Power management (Ahn et al. [13]): a link direction with no
    /// traffic for this many CPU cycles drops into a low-power state and
    /// pays [`LinkConfig::wake_cycles`] on the next packet. 0 disables.
    #[serde(default)]
    pub sleep_after_idle: Cycle,
    /// Cycles to re-train a sleeping link before it can serialize again.
    #[serde(default)]
    pub wake_cycles: Cycle,
}

impl LinkConfig {
    /// FLITs needed for a request/response carrying `data_bytes` of payload
    /// (one header+tail FLIT plus the data).
    #[must_use]
    pub fn flits_for(&self, data_bytes: u32) -> u32 {
        1 + data_bytes.div_ceil(self.flit_bytes)
    }
}

/// Prefetch-engine parameters shared by all schemes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchBufferConfig {
    /// Row entries per vault (Table I: 16 KB / 1 KB lines = 16, fully
    /// associative).
    pub entries: u32,
    /// Buffer hit latency in CPU cycles (Table I: 22).
    pub hit_latency: Cycle,
    /// Row-utilization threshold that triggers a prefetch in CAMPS (§3.1:
    /// "four in our experiment").
    pub rut_threshold: u32,
    /// Conflict-table entries per vault (§3.1: 32, fully associative, LRU).
    pub ct_entries: u32,
    /// Minimum accumulated CT utilization evidence (past residencies plus
    /// the reactivating access) before a CT hit fires the prefetch. 2
    /// reproduces the paper's letter (any re-activation fires); the CT's
    /// 20-bit entries carry utilization counts, which this threshold
    /// consults.
    pub ct_evidence: u32,
    /// MMD usefulness-feedback epoch, in prefetches issued.
    pub mmd_epoch: u32,
    /// Aggressively push prefetched rows to the shared LLC over the serial
    /// links (the design the paper argues AGAINST in §2.4: it burns
    /// response-link bandwidth and pollutes the cache). Off by default;
    /// the `ablate_push_llc` bench turns it on to test the claim.
    #[serde(default)]
    pub push_to_llc: bool,
}

/// Per-operation energy constants, in nanojoules, plus static power.
///
/// Absolute values are modeled constants (the paper reports only energy
/// *normalized to BASE*, which depends on operation counts); defaults are in
/// the range of published DDR3/HMC figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// One activate + precharge pair of a 1 KB row.
    pub act_pre_nj: f64,
    /// One 64 B read burst (array + TSV).
    pub rd_burst_nj: f64,
    /// One 64 B write burst.
    pub wr_burst_nj: f64,
    /// Streaming a whole row between bank and prefetch buffer.
    pub row_transfer_nj: f64,
    /// One prefetch-buffer (SRAM) access.
    pub buffer_access_nj: f64,
    /// One FLIT across a serial link (SerDes energy dominates).
    pub link_flit_nj: f64,
    /// One all-bank refresh of a vault (16 banks × all rows batch).
    pub refresh_nj: f64,
    /// Static background power per vault, in milliwatts.
    pub background_mw_per_vault: f64,
}

/// A conservative core-side next-line prefetcher ([13]'s two-level
/// prefetching companion: a core-side prefetcher working *with* the
/// memory-side one). On an L3 demand miss to block `B`, also fetch
/// `B + degree` blocks into the shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSidePrefetchConfig {
    /// Enable the core-side next-line prefetcher.
    pub enable: bool,
    /// Sequential blocks fetched per demand miss (1 = next line).
    pub degree: u32,
}

impl Default for CoreSidePrefetchConfig {
    fn default() -> Self {
        Self {
            enable: false,
            degree: 1,
        }
    }
}

/// Per-row activation tracking and TRR/PARA-style RowHammer mitigation
/// inside each vault controller. Tracking is always on (it is pure
/// observation — counters only, no timing effect); the mitigation knob
/// is **off by default** so paper results are untouched. One all-bank
/// refresh happens every `tREFI` and refreshes *every* row in this
/// model, so `tREFI` is the effective activation window (tREFW) the
/// per-row counters are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowGuardConfig {
    /// Inject a TRR-style neighbor refresh (stealing bank time) whenever
    /// a row crosses `threshold` activations inside one refresh window.
    pub enable_mitigation: bool,
    /// In-window activation count that triggers mitigation. Must be
    /// nonzero when mitigation is enabled. The default sits far above
    /// anything a benign workload reaches within one ~23 k-cycle window
    /// (a bank can fit at most ~tREFI/tRC ≈ 160 activations) but well
    /// inside an aggressor stream's reach.
    pub threshold: u32,
}

impl Default for RowGuardConfig {
    fn default() -> Self {
        Self {
            enable_mitigation: false,
            threshold: 64,
        }
    }
}

/// How the cubes of a multi-cube pool are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TopologyKind {
    /// Cubes daisy-chained off the host: cube 0 is host-attached, cube
    /// `i` sits `i` pass-through hops away (the HMC spec's chaining
    /// story).
    #[default]
    Chain,
    /// Cube 0 is host-attached and doubles as the hub: every other cube
    /// hangs one hop off it over a dedicated link pair.
    Star,
}

impl TopologyKind {
    /// Stable name used in CLI parsing and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Chain => "chain",
            TopologyKind::Star => "star",
        }
    }
}

impl std::str::FromStr for TopologyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "chain" => Ok(Self::Chain),
            "star" => Ok(Self::Star),
            other => Err(format!("unknown topology `{other}` (chain|star)")),
        }
    }
}

/// Multi-cube pool parameters. The default (`cubes = 1`) is the paper's
/// single-cube machine: no cube-id bits are spliced into the address,
/// no interconnect exists, and the engine is bit-identical to the
/// pre-topology code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of cubes in the pool (power of two; 1 = single-cube).
    pub cubes: u32,
    /// Interconnect shape (ignored with one cube — there are no hops).
    pub kind: TopologyKind,
    /// Extra one-way propagation latency per inter-cube hop, in CPU
    /// cycles (SerDes retime + pass-through switching).
    pub hop_cycles: Cycle,
    /// Address-interleave granularity across cubes, in blocks (power of
    /// two). 1 = consecutive blocks round-robin across cubes; raise it
    /// to keep whole rows cube-local (`row_bytes / block_bytes` keeps a
    /// row's blocks on one cube, which is what memory-side row
    /// prefetching wants).
    pub interleave_blocks: u32,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            cubes: 1,
            kind: TopologyKind::Chain,
            hop_cycles: 10,
            interleave_blocks: 16,
        }
    }
}

impl TopologyConfig {
    /// Builds the cube-interleaving address stage for this pool over the
    /// per-cube geometry.
    ///
    /// # Errors
    /// Propagates geometry/topology validation failures.
    pub fn cube_map(&self, hmc: &HmcGeometry) -> Result<CubeMap, ConfigError> {
        CubeMap::new(hmc.address_mapping()?, self.cubes, self.interleave_blocks)
    }
}

/// Runtime integrity checking: the request auditor and the forward-progress
/// watchdog. Both are *checkers*, not model features — they never change
/// simulated behavior, only whether a broken run fails loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityConfig {
    /// Enable the request-lifetime auditor in release builds (debug builds
    /// audit unconditionally; the auditor is cheap but not free).
    pub audit: bool,
    /// Forward-progress watchdog: abort with a diagnostic dump if no core
    /// retires an instruction and no memory response is delivered for this
    /// many CPU cycles while work is pending. 0 disables the watchdog.
    pub watchdog_cycles: Cycle,
    /// Periodic checkpoint interval in CPU cycles for recovery-enabled
    /// runs. `None` disables periodic checkpoints; `Some(0)` is rejected
    /// by validation ([`ConfigError::ZeroCheckpointInterval`]).
    #[serde(default)]
    pub checkpoint_every: Option<Cycle>,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        Self {
            audit: false,
            // Far above any legitimate stall (refresh is ~10^3 cycles,
            // a full write drain ~10^4): only a wedged machine waits this
            // long with zero retirements and zero responses.
            watchdog_cycles: 200_000,
            checkpoint_every: None,
        }
    }
}

/// A deterministic fault-injection schedule. All fields default to "off";
/// each activated fault exists to prove an integrity check fires (the
/// watchdog for starvation faults, the auditor for conservation faults,
/// typed trace errors for corruption faults). Faults are injected at the
/// same model boundaries real bugs would corrupt, so a passing
/// fault-injection test certifies the corresponding detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Drop every Nth request packet at crossbar delivery instead of
    /// handing it to its vault (0 = never). A dropped demand read wedges
    /// its MSHR forever — the watchdog must catch it.
    #[serde(default)]
    pub drop_request_every: u64,
    /// Deliver every Nth vault response to the host twice (0 = never).
    /// The auditor must flag the second arrival as a duplicate completion.
    #[serde(default)]
    pub duplicate_response_every: u64,
    /// Index of a vault to stall (ignored unless `stall_vault_from > 0`).
    #[serde(default)]
    pub stall_vault: u32,
    /// First cycle at which `stall_vault` stops being ticked — its queues
    /// fill and its requests never complete (0 = never stall).
    #[serde(default)]
    pub stall_vault_from: Cycle,
    /// Truncate a serialized trace image to this many bytes before
    /// decoding (0 = leave intact). Applied by
    /// [`FaultPlan::mangle_trace_bytes`].
    #[serde(default)]
    pub trace_truncate_to: u64,
    /// Overwrite the trace magic with garbage before decoding.
    #[serde(default)]
    pub trace_corrupt_magic: bool,
}

impl FaultPlan {
    /// True when any fault is scheduled.
    #[must_use]
    pub fn any_active(&self) -> bool {
        *self != Self::default()
    }

    /// Applies the trace-corruption faults to a serialized trace image:
    /// truncation first, then magic corruption. With both trace faults
    /// off this is the identity.
    #[must_use]
    pub fn mangle_trace_bytes(&self, mut bytes: Vec<u8>) -> Vec<u8> {
        if self.trace_truncate_to > 0 {
            bytes.truncate(usize::try_from(self.trace_truncate_to).unwrap_or(usize::MAX));
        }
        if self.trace_corrupt_magic {
            for (i, b) in bytes.iter_mut().take(8).enumerate() {
                *b = 0xA5 ^ (i as u8);
            }
        }
        bytes
    }
}

/// The complete simulated system. Construct via [`SystemConfig::paper_default`]
/// (Table I) or [`SystemConfig::small`] (scaled-down, for fast tests), then
/// customize fields and call [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core pipeline parameters.
    pub cpu: CpuConfig,
    /// Private L1 data cache.
    pub l1: CacheLevelConfig,
    /// Private L2.
    pub l2: CacheLevelConfig,
    /// Shared L3.
    pub l3: CacheLevelConfig,
    /// Cube geometry.
    pub hmc: HmcGeometry,
    /// DRAM timing.
    pub dram: DramTimingConfig,
    /// Vault-controller parameters.
    pub vault: VaultConfig,
    /// Serial links and crossbar.
    pub link: LinkConfig,
    /// Multi-cube pool shape (defaults to the single-cube machine).
    #[serde(default)]
    pub topology: TopologyConfig,
    /// Prefetch engine.
    pub prefetch: PrefetchBufferConfig,
    /// Optional core-side next-line prefetcher (two-level prefetching).
    #[serde(default)]
    pub core_prefetch: CoreSidePrefetchConfig,
    /// Per-row activation tracking + optional RowHammer mitigation.
    #[serde(default)]
    pub rowguard: RowGuardConfig,
    /// Energy model constants.
    pub energy: EnergyConfig,
    /// Request auditing and watchdog thresholds.
    #[serde(default)]
    pub integrity: IntegrityConfig,
    /// Fault-injection schedule (all-off by default).
    #[serde(default)]
    pub faults: FaultPlan,
}

impl SystemConfig {
    /// The configuration of Table I of the paper.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cpu: CpuConfig {
                cores: 8,
                freq_hz: 3_000_000_000,
                issue_width: 4,
                retire_width: 4,
                rob_entries: 192,
                store_buffer_entries: 32,
            },
            l1: CacheLevelConfig {
                size_bytes: 32 << 10,
                ways: 2,
                line_bytes: 64,
                hit_latency: 2,
                mshrs: 8,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 << 10,
                ways: 4,
                line_bytes: 64,
                hit_latency: 6,
                mshrs: 16,
            },
            l3: CacheLevelConfig {
                size_bytes: 16 << 20,
                ways: 16,
                line_bytes: 64,
                hit_latency: 20,
                mshrs: 64,
            },
            hmc: HmcGeometry {
                vaults: 32,
                banks_per_vault: 16,
                ranks: 1,
                rows_per_bank: 8192,
                row_bytes: 1024,
                block_bytes: 64,
                mapping: MappingScheme::RoRaBaVaCo,
            },
            dram: DramTimingConfig {
                freq_hz: 800_000_000,
                t_rcd: 11,
                t_rp: 11,
                t_cl: 11,
                t_ras: 28,
                t_rc: 39,
                t_wr: 12,
                t_rtp: 6,
                t_ccd: 4,
                t_rrd: 5,
                t_faw: 24,
                t_burst: 4,
                t_wl: 8,
                t_row_transfer: 40,
                t_refi: 6240,
                t_rfc: 208,
            },
            vault: VaultConfig {
                read_queue: 32,
                write_queue: 32,
                scheduler: SchedulerKind::FrFcfs,
                page_policy: PagePolicy::Open,
                write_drain_high: 24,
                write_drain_low: 8,
            },
            link: LinkConfig {
                links: 4,
                lanes: 16,
                lane_gbps: 12.5,
                flit_bytes: 16,
                propagation_cycles: 10,
                xbar_cycles: 3,
                tokens: 64,
                sleep_after_idle: 0,
                wake_cycles: 0,
            },
            topology: TopologyConfig::default(),
            core_prefetch: CoreSidePrefetchConfig::default(),
            rowguard: RowGuardConfig::default(),
            prefetch: PrefetchBufferConfig {
                entries: 16,
                hit_latency: 22,
                rut_threshold: 4,
                ct_entries: 32,
                ct_evidence: 3,
                mmd_epoch: 32,
                push_to_llc: false,
            },
            energy: EnergyConfig {
                act_pre_nj: 2.0,
                rd_burst_nj: 1.0,
                wr_burst_nj: 1.1,
                row_transfer_nj: 1.5,
                buffer_access_nj: 0.1,
                link_flit_nj: 0.5,
                refresh_nj: 30.0,
                background_mw_per_vault: 80.0,
            },
            integrity: IntegrityConfig::default(),
            faults: FaultPlan::default(),
        }
    }

    /// A scaled-down system (4 vaults, 8 banks, 256 rows, 2 cores, small
    /// caches) that keeps every mechanism active while making unit and
    /// integration tests fast. Timing parameters are unchanged.
    #[must_use]
    pub fn small() -> Self {
        let mut c = Self::paper_default();
        c.cpu.cores = 2;
        c.l1.size_bytes = 4 << 10;
        c.l2.size_bytes = 16 << 10;
        c.l3.size_bytes = 128 << 10;
        c.l3.ways = 8;
        c.hmc.vaults = 4;
        c.hmc.banks_per_vault = 8;
        c.hmc.rows_per_bank = 256;
        c.prefetch.entries = 8;
        c.prefetch.ct_entries = 16;
        c
    }

    /// The cube-interleaving address stage for this machine (identity
    /// splice with one cube).
    ///
    /// # Errors
    /// Propagates geometry/topology validation failures.
    pub fn cube_map(&self) -> Result<CubeMap, ConfigError> {
        self.topology.cube_map(&self.hmc)
    }

    /// Clock-domain converter for the DRAM command clock.
    #[must_use]
    pub fn dram_domain(&self) -> ClockDomain {
        self.dram.domain(self.cpu.freq_hz)
    }

    /// Worst-case latency of a single legitimate DRAM access in CPU
    /// cycles: a row-buffer conflict (precharge + activate + CAS + burst)
    /// that additionally arrives just as an all-bank refresh starts. Any
    /// watchdog window below this would flag a healthy machine as wedged.
    #[must_use]
    pub fn worst_case_access_cycles(&self) -> Cycle {
        let d = &self.dram;
        let dram_cycles = d.t_rfc + d.t_rp + d.t_rcd + d.t_cl + d.t_burst;
        self.dram_domain().to_cpu_cycles(dram_cycles)
    }

    /// Checks structural invariants across the whole configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cpu.cores == 0 {
            return Err(ConfigError::Invalid {
                field: "cpu.cores",
                reason: "zero".into(),
            });
        }
        if self.cpu.issue_width == 0 || self.cpu.retire_width == 0 {
            return Err(ConfigError::Invalid {
                field: "cpu.issue_width",
                reason: "issue/retire width must be nonzero".into(),
            });
        }
        if self.cpu.rob_entries == 0 {
            return Err(ConfigError::Invalid {
                field: "cpu.rob_entries",
                reason: "zero".into(),
            });
        }
        self.hmc.address_mapping()?;
        self.topology.cube_map(&self.hmc)?;
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2), ("l3", &self.l3)] {
            if c.line_bytes != self.hmc.block_bytes {
                return Err(ConfigError::Invalid {
                    field: name,
                    reason: format!(
                        "line size {} must equal HMC block size {}",
                        c.line_bytes, self.hmc.block_bytes
                    ),
                });
            }
            if c.ways == 0 || c.sets() == 0 || !c.sets().is_power_of_two() {
                return Err(ConfigError::Invalid {
                    field: name,
                    reason: "sets must be a nonzero power of two".into(),
                });
            }
            if c.mshrs == 0 {
                return Err(ConfigError::Invalid {
                    field: name,
                    reason: "mshrs zero".into(),
                });
            }
        }
        if self.dram.t_ras + self.dram.t_rp > self.dram.t_rc {
            return Err(ConfigError::Invalid {
                field: "dram.t_rc",
                reason: "tRC must cover tRAS + tRP".into(),
            });
        }
        if self.vault.read_queue == 0 || self.vault.write_queue == 0 {
            return Err(ConfigError::Invalid {
                field: "vault.read_queue",
                reason: "queues must be nonzero".into(),
            });
        }
        if self.vault.write_drain_low >= self.vault.write_drain_high
            || self.vault.write_drain_high > self.vault.write_queue
        {
            return Err(ConfigError::Invalid {
                field: "vault.write_drain_high",
                reason: "need low < high <= write_queue".into(),
            });
        }
        if self.link.links == 0 || self.link.lanes == 0 || self.link.lane_gbps <= 0.0 {
            return Err(ConfigError::Invalid {
                field: "link",
                reason: "links need lanes and bandwidth".into(),
            });
        }
        if self.link.tokens == 0 {
            return Err(ConfigError::Invalid {
                field: "link.tokens",
                reason: "flow control needs at least one token".into(),
            });
        }
        if self.prefetch.entries == 0 {
            return Err(ConfigError::Invalid {
                field: "prefetch.entries",
                reason: "prefetch buffer must hold at least one row".into(),
            });
        }
        if !self.prefetch.entries.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "prefetch.entries",
                value: u64::from(self.prefetch.entries),
            });
        }
        if self.prefetch.rut_threshold == 0 {
            return Err(ConfigError::Invalid {
                field: "prefetch.rut_threshold",
                reason: "threshold must be at least 1".into(),
            });
        }
        if self.integrity.watchdog_cycles > 0 {
            let floor = self.worst_case_access_cycles();
            if self.integrity.watchdog_cycles < floor {
                return Err(ConfigError::WatchdogTooShort {
                    window: self.integrity.watchdog_cycles,
                    floor,
                });
            }
        }
        if self.rowguard.enable_mitigation && self.rowguard.threshold == 0 {
            return Err(ConfigError::Invalid {
                field: "rowguard.threshold",
                reason: "mitigation needs a nonzero activation threshold".into(),
            });
        }
        if self.integrity.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        if self.faults.stall_vault_from > 0 && self.faults.stall_vault >= self.hmc.vaults {
            return Err(ConfigError::Invalid {
                field: "faults.stall_vault",
                reason: format!(
                    "vault {} out of range (cube has {})",
                    self.faults.stall_vault, self.hmc.vaults
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        SystemConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn small_is_valid() {
        SystemConfig::small().validate().unwrap();
    }

    #[test]
    fn topology_defaults_to_one_chained_cube() {
        let t = TopologyConfig::default();
        assert_eq!(t.cubes, 1);
        assert_eq!(t.kind, TopologyKind::Chain);
        assert_eq!(t.kind.name(), "chain");
        let cm = SystemConfig::paper_default().cube_map().unwrap();
        assert_eq!(cm.cubes(), 1);
    }

    #[test]
    fn pre_topology_config_json_still_deserializes() {
        // Configs serialized before the topology field existed must load
        // with the single-cube default.
        use serde::value::Value;
        use serde::{Deserialize as _, Serialize as _};
        let mut v = SystemConfig::paper_default().to_value();
        if let Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "topology");
        }
        let cfg = SystemConfig::from_value(&v).unwrap();
        assert_eq!(cfg.topology, TopologyConfig::default());
        cfg.validate().unwrap();
    }

    #[test]
    fn topology_round_trips_through_json() {
        let mut cfg = SystemConfig::paper_default();
        cfg.topology.cubes = 4;
        cfg.topology.kind = TopologyKind::Star;
        cfg.validate().unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.topology, cfg.topology);
    }

    #[test]
    fn non_power_of_two_cube_count_rejected() {
        let mut cfg = SystemConfig::paper_default();
        cfg.topology.cubes = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn topology_kind_parses() {
        assert_eq!("chain".parse::<TopologyKind>(), Ok(TopologyKind::Chain));
        assert_eq!("star".parse::<TopologyKind>(), Ok(TopologyKind::Star));
        assert!("ring".parse::<TopologyKind>().is_err());
    }

    #[test]
    fn paper_default_matches_table1() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.cpu.cores, 8);
        assert_eq!(c.cpu.issue_width, 4);
        assert_eq!(c.l1.size_bytes, 32 << 10);
        assert_eq!(c.l1.ways, 2);
        assert_eq!(c.l1.hit_latency, 2);
        assert_eq!(c.l2.size_bytes, 256 << 10);
        assert_eq!(c.l2.hit_latency, 6);
        assert_eq!(c.l3.size_bytes, 16 << 20);
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.l3.hit_latency, 20);
        assert_eq!(c.hmc.vaults, 32);
        assert_eq!(c.hmc.banks_per_vault, 16);
        assert_eq!(c.hmc.row_bytes, 1024);
        assert_eq!(c.dram.t_rcd, 11);
        assert_eq!(c.dram.t_rp, 11);
        assert_eq!(c.dram.t_cl, 11);
        assert_eq!(c.vault.read_queue, 32);
        assert_eq!(c.link.links, 4);
        assert_eq!(c.link.lanes, 16);
        assert_eq!(c.prefetch.entries, 16); // 16 KB / 1 KB lines
        assert_eq!(c.prefetch.hit_latency, 22);
        assert_eq!(c.prefetch.rut_threshold, 4);
        assert_eq!(c.prefetch.ct_entries, 32);
        assert_eq!(c.vault.scheduler, SchedulerKind::FrFcfs);
        assert_eq!(c.vault.page_policy, PagePolicy::Open);
    }

    #[test]
    fn l3_sets_power_of_two() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.l3.sets(), 16384);
        assert_eq!(c.l1.sets(), 256);
    }

    #[test]
    fn mismatched_line_size_rejected() {
        let mut c = SystemConfig::paper_default();
        c.l1.line_bytes = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_tras_trc_rejected() {
        let mut c = SystemConfig::paper_default();
        c.dram.t_rc = 10;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_drain_watermarks_rejected() {
        let mut c = SystemConfig::paper_default();
        c.vault.write_drain_low = c.vault.write_drain_high;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::paper_default();
        c.vault.write_drain_high = c.vault.write_queue + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_prefetch_entries_rejected() {
        let mut c = SystemConfig::paper_default();
        c.prefetch.entries = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_power_of_two_prefetch_entries_rejected() {
        let mut c = SystemConfig::paper_default();
        c.prefetch.entries = 12;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotPowerOfTwo {
                field: "prefetch.entries",
                value: 12,
            })
        ));
        c.prefetch.entries = 16;
        c.validate().unwrap();
    }

    #[test]
    fn watchdog_below_worst_case_access_rejected() {
        let mut c = SystemConfig::paper_default();
        let floor = c.worst_case_access_cycles();
        assert!(floor > 0);
        c.integrity.watchdog_cycles = floor - 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::WatchdogTooShort { window, floor: f })
                if window == floor - 1 && f == floor
        ));
        // Exactly the floor, or disabled entirely, is legal.
        c.integrity.watchdog_cycles = floor;
        c.validate().unwrap();
        c.integrity.watchdog_cycles = 0;
        c.validate().unwrap();
    }

    #[test]
    fn zero_checkpoint_interval_rejected() {
        let mut c = SystemConfig::paper_default();
        c.integrity.checkpoint_every = Some(0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ZeroCheckpointInterval)
        ));
        c.integrity.checkpoint_every = Some(100_000);
        c.validate().unwrap();
        c.integrity.checkpoint_every = None;
        c.validate().unwrap();
    }

    #[test]
    fn flit_count_for_read_response() {
        let c = SystemConfig::paper_default();
        // 64 B data + 1 header/tail FLIT = 5 FLITs.
        assert_eq!(c.link.flits_for(64), 5);
        // A bare read request is a single FLIT.
        assert_eq!(c.link.flits_for(0), 1);
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = SystemConfig::paper_default();
        let s = serde_json::to_string(&c).unwrap();
        let d: SystemConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn default_fault_plan_is_inert_and_identity_on_traces() {
        let plan = FaultPlan::default();
        assert!(!plan.any_active());
        let bytes = vec![1u8, 2, 3, 4];
        assert_eq!(plan.mangle_trace_bytes(bytes.clone()), bytes);
    }

    #[test]
    fn fault_plan_truncates_then_corrupts_magic() {
        let plan = FaultPlan {
            trace_truncate_to: 3,
            trace_corrupt_magic: true,
            ..FaultPlan::default()
        };
        assert!(plan.any_active());
        let out = plan.mangle_trace_bytes(vec![b'C'; 16]);
        assert_eq!(out.len(), 3);
        assert_ne!(&out[..3], b"CCC");
    }

    #[test]
    fn stalling_a_nonexistent_vault_is_rejected() {
        let mut c = SystemConfig::small();
        c.faults.stall_vault = c.hmc.vaults;
        c.faults.stall_vault_from = 1;
        assert!(c.validate().is_err());
        c.faults.stall_vault_from = 0; // inactive plan: index not checked
        c.validate().unwrap();
    }

    #[test]
    fn rowguard_defaults_to_observation_only() {
        let r = RowGuardConfig::default();
        assert!(!r.enable_mitigation);
        assert!(r.threshold > 0);
    }

    #[test]
    fn enabled_mitigation_needs_nonzero_threshold() {
        let mut c = SystemConfig::paper_default();
        c.rowguard.threshold = 0;
        // Observation-only: a zero threshold is inert and legal.
        c.validate().unwrap();
        c.rowguard.enable_mitigation = true;
        assert!(c.validate().is_err());
        c.rowguard.threshold = 32;
        c.validate().unwrap();
    }

    #[test]
    fn integrity_defaults_watchdog_on_audit_off() {
        let i = IntegrityConfig::default();
        assert!(!i.audit);
        assert!(i.watchdog_cycles > 0);
    }

    #[test]
    fn dram_domain_ratio() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.dram_domain().ratio(), (15, 4));
    }
}
