//! Checkpoint/restore vocabulary: the [`Snapshot`] trait, the on-disk
//! manifest, and the checksum/versioning helpers shared by every stateful
//! component.
//!
//! Serialization is value-based (the workspace's serde subset): a
//! component lowers its mutable state to a [`Value`] tree and rebuilds
//! itself from one. Restore never *constructs* a component — the caller
//! rebuilds it from the same configuration/inputs first, then overlays
//! the saved mutable state. That split keeps snapshots small (no config
//! duplication) and makes config drift detectable via the manifest's
//! config hash instead of silently misinterpreting state.
//!
//! Determinism rules every implementor must follow (DESIGN.md §8):
//!
//! * Hash-based collections serialize in sorted key order.
//! * Priority queues serialize as sorted sequences and are rebuilt by
//!   reinsertion.
//! * Scratch/derived state (capacities, masks, latencies) is *not*
//!   serialized; it comes from the rebuilt component.

use crate::clock::Cycle;
use serde::value::lookup;
use serde::{de, Deserialize, Serialize};
// Re-exported: `Value` appears in the `Snapshot` trait's signatures, so
// downstream code must be able to name it from here.
pub use serde::value::Value;

/// Version tag of the on-disk snapshot format. Bump whenever any
/// component changes its state layout incompatibly; the loader rejects
/// mismatches with a typed error instead of misreading bytes.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// A component whose complete mutable state can be captured and later
/// overlaid onto a freshly rebuilt instance.
pub trait Snapshot {
    /// Lowers the component's mutable state to a value tree.
    fn save_state(&self) -> Value;

    /// Overlays `state` (a tree produced by [`Snapshot::save_state`] on an
    /// identically configured instance) onto `self`.
    ///
    /// # Errors
    /// Returns a deserialization error when the tree's shape does not
    /// match — a format break or a snapshot from a different
    /// configuration.
    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error>;
}

/// Identification block stored next to the state payload in every
/// snapshot file. Restore verifies each field before touching any state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotManifest {
    /// On-disk format version ([`SNAPSHOT_FORMAT_VERSION`] at write time).
    pub format: u32,
    /// FNV-1a hash of the compact-JSON serialized `SystemConfig` the run
    /// used. A restore under a different configuration is rejected.
    pub config_hash: u64,
    /// Prefetching scheme name (e.g. `"CAMPS-MOD"`).
    pub scheme: String,
    /// Workload mix id (e.g. `"HM1"`); empty for ad-hoc trace runs.
    pub mix_id: String,
    /// Workload seed the traces were built from.
    pub seed: u64,
    /// Simulation cycle at which the snapshot was taken.
    pub cycle: Cycle,
    /// Build identifier of the writer (crate version), informational.
    pub build: String,
}

/// FNV-1a over `bytes` — the checksum used for both the config hash and
/// the state-payload integrity check. Not cryptographic; it exists to
/// catch truncation, bit rot, and accidental hand edits.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Looks up required field `key` in map value `v`.
///
/// # Errors
/// Returns an error naming the missing key or the non-map shape.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, de::Error> {
    let entries = v
        .as_map()
        .ok_or_else(|| de::Error::custom(format!("snapshot: expected map, got {v:?}")))?;
    lookup(entries, key)
        .ok_or_else(|| de::Error::custom(format!("snapshot: missing field `{key}`")))
}

/// Decodes required field `key` of map value `v` as a `T`.
///
/// # Errors
/// Propagates missing-field and shape errors.
pub fn decode<T: Deserialize>(v: &Value, key: &str) -> Result<T, de::Error> {
    T::from_value(field(v, key)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = SnapshotManifest {
            format: SNAPSHOT_FORMAT_VERSION,
            config_hash: 0xDEAD_BEEF,
            scheme: "CAMPS".into(),
            mix_id: "HM1".into(),
            seed: 42,
            cycle: 123_456,
            build: "0.1.0".into(),
        };
        let s = serde_json::to_string(&m).unwrap();
        let d: SnapshotManifest = serde_json::from_str(&s).unwrap();
        assert_eq!(m, d);
    }

    #[test]
    fn field_and_decode_report_missing_keys() {
        let v = Value::Map(vec![("x".into(), Value::U64(7))]);
        assert_eq!(decode::<u64>(&v, "x").unwrap(), 7);
        let err = decode::<u64>(&v, "y").unwrap_err();
        assert!(err.to_string().contains("missing field `y`"));
        let err = field(&Value::U64(1), "x").unwrap_err();
        assert!(err.to_string().contains("expected map"));
    }
}
