//! Common types shared by every crate of the CAMPS simulator.
//!
//! This crate defines the vocabulary of the simulated machine:
//!
//! * [`clock`] — cycle counters and the CPU/DRAM clock-domain conversion,
//! * [`addr`] — physical addresses and the HMC address mapping
//!   (`RoRaBaVaCo` in the paper, Table I),
//! * [`request`] — memory requests/responses flowing between the cores and
//!   the cube,
//! * [`config`] — the full system configuration, whose defaults reproduce
//!   Table I of the paper, plus integrity-check knobs and a deterministic
//!   fault-injection plan,
//! * [`error`] — typed simulation errors: configuration validation, trace
//!   format defects, request-conservation violations, and watchdog reports.
//!
//! Nothing in here simulates anything; these are plain data types with
//! conversion helpers so the substrate crates (`camps-dram`, `camps-link`,
//! `camps-vault`, …) can interoperate without depending on each other.

#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod config;
pub mod error;
pub mod request;
pub mod snapshot;
pub mod wake;

pub use addr::{AddressMapping, DecodedAddr, MappingScheme, PhysAddr, RowKey};
pub use clock::{ClockDomain, Cycle};
pub use config::{
    CacheLevelConfig, CoreSidePrefetchConfig, CpuConfig, DramTimingConfig, EnergyConfig, FaultPlan,
    HmcGeometry, IntegrityConfig, LinkConfig, PagePolicy, PrefetchBufferConfig, SchedulerKind,
    SystemConfig, VaultConfig,
};
pub use error::{ConfigError, IntegrityError, SimError, TraceError, VaultSnapshot, WatchdogReport};
pub use request::{AccessKind, CoreId, MemRequest, MemResponse, RequestId, ServiceSource};
pub use snapshot::{fnv1a, Snapshot, SnapshotManifest, SNAPSHOT_FORMAT_VERSION};
pub use wake::{fold_wake, Wake};
