//! A single set-associative, write-back, write-allocate cache with true
//! LRU replacement.

use camps_stats::{Counter, Ratio};
use camps_types::addr::PhysAddr;
use camps_types::config::CacheLevelConfig;
use camps_types::snapshot::{decode, Snapshot};
use serde::value::Value;
use serde::{de, Deserialize, Serialize};

/// One cache line's bookkeeping (tags only; data is not simulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups (demand reads + writes).
    pub accesses: Ratio,
    /// Dirty lines pushed down on eviction.
    pub writebacks: Counter,
    /// Lines filled.
    pub fills: Counter,
}

/// A set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets[s]` is MRU-first.
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bits: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from one level's configuration.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (validated configs never are).
    #[must_use]
    pub fn new(cfg: &CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets: vec![Vec::with_capacity(cfg.ways as usize); sets as usize],
            ways: cfg.ways as usize,
            line_bits: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            stats: CacheStats::default(),
        }
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let block = addr.0 >> self.line_bits;
        (
            (block & self.set_mask) as usize,
            block >> self.sets.len().trailing_zeros(),
        )
    }

    /// Looks up `addr`; on a hit the line is promoted to MRU and (for
    /// writes) marked dirty. Returns whether it hit.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> bool {
        let (set, tag) = self.index(addr);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.tag == tag) {
            let mut line = lines.remove(pos);
            line.dirty |= is_write;
            lines.insert(0, line);
            self.stats.accesses.hit();
            true
        } else {
            self.stats.accesses.miss();
            false
        }
    }

    /// True if `addr`'s line is resident (no LRU update, no stats).
    #[must_use]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Fills `addr`'s line as MRU (dirty if `dirty`). If the set was full,
    /// returns the evicted line's address when it was dirty (the caller
    /// writes it to the next level).
    ///
    /// Filling a line that is already resident just promotes it.
    pub fn fill(&mut self, addr: PhysAddr, dirty: bool) -> Option<PhysAddr> {
        let (set, tag) = self.index(addr);
        let set_bits = self.sets.len().trailing_zeros();
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.tag == tag) {
            let mut line = lines.remove(pos);
            line.dirty |= dirty;
            lines.insert(0, line);
            return None;
        }
        self.stats.fills.inc();
        let victim = if lines.len() == self.ways {
            lines.pop()
        } else {
            None
        };
        lines.insert(0, Line { tag, dirty });
        victim.filter(|v| v.dirty).map(|v| {
            self.stats.writebacks.inc();
            PhysAddr(((v.tag << set_bits) | set as u64) << self.line_bits)
        })
    }

    /// Removes `addr`'s line if resident; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<bool> {
        let (set, tag) = self.index(addr);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.tag == tag)?;
        Some(lines.remove(pos).dirty)
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of resident lines (tests / occupancy probes).
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

impl Snapshot for Cache {
    fn save_state(&self) -> Value {
        // Geometry (`ways`, `line_bits`, `set_mask`) is derived from the
        // config; only tag contents and statistics are captured. Lines
        // serialize as `(tag, dirty)` pairs, MRU-first per set.
        let sets: Vec<Vec<(u64, bool)>> = self
            .sets
            .iter()
            .map(|s| s.iter().map(|l| (l.tag, l.dirty)).collect())
            .collect();
        Value::Map(vec![
            ("sets".into(), sets.to_value()),
            ("stats".into(), self.stats.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let sets: Vec<Vec<(u64, bool)>> = decode(state, "sets")?;
        if sets.len() != self.sets.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} sets for a {}-set cache",
                sets.len(),
                self.sets.len()
            )));
        }
        if sets.iter().any(|s| s.len() > self.ways) {
            return Err(de::Error::custom(format!(
                "snapshot: set exceeds {} ways",
                self.ways
            )));
        }
        self.sets = sets
            .into_iter()
            .map(|s| {
                s.into_iter()
                    .map(|(tag, dirty)| Line { tag, dirty })
                    .collect()
            })
            .collect();
        self.stats = decode(state, "stats")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(&CacheLevelConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 2,
            mshrs: 4,
        })
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = small();
        let a = PhysAddr(0x1000);
        assert!(!c.access(a, false));
        assert_eq!(c.fill(a, false), None);
        assert!(c.access(a, false));
        assert_eq!(c.stats().accesses.value(), Some(0.5));
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = small();
        c.fill(PhysAddr(0x1000), false);
        assert!(c.access(PhysAddr(0x103F), false));
        assert!(c.access(PhysAddr(0x1001), true));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Same set: addresses 4 sets apart → stride 4 * 64 = 256.
        let (a, b, d) = (PhysAddr(0x0), PhysAddr(0x100), PhysAddr(0x200));
        c.fill(a, false);
        c.fill(b, false);
        c.access(a, false); // promote a; b becomes LRU
        c.fill(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_returns_writeback_address() {
        let mut c = small();
        let (a, b, d) = (PhysAddr(0x40), PhysAddr(0x140), PhysAddr(0x240));
        c.fill(a, false);
        c.access(a, true); // dirty a
        c.fill(b, false);
        c.access(b, false); // a is LRU and dirty
        let wb = c.fill(d, false);
        assert_eq!(
            wb,
            Some(PhysAddr(0x40)),
            "writeback must reconstruct the line address"
        );
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn clean_eviction_returns_none() {
        let mut c = small();
        c.fill(PhysAddr(0x0), false);
        c.fill(PhysAddr(0x100), false);
        assert_eq!(c.fill(PhysAddr(0x200), false), None);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = small();
        c.fill(PhysAddr(0x0), false);
        c.fill(PhysAddr(0x100), false);
        assert_eq!(c.fill(PhysAddr(0x0), true), None);
        assert_eq!(c.resident_lines(), 2);
        // The refill marked it dirty.
        c.fill(PhysAddr(0x200), false); // evicts 0x100 (clean)
        c.access(PhysAddr(0x200), false);
        let wb = c.fill(PhysAddr(0x100), false); // evicts 0x0 (dirty, LRU)
        assert_eq!(wb, Some(PhysAddr(0x0)));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.fill(PhysAddr(0x0), false);
        c.access(PhysAddr(0x0), true);
        assert_eq!(c.invalidate(PhysAddr(0x0)), Some(true));
        assert_eq!(c.invalidate(PhysAddr(0x0)), None);
        assert!(!c.contains(PhysAddr(0x0)));
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            addrs in prop::collection::vec(0u64..0x4000, 1..200)
        ) {
            let mut c = small();
            for &a in &addrs {
                let addr = PhysAddr(a);
                if !c.access(addr, a % 3 == 0) {
                    let _ = c.fill(addr, false);
                }
                prop_assert!(c.resident_lines() <= 8);
                prop_assert!(c.contains(addr));
            }
        }

        #[test]
        fn writeback_addresses_round_trip(
            addrs in prop::collection::vec(0u64..0x10000, 1..100)
        ) {
            // Every writeback address must map to the same set it was
            // evicted from and be line-aligned.
            let mut c = small();
            for &a in &addrs {
                let addr = PhysAddr(a);
                if let Some(wb) = c.fill(addr, true) {
                    prop_assert_eq!(wb.0 % 64, 0);
                    let set_of = |p: PhysAddr| (p.0 >> 6) & 3;
                    prop_assert_eq!(set_of(wb), set_of(addr));
                }
            }
        }
    }
}
