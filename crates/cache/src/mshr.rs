//! Miss-status holding registers.
//!
//! The MSHR file bounds outstanding misses (the memory-level parallelism
//! the cube sees) and merges secondary misses to a block already in
//! flight, so one memory request serves every waiter.

use camps_types::addr::PhysAddr;
use camps_types::snapshot::{decode, Snapshot};
use serde::value::Value;
use serde::{de, Serialize as _};
use std::collections::HashMap;

/// Result of trying to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// First miss to this block — send a memory request.
    Primary,
    /// The block is already in flight; this waiter was merged.
    Merged,
    /// No MSHR free — the requester must stall and retry.
    Full,
}

/// The MSHR file. Waiters are opaque `u64` tokens chosen by the caller
/// (the system simulator uses ROB slot identifiers).
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: HashMap<u64, Vec<u64>>,
    capacity: usize,
    line_mask: u64,
    peak: usize,
    merges: u64,
    stalls: u64,
}

impl MshrFile {
    /// An MSHR file with `capacity` entries for `line_bytes` blocks.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `line_bytes` is not a power of two.
    #[must_use]
    pub fn new(capacity: u32, line_bytes: u32) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            entries: HashMap::with_capacity(capacity as usize),
            capacity: capacity as usize,
            line_mask: !(u64::from(line_bytes) - 1),
            peak: 0,
            merges: 0,
            stalls: 0,
        }
    }

    fn key(&self, addr: PhysAddr) -> u64 {
        addr.0 & self.line_mask
    }

    /// Number of blocks in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// True when no more primary misses can be accepted.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// True if `addr`'s block is already in flight.
    #[must_use]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.entries.contains_key(&self.key(addr))
    }

    /// Tries to register `waiter` for a miss on `addr`.
    pub fn allocate(&mut self, addr: PhysAddr, waiter: u64) -> MshrAlloc {
        let key = self.key(addr);
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(waiter);
            self.merges += 1;
            return MshrAlloc::Merged;
        }
        if self.entries.len() == self.capacity {
            self.stalls += 1;
            return MshrAlloc::Full;
        }
        self.entries.insert(key, vec![waiter]);
        self.peak = self.peak.max(self.entries.len());
        MshrAlloc::Primary
    }

    /// Completes the block containing `addr`, returning every waiter that
    /// was merged onto it (empty if the block was not in flight).
    pub fn complete(&mut self, addr: PhysAddr) -> Vec<u64> {
        self.entries.remove(&self.key(addr)).unwrap_or_default()
    }

    /// (peak occupancy, merges, full-stalls) so far.
    #[must_use]
    pub fn stats(&self) -> (usize, u64, u64) {
        (self.peak, self.merges, self.stalls)
    }
}

impl camps_types::wake::Wake for MshrFile {
    /// MSHRs hold waiters, not timers: entries complete when the cube
    /// delivers a response (an event the memory subsystem already wakes
    /// on), so the file itself never needs a tick.
    fn next_event(&self, _now: camps_types::clock::Cycle) -> Option<camps_types::clock::Cycle> {
        None
    }
}

impl Snapshot for MshrFile {
    fn save_state(&self) -> Value {
        // In-flight blocks sorted by address for deterministic output;
        // `capacity`/`line_mask` are construction inputs.
        let mut entries: Vec<(u64, Vec<u64>)> =
            self.entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        Value::Map(vec![
            ("entries".into(), entries.to_value()),
            ("peak".into(), self.peak.to_value()),
            ("merges".into(), self.merges.to_value()),
            ("stalls".into(), self.stalls.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let entries: Vec<(u64, Vec<u64>)> = decode(state, "entries")?;
        if entries.len() > self.capacity {
            return Err(de::Error::custom(format!(
                "snapshot: {} in-flight blocks exceed {} MSHRs",
                entries.len(),
                self.capacity
            )));
        }
        self.entries = entries.into_iter().collect();
        self.peak = decode(state, "peak")?;
        self.merges = decode(state, "merges")?;
        self.stalls = decode(state, "stalls")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge_then_complete() {
        let mut m = MshrFile::new(4, 64);
        assert_eq!(m.allocate(PhysAddr(0x100), 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(PhysAddr(0x120), 2), MshrAlloc::Merged); // same block
        assert_eq!(m.in_flight(), 1);
        let waiters = m.complete(PhysAddr(0x13F));
        assert_eq!(waiters, vec![1, 2]);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn distinct_blocks_use_distinct_entries() {
        let mut m = MshrFile::new(4, 64);
        assert_eq!(m.allocate(PhysAddr(0x000), 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(PhysAddr(0x040), 2), MshrAlloc::Primary);
        assert_eq!(m.in_flight(), 2);
    }

    #[test]
    fn full_file_rejects_primary_but_merges() {
        let mut m = MshrFile::new(2, 64);
        m.allocate(PhysAddr(0x000), 1);
        m.allocate(PhysAddr(0x040), 2);
        assert_eq!(m.allocate(PhysAddr(0x080), 3), MshrAlloc::Full);
        assert_eq!(m.allocate(PhysAddr(0x000), 4), MshrAlloc::Merged);
        assert!(m.is_full());
        let (peak, merges, stalls) = m.stats();
        assert_eq!((peak, merges, stalls), (2, 1, 1));
    }

    #[test]
    fn complete_unknown_block_is_empty() {
        let mut m = MshrFile::new(2, 64);
        assert!(m.complete(PhysAddr(0x500)).is_empty());
    }

    #[test]
    fn contains_respects_block_granularity() {
        let mut m = MshrFile::new(2, 64);
        m.allocate(PhysAddr(0x100), 1);
        assert!(m.contains(PhysAddr(0x13F)));
        assert!(!m.contains(PhysAddr(0x140)));
    }

    #[test]
    fn snapshot_round_trips_in_flight_blocks() {
        let mut a = MshrFile::new(4, 64);
        a.allocate(PhysAddr(0x100), 1);
        a.allocate(PhysAddr(0x120), 2); // merged waiter
        a.allocate(PhysAddr(0x200), 3);
        let state = a.save_state();
        let mut b = MshrFile::new(4, 64);
        b.restore_state(&state).unwrap();
        assert_eq!(b.in_flight(), 2);
        assert_eq!(b.complete(PhysAddr(0x100)), vec![1, 2]);
        assert_eq!(b.complete(PhysAddr(0x200)), vec![3]);
        assert_eq!(a.stats(), (2, 1, 0));
        // A smaller file cannot hold the snapshot's in-flight set.
        let mut tiny = MshrFile::new(1, 64);
        assert!(tiny.restore_state(&state).is_err());
    }
}
