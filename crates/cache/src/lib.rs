//! Cache hierarchy substrate: set-associative caches with LRU replacement,
//! write-back/write-allocate policies, MSHRs, and the three-level private
//! L1 / private L2 / shared L3 arrangement of Table I.
//!
//! The hierarchy is *functional with latency accumulation*: lookups resolve
//! hit/miss against real cache state, and the returned latency is the sum
//! of the lookup latencies on the path (L1 hit = 2, L2 hit = 2+6, L3 hit =
//! 2+6+20 cycles). Misses surface to the caller (the system simulator),
//! which sends them into the HMC's detailed timing model — the paper's
//! object of study is the memory side, and this split keeps the cache model
//! fast while preserving exactly the miss stream and MLP limits the cube
//! sees.

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod mshr;

pub use cache::{Cache, CacheStats};
pub use hierarchy::{CacheHierarchy, HierarchyOutcome};
pub use mshr::{MshrAlloc, MshrFile};
