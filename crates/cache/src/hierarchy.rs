//! The three-level hierarchy of Table I: private L1D and L2 per core, one
//! shared L3. Write-back, write-allocate at every level; dirty victims
//! cascade downward and fall out of the L3 as memory writebacks.

use crate::cache::{Cache, CacheStats};
use camps_obs::{Comp, Profiler};
use camps_types::addr::PhysAddr;
use camps_types::clock::Cycle;
use camps_types::config::SystemConfig;
use camps_types::snapshot::{field, Snapshot};
use serde::de;
use serde::value::Value;

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyOutcome {
    /// Served on chip at `level` (1..=3) after `latency` cycles.
    Hit {
        /// Which level hit (1 = L1D).
        level: u8,
        /// Accumulated lookup latency.
        latency: Cycle,
    },
    /// Missed all three levels; a memory request must be issued after
    /// `lookup_latency` cycles of tag checks.
    Miss {
        /// Accumulated lookup latency before the miss was known.
        lookup_latency: Cycle,
    },
}

/// The full on-chip cache system.
pub struct CacheHierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    l1_lat: Cycle,
    l2_lat: Cycle,
    l3_lat: Cycle,
}

impl CacheHierarchy {
    /// Builds per-core L1/L2 and the shared L3 from the system config.
    #[must_use]
    pub fn new(cfg: &SystemConfig) -> Self {
        let cores = cfg.cpu.cores as usize;
        Self {
            l1: (0..cores).map(|_| Cache::new(&cfg.l1)).collect(),
            l2: (0..cores).map(|_| Cache::new(&cfg.l2)).collect(),
            l3: Cache::new(&cfg.l3),
            l1_lat: cfg.l1.hit_latency,
            l2_lat: cfg.l2.hit_latency,
            l3_lat: cfg.l3.hit_latency,
        }
    }

    /// Performs a demand access for `core`. Dirty lines displaced out of
    /// the L3 are appended to `writebacks` (the caller turns them into
    /// memory write requests). Host time spent probing the levels is
    /// self-attributed to the profiler's `cache_lookup` bin.
    pub fn access(
        &mut self,
        core: usize,
        addr: PhysAddr,
        is_write: bool,
        writebacks: &mut Vec<PhysAddr>,
        prof: &mut Profiler,
    ) -> HierarchyOutcome {
        let t = prof.stamp();
        let outcome = self.access_inner(core, addr, is_write, writebacks);
        let _ = prof.lap(Comp::CacheLookup, t);
        outcome
    }

    fn access_inner(
        &mut self,
        core: usize,
        addr: PhysAddr,
        is_write: bool,
        writebacks: &mut Vec<PhysAddr>,
    ) -> HierarchyOutcome {
        if self.l1[core].access(addr, is_write) {
            return HierarchyOutcome::Hit {
                level: 1,
                latency: self.l1_lat,
            };
        }
        if self.l2[core].access(addr, false) {
            self.fill_l1(core, addr, is_write, writebacks);
            return HierarchyOutcome::Hit {
                level: 2,
                latency: self.l1_lat + self.l2_lat,
            };
        }
        if self.l3.access(addr, false) {
            self.fill_l2(core, addr, writebacks);
            self.fill_l1(core, addr, is_write, writebacks);
            return HierarchyOutcome::Hit {
                level: 3,
                latency: self.l1_lat + self.l2_lat + self.l3_lat,
            };
        }
        HierarchyOutcome::Miss {
            lookup_latency: self.l1_lat + self.l2_lat + self.l3_lat,
        }
    }

    /// Fills `addr` into every level for `core` after a memory response
    /// (write-allocate: `is_write` dirties the L1 copy).
    pub fn fill(
        &mut self,
        core: usize,
        addr: PhysAddr,
        is_write: bool,
        writebacks: &mut Vec<PhysAddr>,
    ) {
        if let Some(wb) = self.l3.fill(addr, false) {
            writebacks.push(wb);
        }
        self.fill_l2(core, addr, writebacks);
        self.fill_l1(core, addr, is_write, writebacks);
    }

    fn fill_l1(
        &mut self,
        core: usize,
        addr: PhysAddr,
        dirty: bool,
        writebacks: &mut Vec<PhysAddr>,
    ) {
        if let Some(victim) = self.l1[core].fill(addr, dirty) {
            // L1 dirty victim lands in the L2.
            if let Some(victim2) = self.l2[core].fill(victim, true) {
                if let Some(victim3) = self.l3.fill(victim2, true) {
                    writebacks.push(victim3);
                }
            }
        }
    }

    fn fill_l2(&mut self, core: usize, addr: PhysAddr, writebacks: &mut Vec<PhysAddr>) {
        if let Some(victim) = self.l2[core].fill(addr, false) {
            if let Some(victim3) = self.l3.fill(victim, true) {
                writebacks.push(victim3);
            }
        }
    }

    /// True if `addr` is resident anywhere on chip for any core (no LRU
    /// update, no statistics) — used by prefetchers to skip useless work.
    #[must_use]
    pub fn access_untimed(&self, addr: PhysAddr) -> bool {
        self.l3.contains(addr)
            || self.l1.iter().any(|c| c.contains(addr))
            || self.l2.iter().any(|c| c.contains(addr))
    }

    /// Fills `addr` into the shared L3 only — unsolicited cache pushes
    /// from the memory side (`push_to_llc`). Dirty victims surface as
    /// writebacks like any other fill.
    pub fn fill_llc_only(&mut self, addr: PhysAddr, writebacks: &mut Vec<PhysAddr>) {
        if let Some(wb) = self.l3.fill(addr, false) {
            writebacks.push(wb);
        }
    }

    /// Per-level statistics: (`l1[core]`, `l2[core]`, shared l3).
    #[must_use]
    pub fn stats(&self, core: usize) -> (&CacheStats, &CacheStats, &CacheStats) {
        (
            self.l1[core].stats(),
            self.l2[core].stats(),
            self.l3.stats(),
        )
    }

    /// Number of cores the private levels were built for.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Shared-L3 miss count (numerator of the MPKI classification used to
    /// build Table II's HM/LM groups).
    #[must_use]
    pub fn l3_misses(&self) -> u64 {
        let r = self.l3.stats().accesses;
        r.total.get() - r.hits.get()
    }
}

impl camps_types::wake::Wake for CacheHierarchy {
    /// The hierarchy is functional-with-latency: every state change happens
    /// synchronously inside an `access`/`fill` call from the memory
    /// subsystem. It has no timers of its own.
    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

fn save_level(caches: &[Cache]) -> Value {
    Value::Seq(caches.iter().map(Snapshot::save_state).collect())
}

fn restore_level(caches: &mut [Cache], v: &Value, level: &str) -> Result<(), de::Error> {
    let Value::Seq(items) = v else {
        return Err(de::Error::custom(format!(
            "snapshot: expected sequence for {level}, got {v:?}"
        )));
    };
    if items.len() != caches.len() {
        return Err(de::Error::custom(format!(
            "snapshot: {} {level} caches for {} cores",
            items.len(),
            caches.len()
        )));
    }
    for (cache, item) in caches.iter_mut().zip(items) {
        cache.restore_state(item)?;
    }
    Ok(())
}

impl Snapshot for CacheHierarchy {
    fn save_state(&self) -> Value {
        Value::Map(vec![
            ("l1".into(), save_level(&self.l1)),
            ("l2".into(), save_level(&self.l2)),
            ("l3".into(), self.l3.save_state()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        restore_level(&mut self.l1, field(state, "l1")?, "L1")?;
        restore_level(&mut self.l2, field(state, "l2")?, "L2")?;
        self.l3.restore_state(field(state, "l3")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&SystemConfig::small())
    }

    #[test]
    fn cold_access_misses_everywhere() {
        let mut h = hierarchy();
        let mut wb = Vec::new();
        let out = h.access(0, PhysAddr(0x1000), false, &mut wb, &mut Profiler::off());
        assert_eq!(
            out,
            HierarchyOutcome::Miss {
                lookup_latency: 2 + 6 + 20
            }
        );
        assert!(wb.is_empty());
    }

    #[test]
    fn fill_then_l1_hit() {
        let mut h = hierarchy();
        let mut wb = Vec::new();
        h.fill(0, PhysAddr(0x1000), false, &mut wb);
        let out = h.access(0, PhysAddr(0x1008), false, &mut wb, &mut Profiler::off());
        assert_eq!(
            out,
            HierarchyOutcome::Hit {
                level: 1,
                latency: 2
            }
        );
    }

    #[test]
    fn l2_hit_refills_l1() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let mut wb = Vec::new();
        h.fill(0, PhysAddr(0), false, &mut wb);
        // Evict line 0 from L1 (4 KB, 2-way, 64 B lines → 32 sets; two
        // same-set fills displace it) without touching L2's set for it.
        let l1_sets = cfg.l1.sets();
        let stride = l1_sets * 64;
        h.fill(0, PhysAddr(stride * 7), false, &mut wb);
        h.fill(0, PhysAddr(stride * 9), false, &mut wb);
        assert_eq!(
            h.access(0, PhysAddr(0), false, &mut wb, &mut Profiler::off()),
            HierarchyOutcome::Hit {
                level: 2,
                latency: 8
            }
        );
        // And now it's back in L1.
        assert_eq!(
            h.access(0, PhysAddr(0), false, &mut wb, &mut Profiler::off()),
            HierarchyOutcome::Hit {
                level: 1,
                latency: 2
            }
        );
    }

    #[test]
    fn l3_is_shared_across_cores() {
        let mut h = hierarchy();
        let mut wb = Vec::new();
        h.fill(0, PhysAddr(0x4000), false, &mut wb);
        // Core 1 misses its private L1/L2 but hits the shared L3.
        let out = h.access(1, PhysAddr(0x4000), false, &mut wb, &mut Profiler::off());
        assert_eq!(
            out,
            HierarchyOutcome::Hit {
                level: 3,
                latency: 28
            }
        );
    }

    #[test]
    fn private_l1_is_not_shared() {
        let mut h = hierarchy();
        let mut wb = Vec::new();
        h.fill(0, PhysAddr(0x4000), false, &mut wb);
        // Core 1's first access cannot be an L1 hit.
        match h.access(1, PhysAddr(0x4000), false, &mut wb, &mut Profiler::off()) {
            HierarchyOutcome::Hit { level, .. } => assert_eq!(level, 3),
            HierarchyOutcome::Miss { .. } => panic!("L3 should hold the line"),
        }
    }

    #[test]
    fn dirty_line_eventually_writes_back_to_memory() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let mut wb = Vec::new();
        // Dirty a line, then flood every level's set until it falls out of
        // the L3.
        h.fill(0, PhysAddr(0), true, &mut wb);
        let l3_sets = cfg.l3.sets();
        let stride = l3_sets * 64; // same L3 set every `stride`
        let mut i = 1u64;
        while wb.is_empty() && i < 200 {
            h.fill(0, PhysAddr(stride * i), false, &mut wb);
            i += 1;
        }
        assert_eq!(
            wb,
            vec![PhysAddr(0)],
            "the dirty line must surface as a writeback"
        );
    }

    #[test]
    fn store_hit_dirties_without_memory_traffic() {
        let mut h = hierarchy();
        let mut wb = Vec::new();
        h.fill(0, PhysAddr(0x80), false, &mut wb);
        let out = h.access(0, PhysAddr(0x80), true, &mut wb, &mut Profiler::off());
        assert!(matches!(out, HierarchyOutcome::Hit { level: 1, .. }));
        assert!(wb.is_empty());
    }

    proptest::proptest! {
        // After any access sequence: a fill makes the very next access to
        // the same line an L1 hit, and every writeback address is one of
        // the lines we dirtied.
        #[test]
        fn fills_hit_and_writebacks_come_from_dirty_lines(
            ops in proptest::collection::vec((0u64..512, proptest::bool::ANY), 1..300)
        ) {
            let cfg = SystemConfig::small();
            let mut h = CacheHierarchy::new(&cfg);
            let mut wb = Vec::new();
            let mut dirtied = std::collections::HashSet::new();
            for &(block, is_write) in &ops {
                let addr = PhysAddr(block * 64);
                if is_write {
                    dirtied.insert(addr.0);
                }
                if let HierarchyOutcome::Miss { .. } = h.access(0, addr, is_write, &mut wb, &mut Profiler::off()) {
                    h.fill(0, addr, is_write, &mut wb);
                }
                // Immediately after a fill (or hit) the line is in L1.
                let is_l1_hit = matches!(
                    h.access(0, addr, false, &mut wb, &mut Profiler::off()),
                    HierarchyOutcome::Hit { level: 1, .. }
                );
                proptest::prop_assert!(is_l1_hit);
            }
            for w in &wb {
                proptest::prop_assert!(
                    dirtied.contains(&w.0),
                    "writeback {w} of a line never dirtied"
                );
            }
        }
    }

    #[test]
    fn snapshot_restores_full_hierarchy_state() {
        let cfg = SystemConfig::small();
        let mut a = CacheHierarchy::new(&cfg);
        let mut wb = Vec::new();
        for i in 0..200u64 {
            let addr = PhysAddr((i * 97 % 64) * 64);
            if let HierarchyOutcome::Miss { .. } =
                a.access(0, addr, i % 3 == 0, &mut wb, &mut Profiler::off())
            {
                a.fill(0, addr, i % 3 == 0, &mut wb);
            }
        }
        let state = a.save_state();
        let mut b = CacheHierarchy::new(&cfg);
        b.restore_state(&state).unwrap();
        // Same residency and identical behavior afterwards.
        let mut wb_a = Vec::new();
        let mut wb_b = Vec::new();
        for i in 0..100u64 {
            let addr = PhysAddr((i * 31 % 80) * 64);
            assert_eq!(
                a.access(0, addr, false, &mut wb_a, &mut Profiler::off()),
                b.access(0, addr, false, &mut wb_b, &mut Profiler::off())
            );
        }
        assert_eq!(wb_a, wb_b);
        assert_eq!(a.l3_misses(), b.l3_misses());
    }

    #[test]
    fn snapshot_rejects_mismatched_geometry() {
        let mut small = CacheHierarchy::new(&SystemConfig::small());
        let paper = CacheHierarchy::new(&SystemConfig::paper_default());
        let err = small.restore_state(&paper.save_state()).unwrap_err();
        assert!(err.to_string().contains("snapshot"));
    }

    #[test]
    fn l3_miss_counter_tracks_misses() {
        let mut h = hierarchy();
        let mut wb = Vec::new();
        assert_eq!(h.l3_misses(), 0);
        h.access(0, PhysAddr(0x1000), false, &mut wb, &mut Profiler::off());
        h.access(0, PhysAddr(0x2000), false, &mut wb, &mut Profiler::off());
        assert_eq!(h.l3_misses(), 2);
        h.fill(0, PhysAddr(0x1000), false, &mut wb);
        // L1 hit → the L3 does not even see it.
        h.access(0, PhysAddr(0x1000), false, &mut wb, &mut Profiler::off());
        assert_eq!(h.l3_misses(), 2);
    }
}
