//! Workload substrate: synthetic SPEC CPU2006-like trace generators and
//! the eight-core multiprogrammed mixes of Table II.
//!
//! Substitution note (DESIGN.md §5): SPEC CPU2006 binaries/traces are
//! proprietary, so each of the 15 benchmarks the paper uses gets a
//! documented [`profile::BenchProfile`] — memory-op fraction, access
//! pattern mix (sequential streams / strides / pointer-chase / hot-set
//! reuse), and working-set size — chosen to match its published memory
//! character. The profiles are validated by tests that measure each
//! generator's L3 MPKI through the real cache hierarchy and check the
//! paper's HM (MPKI ≥ 20) / LM (1 ≤ MPKI < 20) classification.

#![warn(missing_docs)]

pub mod adversarial;
pub mod generator;
pub mod mixes;
pub mod profile;
pub mod spec;

pub use adversarial::{AdversarialSpec, AdversarialTrace, AttackKind, WorkloadError};
pub use generator::SpecTrace;
pub use mixes::{Mix, MixClass, ALL_MIXES};
pub use profile::{BenchProfile, MemClass, PatternWeights};
pub use spec::{profile_for, BENCHMARKS};
