//! Benchmark profiles: the tunable knobs of the synthetic generators.

use serde::{Deserialize, Serialize};

/// The paper's memory-intensity classes (§4.1): HM has MPKI ≥ 20, LM has
/// 1 ≤ MPKI < 20, measured at the last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemClass {
    /// High memory intensity.
    High,
    /// Low memory intensity.
    Low,
}

/// Relative weights of the four access-pattern engines. They need not sum
/// to one; the generator normalizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternWeights {
    /// Sequential streams advancing in small (8 B) steps — stencil /
    /// array-sweep codes (`lbm`, `bwaves`). High spatial locality within
    /// cache blocks and DRAM rows, no temporal reuse.
    pub stream: f64,
    /// Strided sweeps jumping whole blocks — multidimensional arrays
    /// (`GemsFDTD`, `zeusmp`). Row locality without block locality.
    pub stride: f64,
    /// Uniform random block touches over the working set — pointer chasing
    /// (`mcf`, `omnetpp`). No locality at all.
    pub random: f64,
    /// Touches within a small hot set — the cache-resident portion every
    /// real program has. Generates on-chip hits, not memory traffic.
    pub reuse: f64,
    /// Random touches inside a medium-size *region* that drifts slowly —
    /// graph neighborhoods, hash tables, B-tree levels (`mcf`, `omnetpp`,
    /// `gcc`). Rows are revisited about once per activation and keep
    /// getting displaced by competing rows: the row-level temporal reuse
    /// that is invisible to per-open-row hit counters but exactly what
    /// the CAMPS Conflict Table catches.
    pub region: f64,
}

impl PatternWeights {
    /// Sum of the weights (for normalization).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.stream + self.stride + self.random + self.reuse + self.region
    }
}

/// The full description of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// SPEC benchmark this profile models.
    pub name: &'static str,
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Of the memory operations, the fraction that are stores.
    pub store_fraction: f64,
    /// Access-pattern mix.
    pub weights: PatternWeights,
    /// Concurrent sequential streams (MLP of the streaming engine).
    pub streams: u32,
    /// Stride of the strided engine, in 64 B blocks.
    pub stride_blocks: u32,
    /// Total working set in bytes (vs. the 16 MB shared L3).
    pub working_set: u64,
    /// Hot-set size in bytes for the reuse engine (should fit in L1/L2).
    pub hot_set: u64,
    /// Region size in bytes for the region engine (larger than a core's
    /// L3 share, far smaller than the working set).
    pub region_bytes: u64,
    /// Accesses spent in a region before it drifts elsewhere.
    pub region_dwell: u32,
    /// Consecutive accesses served from one stream before switching to
    /// another — real array sweeps touch a DRAM row's lines densely, so a
    /// fetched row is reused while still buffer-resident. 1 = fully
    /// interleaved (maximally thrashy), larger = burstier.
    pub stream_burst: u32,
    /// Expected intensity class, used by validation tests.
    pub class: MemClass,
}

impl BenchProfile {
    /// Sanity-checks the profile's parameters.
    ///
    /// # Panics
    /// Panics on degenerate values (zero working set, weights all zero,
    /// fractions outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(
            self.mem_fraction > 0.0 && self.mem_fraction < 1.0,
            "{}: mem_fraction must be in (0,1)",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.store_fraction),
            "{}: store_fraction must be in [0,1]",
            self.name
        );
        assert!(self.weights.total() > 0.0, "{}: needs a pattern", self.name);
        assert!(
            self.working_set >= 1 << 20,
            "{}: working set too small",
            self.name
        );
        assert!(self.hot_set >= 4096, "{}: hot set too small", self.name);
        assert!(self.streams >= 1, "{}: needs a stream", self.name);
        assert!(
            self.stride_blocks >= 1,
            "{}: stride must be nonzero",
            self.name
        );
        assert!(
            self.region_bytes >= 4096 && self.region_bytes <= self.working_set,
            "{}: region must fit the working set",
            self.name
        );
        assert!(
            self.region_dwell >= 1,
            "{}: region dwell must be nonzero",
            self.name
        );
        assert!(
            self.stream_burst >= 1,
            "{}: stream burst must be nonzero",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BenchProfile {
        BenchProfile {
            name: "test",
            mem_fraction: 0.3,
            store_fraction: 0.3,
            weights: PatternWeights {
                stream: 1.0,
                stride: 0.0,
                random: 0.0,
                reuse: 1.0,
                region: 0.0,
            },
            streams: 4,
            stride_blocks: 4,
            working_set: 64 << 20,
            hot_set: 16 << 10,
            region_bytes: 2 << 20,
            region_dwell: 8192,
            stream_burst: 128,
            class: MemClass::High,
        }
    }

    #[test]
    fn valid_profile_passes() {
        base().validate();
    }

    #[test]
    #[should_panic(expected = "mem_fraction")]
    fn zero_mem_fraction_rejected() {
        let mut p = base();
        p.mem_fraction = 0.0;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "needs a pattern")]
    fn zero_weights_rejected() {
        let mut p = base();
        p.weights = PatternWeights {
            stream: 0.0,
            stride: 0.0,
            random: 0.0,
            reuse: 0.0,
            region: 0.0,
        };
        p.validate();
    }

    #[test]
    fn weight_total() {
        let w = PatternWeights {
            stream: 1.0,
            stride: 2.0,
            random: 3.0,
            reuse: 4.0,
            region: 0.5,
        };
        assert_eq!(w.total(), 10.5);
    }
}
