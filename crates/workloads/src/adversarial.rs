//! Adversarial access-stream generators: RowHammer-style aggressors,
//! conflict-thrash streams, and prefetch-buffer pollution.
//!
//! Each generator is a deterministic, seeded [`TraceSource`] whose
//! address sequence is a pure function of its op counter, so snapshots
//! capture nothing but the counter and the gap-jitter RNG. All streams
//! confine themselves to one `(vault, bank)` — the worst case for the
//! structures under attack — and defeat the host cache hierarchy by
//! advancing the column every pass and, once a row's columns are
//! exhausted, setting *alias* bits above the cube's address width.
//! [`AddressMapping::decode`] ignores those bits, so aliased addresses
//! land on the same DRAM row while the physically-tagged caches see
//! brand-new lines: every access reaches the memory side.
//!
//! The attack menu ([`AttackKind`]):
//!
//! * **Hammer, single-sided** — alternates spaced aggressor rows (or one
//!   aggressor and a far dummy row) so every access precharges and
//!   re-activates, maximizing one row's ACT rate within a refresh
//!   window.
//! * **Hammer, double-sided** — aggressor rows at stride 2 sandwich
//!   victim rows between them, the classic double-sided layout.
//! * **Conflict thrash** — round-robins more rows than the conflict
//!   table holds, so CAMPS's CT/RUT history is evicted before any row
//!   recurs and every access is a row conflict.
//! * **Buffer pollution** — dwells on a fresh pair of rows just long
//!   enough to look prefetch-worthy, then abandons them forever,
//!   training the scheme to fill its buffer with rows that will never
//!   be referenced again.

use camps_cpu::trace::{TraceOp, TraceSource};
use camps_types::addr::{AddressMapping, DecodedAddr, PhysAddr};
use camps_types::config::HmcGeometry;
use camps_types::request::AccessKind;
use camps_types::snapshot::decode;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::value::Value;
use serde::{de, Serialize as _};
use std::fmt;

/// Spacing between single-sided aggressor rows: far enough apart that
/// no mitigation treating them as one neighborhood can refresh them
/// with a single neighbor refresh.
const SINGLE_SIDED_SPACING: u32 = 64;

/// A typed rejection of an adversarial spec. These are user/config
/// errors, not bugs, so they surface as values rather than asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The spec names zero aggressor rows.
    ZeroAggressors,
    /// The attack window is zero cycles.
    ZeroWindow,
    /// The attack window exceeds the refresh window — per-row counters
    /// reset before the attack completes a round, so the spec cannot
    /// mean what it says.
    WindowExceedsRefresh {
        /// Requested attack window, CPU cycles.
        window: u64,
        /// The cube's refresh window (tREFW ≡ tREFI here), CPU cycles.
        t_refw: u64,
    },
    /// The target vault does not exist.
    VaultOutOfRange {
        /// Requested vault.
        vault: u16,
        /// Vaults in the cube.
        vaults: u32,
    },
    /// The target bank does not exist.
    BankOutOfRange {
        /// Requested bank.
        bank: u16,
        /// Banks per vault.
        banks: u32,
    },
    /// The aggressor set extends past the last row of the bank.
    RowOutOfRange {
        /// Highest row the spec would touch.
        last_row: u32,
        /// Rows per bank.
        rows: u32,
    },
    /// The cube geometry itself is invalid (no address mapping).
    Geometry(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ZeroAggressors => {
                write!(f, "adversarial spec needs at least one aggressor row")
            }
            WorkloadError::ZeroWindow => {
                write!(f, "adversarial attack window must be nonzero")
            }
            WorkloadError::WindowExceedsRefresh { window, t_refw } => write!(
                f,
                "attack window ({window} cycles) exceeds the refresh window ({t_refw} cycles)"
            ),
            WorkloadError::VaultOutOfRange { vault, vaults } => {
                write!(f, "vault {vault} out of range (cube has {vaults})")
            }
            WorkloadError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (vault has {banks})")
            }
            WorkloadError::RowOutOfRange { last_row, rows } => {
                write!(f, "aggressor set reaches row {last_row}, bank has {rows}")
            }
            WorkloadError::Geometry(e) => write!(f, "invalid cube geometry: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Which adversarial pattern a stream realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Single-sided RowHammer: spaced aggressors, one ACT per access.
    HammerSingle,
    /// Double-sided RowHammer: aggressor rows sandwiching victims.
    HammerDouble,
    /// Row-conflict thrash sized to defeat the CT/RUT history tables.
    ConflictThrash,
    /// Prefetch-buffer pollution: train, then abandon, forever.
    BufferPollution,
}

impl AttackKind {
    /// Stable lowercase identifier (stream names, JSON keys).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AttackKind::HammerSingle => "hammer-single",
            AttackKind::HammerDouble => "hammer-double",
            AttackKind::ConflictThrash => "thrash",
            AttackKind::BufferPollution => "pollute",
        }
    }
}

/// Everything that defines one adversarial stream. All fields are
/// public so presets can be tweaked; [`AdversarialTrace::new`] validates
/// the combination against the cube geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialSpec {
    /// Stream name (shows up in per-core results).
    pub name: String,
    /// The attack pattern.
    pub kind: AttackKind,
    /// Target vault — adversarial streams concentrate on one vault.
    pub vault: u16,
    /// Target bank within the vault.
    pub bank: u16,
    /// First row of the aggressor set.
    pub base_row: u32,
    /// Rows in the aggressor/thrash set (pattern-dependent layout).
    pub aggressors: u32,
    /// Mean instruction gap between memory ops (0 = back-to-back).
    pub gap: u32,
    /// Attack-round window in CPU cycles; must fit inside tREFW. Paces
    /// how long pollution dwells on a row pair before abandoning it.
    pub window: u64,
    /// Fraction of ops issued as stores. Hammer and pollution default
    /// to 0.5: dirty rows make the scheme's buffer evictions cost
    /// writeback activations on the aggressor rows — extra hammer
    /// pressure demand traffic never asked for.
    pub store_fraction: f64,
    /// Seed for the gap-jitter RNG (addresses are RNG-free).
    pub seed: u64,
}

impl AdversarialSpec {
    /// A ready-to-run spec for `kind` against `vault`, with layout
    /// defaults matched to the paper geometry (override fields freely).
    #[must_use]
    pub fn preset(kind: AttackKind, vault: u16, seed: u64) -> Self {
        let aggressors = match kind {
            AttackKind::HammerSingle => 2,
            AttackKind::HammerDouble => 4,
            // More rows than the 32-entry conflict table remembers.
            AttackKind::ConflictThrash => 48,
            AttackKind::BufferPollution => 2,
        };
        let store_fraction = match kind {
            AttackKind::ConflictThrash => 0.0,
            _ => 0.5,
        };
        Self {
            name: format!("{}-v{vault}", kind.as_str()),
            kind,
            vault,
            bank: 0,
            base_row: 64,
            aggressors,
            gap: 4,
            window: 4_096,
            store_fraction,
            seed,
        }
    }
}

/// A validated adversarial stream bound to one cube geometry.
pub struct AdversarialTrace {
    spec: AdversarialSpec,
    mapping: AddressMapping,
    /// Precomputed target rows (empty for pollution, which derives its
    /// rows from the op counter).
    rows: Vec<u32>,
    rows_per_bank: u64,
    blocks_per_row: u64,
    addr_bits: u32,
    /// Ops the pollution pattern dwells on one row pair.
    touches: u64,
    /// Ops issued so far — the sole address-state of the stream.
    ops: u64,
    rng: ChaCha8Rng,
}

impl AdversarialTrace {
    /// Validates `spec` against the cube geometry and the refresh window
    /// `t_refw` (CPU cycles; pass the converted tREFI) and builds the
    /// stream.
    ///
    /// # Errors
    /// A [`WorkloadError`] naming exactly what is wrong with the spec.
    pub fn new(
        spec: AdversarialSpec,
        hmc: &HmcGeometry,
        t_refw: u64,
    ) -> Result<Self, WorkloadError> {
        if spec.aggressors == 0 {
            return Err(WorkloadError::ZeroAggressors);
        }
        if spec.window == 0 {
            return Err(WorkloadError::ZeroWindow);
        }
        if t_refw > 0 && spec.window > t_refw {
            return Err(WorkloadError::WindowExceedsRefresh {
                window: spec.window,
                t_refw,
            });
        }
        if u32::from(spec.vault) >= hmc.vaults {
            return Err(WorkloadError::VaultOutOfRange {
                vault: spec.vault,
                vaults: hmc.vaults,
            });
        }
        if u32::from(spec.bank) >= hmc.banks_per_vault {
            return Err(WorkloadError::BankOutOfRange {
                bank: spec.bank,
                banks: hmc.banks_per_vault,
            });
        }
        let rows = match spec.kind {
            AttackKind::HammerSingle => {
                if spec.aggressors == 1 {
                    // A lone aggressor needs a far dummy row: same-row
                    // accesses would be open-row hits and never ACT.
                    vec![spec.base_row, spec.base_row + hmc.rows_per_bank / 2]
                } else {
                    (0..spec.aggressors)
                        .map(|i| spec.base_row + SINGLE_SIDED_SPACING * i)
                        .collect()
                }
            }
            AttackKind::HammerDouble => (0..spec.aggressors)
                .map(|i| spec.base_row + 2 * i)
                .collect(),
            AttackKind::ConflictThrash => (0..spec.aggressors).map(|i| spec.base_row + i).collect(),
            AttackKind::BufferPollution => Vec::new(),
        };
        let last_row = rows.iter().copied().max().unwrap_or(spec.base_row);
        if last_row >= hmc.rows_per_bank {
            return Err(WorkloadError::RowOutOfRange {
                last_row,
                rows: hmc.rows_per_bank,
            });
        }
        let mapping = hmc
            .address_mapping()
            .map_err(|e| WorkloadError::Geometry(e.to_string()))?;
        let rng = ChaCha8Rng::seed_from_u64(spec.seed ^ fxhash(&spec.name));
        Ok(Self {
            rows,
            rows_per_bank: u64::from(hmc.rows_per_bank),
            blocks_per_row: u64::from(hmc.blocks_per_row()),
            addr_bits: mapping.addr_bits(),
            touches: (spec.window / u64::from(spec.gap + 1)).max(2),
            ops: 0,
            rng,
            mapping,
            spec,
        })
    }

    /// The spec this stream realizes.
    #[must_use]
    pub fn spec(&self) -> &AdversarialSpec {
        &self.spec
    }

    /// Address of op `n` — a pure function, so the op counter is the
    /// whole address-state.
    fn addr_of(&self, n: u64) -> u64 {
        let (row, pass) = match self.spec.kind {
            AttackKind::BufferPollution => {
                // Dwell `touches` ops on rows (2p, 2p+1), then move to a
                // pair the stream will never revisit.
                let pair = n / self.touches;
                let within = n % self.touches;
                let row =
                    (u64::from(self.spec.base_row) + 2 * pair + within % 2) % self.rows_per_bank;
                (row as u32, within / 2)
            }
            _ => {
                let len = self.rows.len() as u64;
                (self.rows[(n % len) as usize], n / len)
            }
        };
        // Walk the columns; when the row is exhausted, alias bits above
        // the cube's address width make the next pass a fresh cache
        // line that still decodes to the same row.
        let col = (pass % self.blocks_per_row) as u16;
        let alias = pass / self.blocks_per_row;
        let d = DecodedAddr {
            vault: self.spec.vault,
            bank: self.spec.bank,
            row,
            col,
            offset: 0,
        };
        self.mapping.encode(&d).0 | (alias << self.addr_bits)
    }
}

impl TraceSource for AdversarialTrace {
    fn next_op(&mut self) -> TraceOp {
        let addr = PhysAddr(self.addr_of(self.ops));
        self.ops += 1;
        let kind = if self.spec.store_fraction > 0.0 && self.rng.gen_bool(self.spec.store_fraction)
        {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let gap = if self.spec.gap == 0 {
            0
        } else {
            self.rng.gen_range(0..=2 * self.spec.gap)
        };
        TraceOp {
            gap,
            mem: Some((addr, kind)),
        }
    }

    fn name(&self) -> &str {
        &self.spec.name
    }

    fn save_state(&self) -> Value {
        Value::Map(vec![
            ("rng".into(), self.rng.export_state().to_value()),
            ("ops".into(), self.ops.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let (key, counter, buf, idx): (Vec<u32>, u64, Vec<u32>, usize) = decode(state, "rng")?;
        self.rng = ChaCha8Rng::import_state(&key, counter, &buf, idx)
            .ok_or_else(|| de::Error::custom("snapshot: malformed ChaCha8 RNG state"))?;
        self.ops = decode(state, "ops")?;
        Ok(())
    }
}

/// Tiny stable string hash for seed derivation (deterministic across
/// platforms, unlike `DefaultHasher`).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;
    use std::collections::HashSet;

    const T_REFW: u64 = 23_400;

    fn hmc() -> HmcGeometry {
        SystemConfig::paper_default().hmc
    }

    fn trace(kind: AttackKind) -> AdversarialTrace {
        AdversarialTrace::new(AdversarialSpec::preset(kind, 3, 42), &hmc(), T_REFW).unwrap()
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let h = hmc();
        let mut s = AdversarialSpec::preset(AttackKind::HammerDouble, 0, 1);
        s.aggressors = 0;
        assert_eq!(
            AdversarialTrace::new(s, &h, T_REFW).err(),
            Some(WorkloadError::ZeroAggressors)
        );

        let mut s = AdversarialSpec::preset(AttackKind::HammerDouble, 0, 1);
        s.window = 0;
        assert_eq!(
            AdversarialTrace::new(s, &h, T_REFW).err(),
            Some(WorkloadError::ZeroWindow)
        );

        let mut s = AdversarialSpec::preset(AttackKind::HammerDouble, 0, 1);
        s.window = T_REFW + 1;
        assert!(matches!(
            AdversarialTrace::new(s, &h, T_REFW).err(),
            Some(WorkloadError::WindowExceedsRefresh { .. })
        ));

        let s = AdversarialSpec::preset(AttackKind::HammerDouble, h.vaults as u16, 1);
        assert!(matches!(
            AdversarialTrace::new(s, &h, T_REFW).err(),
            Some(WorkloadError::VaultOutOfRange { .. })
        ));

        let mut s = AdversarialSpec::preset(AttackKind::HammerSingle, 0, 1);
        s.bank = h.banks_per_vault as u16;
        assert!(matches!(
            AdversarialTrace::new(s, &h, T_REFW).err(),
            Some(WorkloadError::BankOutOfRange { .. })
        ));

        let mut s = AdversarialSpec::preset(AttackKind::ConflictThrash, 0, 1);
        s.base_row = h.rows_per_bank - 1;
        s.aggressors = 8;
        assert!(matches!(
            AdversarialTrace::new(s, &h, T_REFW).err(),
            Some(WorkloadError::RowOutOfRange { .. })
        ));

        // Errors render as human-readable text.
        let msg = WorkloadError::WindowExceedsRefresh {
            window: 2,
            t_refw: 1,
        }
        .to_string();
        assert!(msg.contains("refresh window"));
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = trace(AttackKind::HammerDouble);
        let mut b = trace(AttackKind::HammerDouble);
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = AdversarialTrace::new(
            AdversarialSpec::preset(AttackKind::HammerDouble, 3, 43),
            &hmc(),
            T_REFW,
        )
        .unwrap();
        let same = (0..200).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 200, "different seeds must jitter differently");
    }

    #[test]
    fn hammer_stays_on_its_aggressor_rows_and_defeats_caches() {
        let h = hmc();
        let mut t = trace(AttackKind::HammerDouble);
        let aggressor_rows: HashSet<u32> = t.rows.iter().copied().collect();
        let mut addrs = HashSet::new();
        let mut consecutive = None;
        let mut writes = 0u64;
        for _ in 0..4_000 {
            let (addr, kind) = t.next_op().mem.unwrap();
            if kind == AccessKind::Write {
                writes += 1;
            }
            assert!(addrs.insert(addr.0), "every access is a fresh cache line");
            let d = h.address_mapping().unwrap().decode(addr);
            assert_eq!(d.vault, 3);
            assert_eq!(d.bank, 0);
            assert!(aggressor_rows.contains(&d.row), "row {} strayed", d.row);
            // Back-to-back ops never repeat a row: each ACT closes the
            // previous aggressor.
            assert_ne!(consecutive, Some(d.row));
            consecutive = Some(d.row);
        }
        assert!(writes > 1_000, "hammer dirties rows ({writes} writes)");
    }

    #[test]
    fn single_sided_lone_aggressor_gets_a_dummy_row() {
        let h = hmc();
        let mut s = AdversarialSpec::preset(AttackKind::HammerSingle, 0, 7);
        s.aggressors = 1;
        let t = AdversarialTrace::new(s, &h, T_REFW).unwrap();
        assert_eq!(t.rows.len(), 2, "alternation partner forces precharges");
        assert_eq!(t.rows[1] - t.rows[0], h.rows_per_bank / 2);
    }

    #[test]
    fn thrash_cycles_more_rows_than_the_conflict_table() {
        let h = hmc();
        let mut t = trace(AttackKind::ConflictThrash);
        let mut rows = HashSet::new();
        for _ in 0..200 {
            let (addr, _) = t.next_op().mem.unwrap();
            rows.insert(h.address_mapping().unwrap().decode(addr).row);
        }
        assert_eq!(rows.len(), 48, "the full thrash set cycles before reuse");
    }

    #[test]
    fn pollution_abandons_pairs_and_dirties_them() {
        let h = hmc();
        let mut t = trace(AttackKind::BufferPollution);
        let touches = t.touches;
        let mut seen_rows: Vec<u32> = Vec::new();
        let mut writes = 0u64;
        let n = touches * 6;
        for i in 0..n {
            let (addr, kind) = t.next_op().mem.unwrap();
            let row = h.address_mapping().unwrap().decode(addr).row;
            if kind == AccessKind::Write {
                writes += 1;
            }
            // Rows from pairs older than the previous one never recur.
            if i / touches >= 2 {
                let stale_limit = t.spec.base_row + 2 * (i / touches - 1) as u32;
                assert!(row >= stale_limit, "row {row} resurrected at op {i}");
            }
            seen_rows.push(row);
        }
        let distinct: HashSet<_> = seen_rows.iter().collect();
        assert_eq!(distinct.len() as u64, 2 * (n / touches));
        assert!(
            writes > n / 4,
            "pollution must dirty rows ({writes} writes)"
        );
    }

    #[test]
    fn snapshot_resumes_identical_stream() {
        let mut a = trace(AttackKind::BufferPollution);
        for _ in 0..3_000 {
            a.next_op();
        }
        let state = a.save_state();
        let mut b = trace(AttackKind::BufferPollution);
        b.restore_state(&state).unwrap();
        for _ in 0..3_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert!(b.restore_state(&Value::Null).is_err());
    }
}
