//! The twelve eight-core multiprogrammed workloads of Table II.

use crate::generator::SpecTrace;
use crate::spec::profile_for;
use camps_cpu::trace::TraceSource;
use camps_types::error::SimError;
use serde::{Deserialize, Serialize};

/// Which intensity group a mix belongs to (Figure 5's x-axis grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MixClass {
    /// Four HM benchmarks, two copies each.
    HighMemory,
    /// Four LM benchmarks, two copies each.
    LowMemory,
    /// Mixed HM + LM.
    Mixed,
}

/// One Table II row: a named eight-core benchmark assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Workload id (HM1…MX4).
    pub id: &'static str,
    /// Intensity group.
    pub class: MixClass,
    /// Benchmark per core, exactly as printed in Table II.
    pub benchmarks: [&'static str; 8],
}

/// Table II, verbatim.
pub const ALL_MIXES: [Mix; 12] = [
    Mix {
        id: "HM1",
        class: MixClass::HighMemory,
        benchmarks: [
            "bwaves", "gems", "gcc", "lbm", "bwaves", "gcc", "lbm", "gems",
        ],
    },
    Mix {
        id: "HM2",
        class: MixClass::HighMemory,
        benchmarks: [
            "milc", "gems", "sphinx", "omnetpp", "sphinx", "milc", "omnetpp", "gems",
        ],
    },
    Mix {
        id: "HM3",
        class: MixClass::HighMemory,
        benchmarks: ["gcc", "mcf", "lbm", "milc", "mcf", "gcc", "milc", "lbm"],
    },
    Mix {
        id: "HM4",
        class: MixClass::HighMemory,
        benchmarks: [
            "sphinx", "gcc", "lbm", "bwaves", "sphinx", "bwaves", "lbm", "gcc",
        ],
    },
    Mix {
        id: "LM1",
        class: MixClass::LowMemory,
        benchmarks: [
            "cactus", "bzip2", "astar", "wrf", "wrf", "bzip2", "cactus", "astar",
        ],
    },
    Mix {
        id: "LM2",
        class: MixClass::LowMemory,
        benchmarks: [
            "tonto", "zeusmp", "h264ref", "astar", "zeusmp", "h264ref", "astar", "tonto",
        ],
    },
    Mix {
        id: "LM3",
        class: MixClass::LowMemory,
        benchmarks: [
            "bzip2", "zeusmp", "cactus", "tonto", "cactus", "zeusmp", "bzip2", "tonto",
        ],
    },
    Mix {
        id: "LM4",
        class: MixClass::LowMemory,
        benchmarks: [
            "astar", "tonto", "bzip2", "h264ref", "tonto", "astar", "bzip2", "h264ref",
        ],
    },
    Mix {
        id: "MX1",
        class: MixClass::Mixed,
        benchmarks: [
            "bwaves", "gcc", "cactus", "wrf", "cactus", "gcc", "wrf", "bwaves",
        ],
    },
    Mix {
        id: "MX2",
        class: MixClass::Mixed,
        benchmarks: [
            "gems", "sphinx", "tonto", "h264ref", "sphinx", "gems", "h264ref", "tonto",
        ],
    },
    Mix {
        id: "MX3",
        class: MixClass::Mixed,
        benchmarks: ["milc", "lbm", "wrf", "bzip2", "lbm", "bzip2", "milc", "wrf"],
    },
    Mix {
        id: "MX4",
        class: MixClass::Mixed,
        benchmarks: [
            "gcc", "bwaves", "bzip2", "astar", "bwaves", "gcc", "bzip2", "astar",
        ],
    },
];

impl Mix {
    /// Looks a mix up by id (`"HM1"` … `"MX4"`).
    #[must_use]
    pub fn by_id(id: &str) -> Option<&'static Mix> {
        ALL_MIXES.iter().find(|m| m.id == id)
    }

    /// Builds the eight per-core trace generators for this mix.
    ///
    /// Each core is confined to its own slice of the `capacity`-byte
    /// physical space (multiprogrammed workloads share nothing), and the
    /// two copies of each benchmark get different RNG streams via the core
    /// index.
    ///
    /// # Errors
    /// [`SimError::Setup`] if any benchmark name is not in Table II —
    /// possible only for hand-built [`Mix`] values, since the fields are
    /// public ([`ALL_MIXES`] is test-verified).
    pub fn build_traces(
        &self,
        capacity: u64,
        seed: u64,
    ) -> Result<Vec<Box<dyn TraceSource>>, SimError> {
        let slice = capacity / 8;
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(core, name)| {
                let profile = profile_for(name).ok_or_else(|| SimError::Setup {
                    reason: format!("mix {}: unknown Table II benchmark `{name}`", self.id),
                })?;
                let base = core as u64 * slice;
                Ok(Box::new(SpecTrace::new(
                    profile,
                    base,
                    slice,
                    seed ^ ((core as u64) << 32),
                )) as Box<dyn TraceSource>)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MemClass;
    use crate::spec::profile_for;

    #[test]
    fn twelve_mixes_with_four_per_class() {
        assert_eq!(ALL_MIXES.len(), 12);
        for class in [MixClass::HighMemory, MixClass::LowMemory, MixClass::Mixed] {
            assert_eq!(ALL_MIXES.iter().filter(|m| m.class == class).count(), 4);
        }
    }

    #[test]
    fn each_mix_is_four_benchmarks_twice() {
        for mix in &ALL_MIXES {
            let mut names: Vec<_> = mix.benchmarks.to_vec();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 4, "{}: must be 4 distinct benchmarks", mix.id);
            for n in names {
                let copies = mix.benchmarks.iter().filter(|&&b| b == n).count();
                assert_eq!(copies, 2, "{}: {n} must appear exactly twice", mix.id);
            }
        }
    }

    #[test]
    fn class_composition_matches_table2() {
        for mix in &ALL_MIXES {
            let highs = mix
                .benchmarks
                .iter()
                .filter(|b| profile_for(b).unwrap().class == MemClass::High)
                .count();
            match mix.class {
                MixClass::HighMemory => assert_eq!(highs, 8, "{}", mix.id),
                MixClass::LowMemory => assert_eq!(highs, 0, "{}", mix.id),
                MixClass::Mixed => assert_eq!(highs, 4, "{}: MX mixes are half HM", mix.id),
            }
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(Mix::by_id("HM3").unwrap().benchmarks[1], "mcf");
        assert!(Mix::by_id("ZZ9").is_none());
    }

    #[test]
    fn traces_are_sliced_and_named() {
        let mix = Mix::by_id("MX1").unwrap();
        let traces = mix.build_traces(4 << 30, 7).unwrap();
        assert_eq!(traces.len(), 8);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.name(), mix.benchmarks[i]);
        }
    }

    #[test]
    fn duplicate_benchmarks_get_distinct_streams() {
        let mix = Mix::by_id("HM1").unwrap();
        let mut traces = mix.build_traces(4 << 30, 7).unwrap();
        // Cores 0 and 4 both run bwaves but in different slices with
        // different seeds.
        let a = traces[0].next_op();
        let b = traces[4].next_op();
        let (addr_a, _) = a.mem.unwrap();
        let (addr_b, _) = b.mem.unwrap();
        assert!(addr_a.0 < (4u64 << 30) / 8);
        assert!(addr_b.0 >= 4 * ((4u64 << 30) / 8));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    #[test]
    fn hand_built_mix_with_bad_name_is_a_setup_error() {
        let mix = Mix {
            id: "XX1",
            class: MixClass::Mixed,
            benchmarks: ["bwaves"; 8].map(|_| "doom3"),
        };
        let Err(err) = mix.build_traces(4 << 30, 7) else {
            panic!("bad benchmark name must be rejected");
        };
        assert!(err.to_string().contains("doom3"));
    }
}
