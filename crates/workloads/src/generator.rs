//! The synthetic trace generator.

use crate::profile::BenchProfile;
use camps_cpu::trace::{TraceOp, TraceSource};
use camps_types::addr::PhysAddr;
use camps_types::request::AccessKind;
use camps_types::snapshot::decode;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::value::Value;
use serde::{de, Serialize as _};

/// A deterministic, seedable trace generator realizing a
/// [`BenchProfile`] inside a private physical-address slice.
pub struct SpecTrace {
    profile: BenchProfile,
    base: u64,
    span: u64,
    rng: ChaCha8Rng,
    /// Per-stream byte cursors for the streaming engine.
    stream_cursors: Vec<u64>,
    /// Cursor of the strided engine, in bytes.
    stride_cursor: u64,
    /// Stream currently being walked and ops left in its burst.
    active_stream: usize,
    burst_left: u32,
    /// Base of the current drifting region.
    region_base: u64,
    /// Accesses left before the region drifts.
    region_left: u32,
    /// Cumulative pattern thresholds scaled to u32 for cheap sampling.
    thresholds: [u32; 5],
    /// Average gap between memory ops (expected value of the gap draw).
    mean_gap: f64,
}

impl SpecTrace {
    /// Creates the generator for `profile`, confined to the physical range
    /// `[base, base + span)`, deterministically seeded.
    ///
    /// # Panics
    /// Panics if the profile is invalid or the slice is smaller than the
    /// working set.
    #[must_use]
    pub fn new(profile: BenchProfile, base: u64, span: u64, seed: u64) -> Self {
        profile.validate();
        assert!(
            span >= profile.working_set,
            "{}: slice ({span} B) smaller than working set",
            profile.name
        );
        // Distinct streams start spread across the working set.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ fxhash(profile.name));
        // Random start positions: real programs' arrays do not march
        // through the same banks in lockstep, and aligned cursors would
        // manufacture worst-case conflict pathologies.
        let ws = profile.working_set;
        let stream_cursors = (0..profile.streams).map(|_| rng.next_u64() % ws).collect();
        let w = profile.weights;
        let total = w.total();
        let scale = |x: f64| (x / total * f64::from(u32::MAX)) as u32;
        let thresholds = [
            scale(w.stream),
            scale(w.stream + w.stride),
            scale(w.stream + w.stride + w.random),
            scale(w.stream + w.stride + w.random + w.region),
            u32::MAX,
        ];
        let mean_gap = 1.0 / profile.mem_fraction - 1.0;
        let stride_cursor = rng.next_u64() % ws;
        let region_base = rng.next_u64() % (ws - profile.region_bytes + 1);
        Self {
            profile,
            base,
            span,
            rng,
            stream_cursors,
            stride_cursor,
            active_stream: 0,
            burst_left: profile.stream_burst,
            region_base,
            region_left: profile.region_dwell,
            thresholds,
            mean_gap,
        }
    }

    /// The profile this generator realizes.
    #[must_use]
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    fn next_addr(&mut self) -> u64 {
        let ws = self.profile.working_set;
        let draw = self.rng.next_u32();
        let offset = if draw < self.thresholds[0] {
            // Streaming: walk one stream in bursts (real sweeps touch a
            // row's lines densely before the next array takes over).
            if self.burst_left == 0 {
                self.active_stream = (self.rng.next_u32() as usize) % self.stream_cursors.len();
                self.burst_left = self.profile.stream_burst;
            }
            self.burst_left -= 1;
            let cur = &mut self.stream_cursors[self.active_stream];
            *cur = (*cur + 8) % ws;
            *cur
        } else if draw < self.thresholds[1] {
            // Strided: jump whole blocks.
            self.stride_cursor =
                (self.stride_cursor + u64::from(self.profile.stride_blocks) * 64) % ws;
            self.stride_cursor
        } else if draw < self.thresholds[2] {
            // Random / pointer chase: any 8 B word of the working set.
            (self.rng.next_u64() % (ws / 8)) * 8
        } else if draw < self.thresholds[3] {
            // Drifting region: random word inside the current region; the
            // region relocates every `region_dwell` accesses.
            if self.region_left == 0 {
                self.region_base = self.rng.next_u64() % (ws - self.profile.region_bytes + 1);
                self.region_left = self.profile.region_dwell;
            }
            self.region_left -= 1;
            self.region_base + (self.rng.next_u64() % (self.profile.region_bytes / 8)) * 8
        } else {
            // Hot-set reuse.
            (self.rng.next_u64() % (self.profile.hot_set / 8)) * 8
        };
        self.base + offset % self.span
    }

    fn next_gap(&mut self) -> u32 {
        // Geometric-ish draw with the right mean: uniform in
        // [0, 2·mean_gap], which keeps bursts and lulls without heavy
        // distribution machinery.
        let hi = (2.0 * self.mean_gap).ceil() as u32;
        if hi == 0 {
            0
        } else {
            self.rng.gen_range(0..=hi)
        }
    }
}

impl TraceSource for SpecTrace {
    fn next_op(&mut self) -> TraceOp {
        let gap = self.next_gap();
        let addr = PhysAddr(self.next_addr());
        let kind = if self.rng.gen_bool(self.profile.store_fraction) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        TraceOp {
            gap,
            mem: Some((addr, kind)),
        }
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn save_state(&self) -> Value {
        // `thresholds`/`mean_gap` are derived from the profile and
        // `base`/`span` are construction inputs — only the mutable
        // cursors and the RNG stream position are captured.
        Value::Map(vec![
            ("rng".into(), self.rng.export_state().to_value()),
            ("stream_cursors".into(), self.stream_cursors.to_value()),
            ("stride_cursor".into(), self.stride_cursor.to_value()),
            ("active_stream".into(), self.active_stream.to_value()),
            ("burst_left".into(), self.burst_left.to_value()),
            ("region_base".into(), self.region_base.to_value()),
            ("region_left".into(), self.region_left.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let (key, counter, buf, idx): (Vec<u32>, u64, Vec<u32>, usize) = decode(state, "rng")?;
        self.rng = ChaCha8Rng::import_state(&key, counter, &buf, idx)
            .ok_or_else(|| de::Error::custom("snapshot: malformed ChaCha8 RNG state"))?;
        let stream_cursors: Vec<u64> = decode(state, "stream_cursors")?;
        if stream_cursors.len() != self.stream_cursors.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} stream cursors for a {}-stream profile",
                stream_cursors.len(),
                self.stream_cursors.len()
            )));
        }
        self.stream_cursors = stream_cursors;
        self.stride_cursor = decode(state, "stride_cursor")?;
        self.active_stream = decode(state, "active_stream")?;
        self.burst_left = decode(state, "burst_left")?;
        self.region_base = decode(state, "region_base")?;
        self.region_left = decode(state, "region_left")?;
        if self.active_stream >= self.stream_cursors.len() {
            return Err(de::Error::custom(format!(
                "snapshot: active stream {} out of range",
                self.active_stream
            )));
        }
        Ok(())
    }
}

/// Tiny stable string hash for seed derivation (deterministic across
/// platforms, unlike `DefaultHasher`).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MemClass, PatternWeights};

    fn profile(weights: PatternWeights) -> BenchProfile {
        BenchProfile {
            name: "synthetic",
            mem_fraction: 0.25,
            store_fraction: 0.3,
            weights,
            streams: 4,
            stride_blocks: 8,
            working_set: 32 << 20,
            hot_set: 16 << 10,
            region_bytes: 2 << 20,
            region_dwell: 4096,
            stream_burst: 128,
            class: MemClass::High,
        }
    }

    fn stream_only() -> PatternWeights {
        PatternWeights {
            stream: 1.0,
            stride: 0.0,
            random: 0.0,
            reuse: 0.0,
            region: 0.0,
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 42);
        let mut b = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 1);
        let mut b = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 2);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100);
    }

    #[test]
    fn addresses_stay_in_slice() {
        let base = 1u64 << 30;
        let span = 64 << 20;
        let mut t = SpecTrace::new(
            profile(PatternWeights {
                stream: 1.0,
                stride: 1.0,
                random: 1.0,
                reuse: 1.0,
                region: 1.0,
            }),
            base,
            span,
            7,
        );
        for _ in 0..10_000 {
            let op = t.next_op();
            let (addr, _) = op.mem.unwrap();
            assert!(
                addr.0 >= base && addr.0 < base + span,
                "addr {addr} out of slice"
            );
        }
    }

    #[test]
    fn mem_fraction_is_respected() {
        let mut t = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 3);
        let (mut instrs, mut mems) = (0u64, 0u64);
        for _ in 0..20_000 {
            let op = t.next_op();
            instrs += op.instructions();
            mems += 1;
        }
        let frac = mems as f64 / instrs as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "memory fraction {frac} vs target 0.25"
        );
    }

    #[test]
    fn store_fraction_is_respected() {
        let mut t = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 3);
        let stores = (0..20_000)
            .filter(|_| matches!(t.next_op().mem, Some((_, AccessKind::Write))))
            .count();
        let frac = stores as f64 / 20_000.0;
        assert!(
            (frac - 0.3).abs() < 0.02,
            "store fraction {frac} vs target 0.3"
        );
    }

    #[test]
    fn streaming_has_block_level_spatial_locality() {
        // 8 B steps → 8 consecutive accesses per 64 B block per stream.
        let mut p = profile(stream_only());
        p.streams = 1;
        let mut t = SpecTrace::new(p, 0, 64 << 20, 3);
        let mut block_changes = 0;
        let mut last_block = u64::MAX;
        for _ in 0..8_000 {
            let (addr, _) = t.next_op().mem.unwrap();
            let block = addr.0 / 64;
            if block != last_block {
                block_changes += 1;
                last_block = block;
            }
        }
        // ~1000 block changes for 8000 accesses.
        assert!(
            (900..1100).contains(&block_changes),
            "changes {block_changes}"
        );
    }

    #[test]
    fn reuse_engine_stays_in_hot_set() {
        let w = PatternWeights {
            stream: 0.0,
            stride: 0.0,
            random: 0.0,
            reuse: 1.0,
            region: 0.0,
        };
        let mut t = SpecTrace::new(profile(w), 0, 64 << 20, 3);
        for _ in 0..5_000 {
            let (addr, _) = t.next_op().mem.unwrap();
            assert!(addr.0 < 16 << 10);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than working set")]
    fn slice_must_hold_working_set() {
        let _ = SpecTrace::new(profile(stream_only()), 0, 1 << 20, 3);
    }

    #[test]
    fn snapshot_resumes_identical_stream() {
        // All five pattern engines active so every cursor is exercised.
        let w = PatternWeights {
            stream: 1.0,
            stride: 1.0,
            random: 1.0,
            reuse: 1.0,
            region: 1.0,
        };
        let mut a = SpecTrace::new(profile(w), 0, 64 << 20, 42);
        for _ in 0..5_000 {
            a.next_op();
        }
        let state = a.save_state();
        let mut b = SpecTrace::new(profile(w), 0, 64 << 20, 42);
        b.restore_state(&state).unwrap();
        for _ in 0..5_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_profile() {
        let mut a = SpecTrace::new(profile(stream_only()), 0, 64 << 20, 42);
        let state = a.save_state();
        let mut p = profile(stream_only());
        p.streams = 2; // different stream count than the snapshot
        let mut b = SpecTrace::new(p, 0, 64 << 20, 42);
        let err = b.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("stream cursors"));
        assert!(a.restore_state(&Value::Null).is_err());
    }
}
