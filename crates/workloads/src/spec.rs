//! Profiles for the 15 SPEC CPU2006 benchmarks used in Table II.
//!
//! Each profile is a documented caricature of the benchmark's published
//! memory behavior (working-set size, dominant access pattern, intensity).
//! The absolute parameters are calibrated so the L3 MPKI measured through
//! this repository's own cache hierarchy lands in the paper's class:
//! HM ⇒ MPKI ≥ 20, LM ⇒ 1 ≤ MPKI < 20 (§4.1). The `mpki_classification`
//! test in this module enforces that.

use crate::profile::{BenchProfile, MemClass, PatternWeights};

/// All benchmarks appearing in Table II.
pub const BENCHMARKS: [&str; 15] = [
    "bwaves", "gems", "gcc", "lbm", "milc", "sphinx", "omnetpp", "mcf", // HM
    "cactus", "bzip2", "astar", "wrf", "tonto", "zeusmp", "h264ref", // LM
];

/// Looks up the profile for a Table II benchmark name, `None` for names
/// outside Table II (callers with static, test-verified mix data can
/// safely `expect`; callers taking user input get a checkable miss).
#[must_use]
pub fn profile_for(name: &str) -> Option<BenchProfile> {
    let w = |stream: f64, stride: f64, random: f64, region: f64, reuse: f64| PatternWeights {
        stream,
        stride,
        random,
        reuse,
        region,
    };
    let profile = match name {
        // ----- High memory intensity (MPKI ≥ 20) --------------------
        // bwaves: spectral CFD; long unit-stride sweeps over big arrays.
        "bwaves" => BenchProfile {
            name: "bwaves",
            mem_fraction: 0.30,
            store_fraction: 0.25,
            weights: w(0.46, 0.0, 0.008, 0.15, 0.382),
            streams: 6,
            stride_blocks: 1,
            working_set: 192 << 20,
            hot_set: 32 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // GemsFDTD: 3-D finite difference; streams plus plane strides.
        "gems" => BenchProfile {
            name: "gems",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.34, 0.05, 0.008, 0.15, 0.452),
            streams: 8,
            stride_blocks: 16,
            working_set: 192 << 20,
            hot_set: 32 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // gcc: irregular but large-footprint IR walks (the paper's HM
        // mixes include it, so the aggressive inputs are modeled).
        "gcc" => BenchProfile {
            name: "gcc",
            mem_fraction: 0.30,
            store_fraction: 0.35,
            weights: w(0.11, 0.0, 0.03, 0.145, 0.715),
            streams: 2,
            stride_blocks: 2,
            working_set: 96 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // lbm: lattice-Boltzmann; the classic streaming memory hog.
        "lbm" => BenchProfile {
            name: "lbm",
            mem_fraction: 0.35,
            store_fraction: 0.40,
            weights: w(0.50, 0.0, 0.008, 0.15, 0.342),
            streams: 4,
            stride_blocks: 1,
            working_set: 256 << 20,
            hot_set: 16 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // milc: lattice QCD; large gather-ish traffic.
        "milc" => BenchProfile {
            name: "milc",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.19, 0.0, 0.04, 0.14, 0.63),
            streams: 4,
            stride_blocks: 4,
            working_set: 160 << 20,
            hot_set: 32 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // sphinx3: speech decoding; mixed scans and hash probes.
        "sphinx" => BenchProfile {
            name: "sphinx",
            mem_fraction: 0.30,
            store_fraction: 0.15,
            weights: w(0.19, 0.0, 0.03, 0.13, 0.65),
            streams: 4,
            stride_blocks: 2,
            working_set: 96 << 20,
            hot_set: 48 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // omnetpp: discrete-event simulation; pointer-heavy heap walks.
        "omnetpp" => BenchProfile {
            name: "omnetpp",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.0, 0.0, 0.045, 0.16, 0.795),
            streams: 1,
            stride_blocks: 1,
            working_set: 128 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // mcf: single-depot vehicle scheduling; the canonical pointer
        // chaser and the most memory-bound benchmark in the suite.
        "mcf" => BenchProfile {
            name: "mcf",
            mem_fraction: 0.35,
            store_fraction: 0.25,
            weights: w(0.0, 0.0, 0.09, 0.20, 0.71),
            streams: 1,
            stride_blocks: 1,
            working_set: 256 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::High,
        },
        // ----- Low memory intensity (1 ≤ MPKI < 20) -----------------
        // cactusADM: numerical relativity stencil, cache-friendlier tile
        // sizes than lbm.
        "cactus" => BenchProfile {
            name: "cactus",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.10, 0.0, 0.004, 0.07, 0.826),
            streams: 4,
            stride_blocks: 1,
            working_set: 64 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        // bzip2: compression over buffers that mostly fit on chip.
        "bzip2" => BenchProfile {
            name: "bzip2",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.0, 0.0, 0.006, 0.05, 0.944),
            streams: 1,
            stride_blocks: 1,
            working_set: 32 << 20,
            hot_set: 128 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        // astar: path-finding over moderate graphs.
        "astar" => BenchProfile {
            name: "astar",
            mem_fraction: 0.30,
            store_fraction: 0.25,
            weights: w(0.0, 0.0, 0.012, 0.07, 0.918),
            streams: 1,
            stride_blocks: 1,
            working_set: 48 << 20,
            hot_set: 96 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        // wrf: weather model; stencil tiles tuned to caches.
        "wrf" => BenchProfile {
            name: "wrf",
            mem_fraction: 0.25,
            store_fraction: 0.30,
            weights: w(0.09, 0.0, 0.004, 0.06, 0.846),
            streams: 4,
            stride_blocks: 1,
            working_set: 64 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        // tonto: quantum chemistry; compute-bound.
        "tonto" => BenchProfile {
            name: "tonto",
            mem_fraction: 0.25,
            store_fraction: 0.30,
            weights: w(0.06, 0.0, 0.002, 0.03, 0.908),
            streams: 2,
            stride_blocks: 1,
            working_set: 32 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        // zeusmp: astrophysical CFD; strided plane sweeps, modest rate.
        "zeusmp" => BenchProfile {
            name: "zeusmp",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.11, 0.01, 0.004, 0.05, 0.826),
            streams: 4,
            stride_blocks: 16,
            working_set: 64 << 20,
            hot_set: 64 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        // h264ref: video encoding; small sliding windows.
        "h264ref" => BenchProfile {
            name: "h264ref",
            mem_fraction: 0.30,
            store_fraction: 0.30,
            weights: w(0.04, 0.0, 0.004, 0.04, 0.916),
            streams: 2,
            stride_blocks: 1,
            working_set: 32 << 20,
            hot_set: 96 << 10,
            region_bytes: 1 << 20,
            region_dwell: 16000,
            stream_burst: 128,
            class: MemClass::Low,
        },
        _ => return None,
    };
    Some(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SpecTrace;
    use camps_cache::hierarchy::{CacheHierarchy, HierarchyOutcome};
    use camps_cpu::trace::TraceSource;
    use camps_obs::Profiler;
    use camps_types::config::SystemConfig;

    #[test]
    fn all_benchmarks_have_valid_profiles() {
        for name in BENCHMARKS {
            profile_for(name).unwrap().validate();
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(profile_for("doom3").is_none());
    }

    #[test]
    fn benchmarks_cover_every_mix_entry() {
        use crate::mixes::ALL_MIXES;
        for mix in &ALL_MIXES {
            for b in &mix.benchmarks {
                assert!(BENCHMARKS.contains(b), "{b} missing from BENCHMARKS");
            }
        }
    }

    #[test]
    fn streaming_benchmarks_have_stream_weight() {
        for name in ["bwaves", "lbm", "gems"] {
            assert!(
                profile_for(name).unwrap().weights.stream >= 0.3,
                "{name} must stream"
            );
        }
        for name in ["mcf", "omnetpp"] {
            assert!(
                profile_for(name).unwrap().weights.stream == 0.0,
                "{name} is a pointer chaser, not a streamer"
            );
        }
    }

    #[test]
    fn working_sets_fit_a_core_slice() {
        // Each core owns 1/8 of the 4 GiB cube.
        for name in BENCHMARKS {
            assert!(
                profile_for(name).unwrap().working_set <= 512 << 20,
                "{name}"
            );
        }
    }

    #[test]
    fn hm_working_sets_dwarf_the_l3() {
        for name in ["bwaves", "gems", "lbm", "milc", "mcf"] {
            assert!(profile_for(name).unwrap().working_set >= 96 << 20, "{name}");
        }
    }

    #[test]
    fn hm_set_matches_paper_grouping() {
        for name in [
            "bwaves", "gems", "gcc", "lbm", "milc", "sphinx", "omnetpp", "mcf",
        ] {
            assert_eq!(
                profile_for(name).unwrap().class,
                crate::profile::MemClass::High,
                "{name}"
            );
        }
        for name in [
            "cactus", "bzip2", "astar", "wrf", "tonto", "zeusmp", "h264ref",
        ] {
            assert_eq!(
                profile_for(name).unwrap().class,
                crate::profile::MemClass::Low,
                "{name}"
            );
        }
    }

    /// Measures each generator's L3 MPKI through the real cache hierarchy
    /// (functional mode) and checks the §4.1 classification: HM ⇒ ≥ 20,
    /// LM ⇒ 1 ≤ MPKI < 20.
    #[test]
    fn mpki_classification() {
        let cfg = SystemConfig::paper_default();
        for name in BENCHMARKS {
            let p = profile_for(name).unwrap();
            let mut t = SpecTrace::new(p, 0, 512 << 20, 1234);
            let mut h = CacheHierarchy::new(&cfg);
            let mut wb = Vec::new();
            let (mut instrs, mut misses) = (0u64, 0u64);
            // Warm up 100k instructions, then measure 400k.
            while instrs < 100_000 {
                let op = t.next_op();
                instrs += op.instructions();
                if let Some((addr, kind)) = op.mem {
                    if let HierarchyOutcome::Miss { .. } =
                        h.access(0, addr, !kind.is_read(), &mut wb, &mut Profiler::off())
                    {
                        h.fill(0, addr, !kind.is_read(), &mut wb);
                    }
                }
            }
            instrs = 0;
            while instrs < 400_000 {
                let op = t.next_op();
                instrs += op.instructions();
                if let Some((addr, kind)) = op.mem {
                    if let HierarchyOutcome::Miss { .. } =
                        h.access(0, addr, !kind.is_read(), &mut wb, &mut Profiler::off())
                    {
                        misses += 1;
                        h.fill(0, addr, !kind.is_read(), &mut wb);
                    }
                }
            }
            let mpki = misses as f64 * 1000.0 / instrs as f64;
            match p.class {
                MemClass::High => {
                    assert!(
                        mpki >= 20.0,
                        "{name}: HM benchmark measured MPKI {mpki:.1} < 20"
                    )
                }
                MemClass::Low => assert!(
                    (1.0..20.0).contains(&mpki),
                    "{name}: LM benchmark measured MPKI {mpki:.1} outside [1, 20)"
                ),
            }
        }
    }
}
