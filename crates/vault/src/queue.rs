//! Vault request queues.

use camps_dram::bank::AccessCategory;
use camps_types::addr::DecodedAddr;
use camps_types::clock::Cycle;
use camps_types::request::MemRequest;
use serde::{Deserialize, Serialize};

/// A demand request waiting in a vault's read or write queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Queued {
    /// The request itself.
    pub req: MemRequest,
    /// Its decoded vault-local coordinates.
    pub decoded: DecodedAddr,
    /// Cycle it entered this queue (FCFS age; FR-FCFS tie-break).
    pub arrived: Cycle,
    /// Row-buffer outcome, recorded when the scheduler first touches the
    /// request (the paper's hit/miss/conflict classification, Figure 6).
    pub category: Option<AccessCategory>,
    /// True once an ACT has been issued on behalf of this request.
    pub activated: bool,
}

impl Queued {
    /// Wraps a freshly arrived request.
    #[must_use]
    pub fn new(req: MemRequest, decoded: DecodedAddr, arrived: Cycle) -> Self {
        Self {
            req,
            decoded,
            arrived,
            category: None,
            activated: false,
        }
    }

    /// Bank this request targets.
    #[must_use]
    pub fn bank(&self) -> usize {
        usize::from(self.decoded.bank)
    }

    /// Row this request targets.
    #[must_use]
    pub fn row(&self) -> u32 {
        self.decoded.row
    }
}

/// Counts queue entries (other than `except`) that target `bank`/`row` —
/// the read-queue reuse signal BASE-HIT keys on.
#[must_use]
pub fn queued_same_row(queue: &[Queued], bank: u16, row: u32, except: Option<usize>) -> u32 {
    queue
        .iter()
        .enumerate()
        .filter(|(i, q)| Some(*i) != except && q.decoded.bank == bank && q.decoded.row == row)
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::addr::PhysAddr;
    use camps_types::request::{AccessKind, CoreId, RequestId};

    fn q(bank: u16, row: u32, arrived: Cycle) -> Queued {
        Queued::new(
            MemRequest {
                id: RequestId(arrived),
                addr: PhysAddr(0),
                kind: AccessKind::Read,
                core: CoreId(0),
                created_at: arrived,
            },
            DecodedAddr {
                vault: 0,
                bank,
                row,
                col: 0,
                offset: 0,
            },
            arrived,
        )
    }

    #[test]
    fn fresh_entry_is_unclassified() {
        let e = q(3, 9, 5);
        assert_eq!(e.category, None);
        assert!(!e.activated);
        assert_eq!(e.bank(), 3);
        assert_eq!(e.row(), 9);
    }

    #[test]
    fn queued_same_row_counts_matches_only() {
        let queue = vec![q(0, 1, 0), q(0, 1, 1), q(0, 2, 2), q(1, 1, 3)];
        assert_eq!(queued_same_row(&queue, 0, 1, None), 2);
        assert_eq!(queued_same_row(&queue, 0, 1, Some(0)), 1);
        assert_eq!(queued_same_row(&queue, 0, 9, None), 0);
        assert_eq!(queued_same_row(&queue, 1, 1, Some(3)), 0);
    }
}
