//! The vault controller proper.

use crate::queue::{queued_same_row, Queued};
use crate::stats::VaultStats;
use camps_dram::bank::{AccessCategory, Bank};
use camps_dram::rowguard::RowGuard;
use camps_dram::timing::TimingCpu;
use camps_dram::window::ActWindow;
use camps_obs::{Comp, Point, Profiler, TraceHandle};
use camps_prefetch::buffer::PrefetchBuffer;
use camps_prefetch::scheme::{PfAction, PrefetchScheme, SchemeKind};
use camps_types::addr::{DecodedAddr, RowKey};
use camps_types::clock::Cycle;
use camps_types::config::{PagePolicy, SchedulerKind, SystemConfig};
use camps_types::error::{ConfigError, VaultSnapshot};
use camps_types::request::{AccessKind, MemRequest, MemResponse, ServiceSource};
use camps_types::snapshot::{decode, field, Snapshot};
use camps_types::wake::{fold_wake, Wake};
use serde::value::Value;
use serde::{de, Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// If a request has waited this long, FR-FCFS stops protecting the open
/// row and lets the conflict precharge proceed (starvation guard).
const STARVATION_LIMIT: Cycle = 5_000;

/// Writeback queue depth at which writebacks stop yielding to demand.
const WRITEBACK_PRESSURE: usize = 8;

/// A whole-row prefetch in flight on one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct FetchJob {
    key: RowKey,
    precharge_after: bool,
    /// Distinct lines served from the row pre-fetch (seeds §3.2 utilization).
    seed_util: u32,
    /// Background lookahead fetch: the row is not open and must be
    /// activated by the fetch engine itself (MMD's degree > 1 rows).
    needs_activate: bool,
    /// When the job was created (background jobs expire).
    spawned: Cycle,
    /// Bus slots of the transfer still to stream. The row-wide TSV copy
    /// is interruptible: it is granted the bus one burst-slot at a time,
    /// and demand bursts win the bus between slots.
    chunks_left: u32,
    /// `None` until the final block's completion cycle is known.
    done: Option<Cycle>,
}

/// Background lookahead fetches that cannot start within this window are
/// abandoned (the bank stayed busy with demand).
const LOOKAHEAD_EXPIRY: Cycle = 4_000;

/// A dirty buffer eviction being written back to its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct WritebackJob {
    key: RowKey,
    /// `None` until the TSV transfer starts; then its completion cycle.
    done: Option<Cycle>,
}

/// One HMC vault: banks + queues + scheduler + prefetch engine.
pub struct VaultController {
    id: u16,
    timing: TimingCpu,
    banks: Vec<Bank>,
    window: ActWindow,
    scheduler: SchedulerKind,
    page_policy: PagePolicy,
    read_cap: usize,
    write_cap: usize,
    rows_per_bank: u32,
    /// Blocks per row (push packet expansion).
    blocks_per_row: u32,
    /// Bus slots (bursts) a whole-row transfer occupies in total.
    fetch_chunks: u32,
    /// §2.4 counter-design switch: push prefetched blocks to the LLC.
    push_to_llc: bool,
    push_seq: u64,
    mapping: camps_types::addr::AddressMapping,
    drain_high: usize,
    drain_low: usize,
    draining: bool,
    read_q: Vec<Queued>,
    write_q: Vec<Queued>,
    buffer: PrefetchBuffer,
    scheme: Box<dyn PrefetchScheme>,
    fetches: Vec<FetchJob>,
    writeback_q: VecDeque<RowKey>,
    active_writeback: Option<WritebackJob>,
    want_precharge: Vec<bool>,
    /// The vault's shared TSV data bus is occupied until this cycle. All
    /// data movement — 64 B bursts and whole-row transfers, demand or
    /// prefetch — serializes here; this is what makes useless row fetches
    /// cost real demand bandwidth (the effect the paper's BASE suffers).
    bus_free: Cycle,
    /// Next all-bank refresh deadline (staggered per vault; 0 = disabled).
    next_refresh: Cycle,
    /// A refresh is due: stop opening rows, close the vault, refresh.
    refresh_pending: bool,
    responses: BinaryHeap<Reverse<(Cycle, u64, MemResponse)>>,
    resp_seq: u64,
    hit_latency: Cycle,
    stats: VaultStats,
    /// Per-row activation counters for the current refresh window
    /// (RowHammer accounting; always on, observation-only by default).
    rowguard: RowGuard,
    /// TRR-style mitigation knob and threshold (derived configuration —
    /// rebuilt by the constructor, not snapshotted).
    mitigate: bool,
    mitigate_threshold: u32,
    /// Observability hooks. Runtime pacing only — like `Engine`, this is
    /// deliberately excluded from [`Snapshot`] so checkpoints stay
    /// byte-identical with and without observability.
    obs: TraceHandle,
}

impl VaultController {
    /// Builds vault `id` from the system configuration, running the given
    /// prefetching scheme.
    ///
    /// # Errors
    /// Propagates [`ConfigError`] from an invalid cube geometry.
    pub fn new(id: u16, cfg: &SystemConfig, scheme_kind: SchemeKind) -> Result<Self, ConfigError> {
        let timing = TimingCpu::from_config(&cfg.dram, cfg.cpu.freq_hz);
        let banks = (0..cfg.hmc.banks_per_vault).map(|_| Bank::new()).collect();
        let scheme = scheme_kind.build(&cfg.prefetch, cfg.hmc.banks_per_vault);
        let buffer = PrefetchBuffer::new(
            cfg.prefetch.entries,
            cfg.hmc.blocks_per_row(),
            scheme.replacement(),
        );
        Ok(Self {
            id,
            banks,
            window: ActWindow::new(timing.t_rrd, timing.t_faw),
            timing,
            scheduler: cfg.vault.scheduler,
            page_policy: cfg.vault.page_policy,
            read_cap: cfg.vault.read_queue as usize,
            write_cap: cfg.vault.write_queue as usize,
            rows_per_bank: cfg.hmc.rows_per_bank,
            blocks_per_row: cfg.hmc.blocks_per_row(),
            fetch_chunks: (timing.t_row_transfer / timing.t_burst.max(1)).max(1) as u32,
            push_to_llc: cfg.prefetch.push_to_llc,
            push_seq: 0,
            mapping: cfg.hmc.address_mapping()?,
            drain_high: cfg.vault.write_drain_high as usize,
            drain_low: cfg.vault.write_drain_low as usize,
            draining: false,
            read_q: Vec::with_capacity(cfg.vault.read_queue as usize),
            write_q: Vec::with_capacity(cfg.vault.write_queue as usize),
            buffer,
            scheme,
            fetches: Vec::new(),
            writeback_q: VecDeque::new(),
            active_writeback: None,
            want_precharge: vec![false; cfg.hmc.banks_per_vault as usize],
            bus_free: 0,
            // Stagger refresh deadlines across vaults so the cube never
            // refreshes everywhere at once.
            next_refresh: if timing.t_refi == 0 {
                0
            } else {
                timing.t_refi + (timing.t_refi / cfg.hmc.vaults.max(1) as u64) * u64::from(id)
            },
            refresh_pending: false,
            responses: BinaryHeap::new(),
            resp_seq: 0,
            hit_latency: cfg.prefetch.hit_latency,
            stats: VaultStats::new(),
            rowguard: RowGuard::new(),
            mitigate: cfg.rowguard.enable_mitigation,
            mitigate_threshold: cfg.rowguard.threshold,
            obs: TraceHandle::disabled(),
        })
    }

    /// This vault's index.
    #[must_use]
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Installs the observability hooks this vault stamps into.
    pub fn set_obs(&mut self, obs: TraceHandle) {
        self.obs = obs;
    }

    /// Demand read-queue depth (metrics gauge).
    #[must_use]
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Demand write-queue depth (metrics gauge).
    #[must_use]
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// `(resident rows, capacity)` of the prefetch buffer (metrics gauge).
    #[must_use]
    pub fn buffer_occupancy(&self) -> (usize, usize) {
        (self.buffer.len(), self.buffer.capacity())
    }

    /// The scheme's `(RUT, CT)` occupancy (metrics gauge).
    #[must_use]
    pub fn table_occupancy(&self) -> (usize, usize) {
        self.scheme.table_occupancy()
    }

    /// Prefetched rows that left the buffer without ever serving a
    /// demand read (coverage-loss counter for the metrics sampler).
    #[must_use]
    pub fn buffer_unused_evictions(&self) -> u64 {
        self.buffer.unused_evictions()
    }

    /// Statistics so far (energy's buffer-access count is synced in
    /// [`VaultController::finalize`]).
    #[must_use]
    pub fn stats(&self) -> &VaultStats {
        &self.stats
    }

    /// Diagnostic one-liner of the scheme's internal state.
    #[must_use]
    pub fn scheme_debug(&self) -> String {
        self.scheme.debug_state()
    }

    /// Occupancy snapshot for watchdog diagnostics: queue depths, open
    /// rows, buffer residency, and in-flight transfer jobs. The host-side
    /// retry-queue depth is not visible from inside the vault; the caller
    /// fills it in.
    #[must_use]
    pub fn snapshot(&self) -> VaultSnapshot {
        VaultSnapshot {
            vault: self.id,
            read_q: self.read_q.len(),
            write_q: self.write_q.len(),
            retry_q: 0,
            open_rows: self
                .banks
                .iter()
                .enumerate()
                .filter_map(|(bank, b)| b.open_row().map(|row| (bank as u16, row)))
                .collect(),
            buffer_rows: self.buffer.len(),
            inflight_jobs: self.fetches.len()
                + self.writeback_q.len()
                + usize::from(self.active_writeback.is_some()),
        }
    }

    /// True while any demand, prefetch, writeback, or response work
    /// remains.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.read_q.is_empty()
            || !self.write_q.is_empty()
            || !self.fetches.is_empty()
            || !self.writeback_q.is_empty()
            || self.active_writeback.is_some()
            || !self.responses.is_empty()
    }

    /// Offers a demand request to this vault at `now`. Returns `false`
    /// (backpressure) when the target queue is full; the caller retries.
    pub fn try_enqueue(&mut self, req: MemRequest, decoded: DecodedAddr, now: Cycle) -> bool {
        debug_assert_eq!(decoded.vault, self.id, "request routed to wrong vault");
        let key = decoded.row_key();
        let is_write = !req.kind.is_read();

        // §3.1: "the vault controller will first check the prefetch buffer".
        let first_touch = self.buffer.is_referenced(key) == Some(false);
        if self.buffer.access(key, decoded.col, now, is_write) {
            self.stats.buffer_hits.inc();
            self.scheme.on_buffer_hit(key, first_touch);
            self.obs.stamp(req.id.0, Point::ServiceStart, now);
            self.push_response(req, now + self.hit_latency, ServiceSource::PrefetchBuffer);
            if is_write {
                self.stats.writes.inc();
            } else {
                self.stats.reads.inc();
            }
            return true;
        }

        if is_write {
            if self.write_q.len() == self.write_cap {
                self.stats.queue_rejects.inc();
                return false;
            }
            self.write_q.push(Queued::new(req, decoded, now));
            self.stats.writes.inc();
            // Posted write: acknowledged on queue acceptance; the burst
            // drains in the background.
            self.push_response(req, now + 1, ServiceSource::RowBufferMiss);
            true
        } else {
            if self.read_q.len() == self.read_cap {
                self.stats.queue_rejects.inc();
                return false;
            }
            self.read_q.push(Queued::new(req, decoded, now));
            true
        }
    }

    /// Advances the vault by one CPU cycle, appending any responses that
    /// complete at `now` to `out`. `prof` attributes each phase's host
    /// time (fence-post laps: one clock read per boundary, none at all
    /// when profiling is off).
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<MemResponse>, prof: &mut Profiler) {
        let t = prof.stamp();
        self.advance_refresh(now);
        let t = prof.lap(Comp::RefreshScan, t);
        self.complete_fetches(now);
        self.serve_buffer_resident(now);
        let t = prof.lap(Comp::BufferServe, t);
        self.sweep_precharges(now);
        let _ = prof.lap(Comp::BankModel, t);
        // Demand commands issue before prefetch transfers claim banks: a
        // row fetch is background work and must not delay the triggering
        // request. A scoped span (not a lap): scheme-training laps nest
        // inside the scheduler.
        prof.enter(Comp::IssueScan);
        self.schedule_command(now, prof);
        let t = prof.exit(Comp::IssueScan);
        self.start_fetches(now);
        let t = prof.lap(Comp::PfFetch, t);
        self.advance_writeback(now);
        let t = prof.lap(Comp::WbEngine, t);
        self.pop_responses(now, out);
        let _ = prof.lap(Comp::RespPop, t);
    }

    /// Ends the run: drains the prefetch buffer so resident-but-referenced
    /// rows are counted in the accuracy statistics and syncs the buffer's
    /// access count into the energy model.
    pub fn finalize(&mut self, _now: Cycle) {
        for ev in self.buffer.drain() {
            if ev.referenced {
                self.stats.prefetches_referenced.inc();
            }
            self.scheme.on_buffer_evicted(ev.key, ev.referenced);
        }
        let (_inserts, _hits, lookups) = self.buffer.stats();
        self.stats.energy.buffer_accesses = lookups;
    }

    fn push_response_raw(&mut self, resp: MemResponse) {
        self.responses
            .push(Reverse((resp.completed_at, self.resp_seq, resp)));
        self.resp_seq += 1;
    }

    fn push_response(&mut self, req: MemRequest, at: Cycle, source: ServiceSource) {
        let resp = MemResponse {
            id: req.id,
            addr: req.addr,
            kind: req.kind,
            core: req.core,
            created_at: req.created_at,
            completed_at: at,
            source,
            push: false,
        };
        self.responses.push(Reverse((at, self.resp_seq, resp)));
        self.resp_seq += 1;
    }

    fn pop_responses(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        while self
            .responses
            .peek()
            .is_some_and(|Reverse((at, _, _))| *at <= now)
        {
            let Some(Reverse((_, _, resp))) = self.responses.pop() else {
                break;
            };
            if resp.kind.is_read() && !resp.push {
                self.stats.read_latency.record(resp.latency());
            }
            out.push(resp);
        }
    }

    /// Finishes TSV row transfers whose completion time has arrived.
    fn complete_fetches(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.fetches.len() {
            match self.fetches[i].done {
                Some(done) if done <= now => {
                    let job = self.fetches.swap_remove(i);
                    self.obs.fetch_span(
                        self.id,
                        u32::from(job.key.bank),
                        u64::from(job.key.row),
                        job.spawned,
                        now,
                    );
                    self.insert_prefetched(job.key, now, job.seed_util);
                    if job.precharge_after {
                        self.want_precharge[usize::from(job.key.bank)] = true;
                    }
                }
                _ => i += 1,
            }
        }
    }

    fn insert_prefetched(&mut self, key: RowKey, now: Cycle, seed_util: u32) {
        self.stats.prefetches.inc();
        self.stats.energy.row_fetches += 1;
        if self.push_to_llc {
            // §2.4 counter-design: aggressively push every block of the
            // prefetched row toward the LLC. Each block rides the response
            // links as an unsolicited packet — the bandwidth/pollution
            // cost the paper avoids by keeping data memory-side.
            for col in 0..self.blocks_per_row {
                self.push_seq += 1;
                let addr = self.mapping.block_addr(self.id, key, col as u16);
                self.push_response_raw(MemResponse {
                    id: camps_types::request::RequestId(u64::MAX - self.push_seq),
                    addr,
                    kind: AccessKind::Read,
                    core: camps_types::request::CoreId(0),
                    created_at: now,
                    completed_at: now + 1,
                    source: ServiceSource::PrefetchBuffer,
                    push: true,
                });
            }
        }
        if let Some(ev) = self.buffer.insert_with_utilization(key, now, seed_util) {
            if ev.referenced {
                self.stats.prefetches_referenced.inc();
            }
            self.scheme.on_buffer_evicted(ev.key, ev.referenced);
            if ev.dirty {
                self.writeback_q.push_back(ev.key);
            }
        }
    }

    /// Serves queued requests whose row arrived in the buffer after they
    /// were enqueued (fetch completed while they waited).
    fn serve_buffer_resident(&mut self, now: Cycle) {
        let hit_latency = self.hit_latency;
        for is_write in [false, true] {
            let mut i = 0;
            while i < if is_write {
                self.write_q.len()
            } else {
                self.read_q.len()
            } {
                let q = if is_write {
                    self.write_q[i]
                } else {
                    self.read_q[i]
                };
                let key = q.decoded.row_key();
                if !self.buffer.contains(key) {
                    i += 1;
                    continue;
                }
                let first_touch = self.buffer.is_referenced(key) == Some(false);
                let hit = self.buffer.access(key, q.decoded.col, now, is_write);
                debug_assert!(hit, "contains() implies access() hits");
                self.stats.buffer_hits.inc();
                self.scheme.on_buffer_hit(key, first_touch);
                if is_write {
                    // Already acknowledged at enqueue; absorbed by buffer.
                    self.write_q.remove(i);
                } else {
                    self.stats.reads.inc();
                    self.obs.stamp(q.req.id.0, Point::ServiceStart, now);
                    self.push_response(q.req, now + hit_latency, ServiceSource::PrefetchBuffer);
                    self.read_q.remove(i);
                }
            }
        }
    }

    /// Starts pending row fetches whose bank can stream the row now.
    fn start_fetches(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.fetches.len() {
            let job = self.fetches[i];
            if job.done.is_some() {
                i += 1;
                continue;
            }
            if self.buffer.contains(job.key) {
                self.fetches.swap_remove(i);
                continue;
            }
            let bank_idx = usize::from(job.key.bank);
            if job.needs_activate && self.banks[bank_idx].open_row() != Some(job.key.row) {
                // Background lookahead: open the row ourselves when the
                // bank is idle and demand does not need it; expire stale
                // jobs instead of camping on a busy bank.
                if now.saturating_sub(job.spawned) > LOOKAHEAD_EXPIRY {
                    self.stats.prefetches_dropped.inc();
                    self.fetches.swap_remove(i);
                    continue;
                }
                let demand_pending = self
                    .read_q
                    .iter()
                    .chain(self.write_q.iter())
                    .any(|q| q.bank() == bank_idx);
                if !demand_pending
                    && !self.refresh_pending
                    && self.banks[bank_idx].open_row().is_none()
                    && self.banks[bank_idx].can_activate(now)
                    && self.window.can_activate(now)
                {
                    self.banks[bank_idx].activate(now, job.key.row, &self.timing);
                    self.window.record(now);
                    self.stats.energy.activates += 1;
                    self.stats.prefetch_activations.inc();
                    self.note_activation(job.key.bank, job.key.row, now);
                }
                i += 1;
                continue;
            }
            let bank = &mut self.banks[bank_idx];
            if bank.open_row() != Some(job.key.row) {
                // The row closed before the transfer could start (conflict
                // precharge won the race) — abandon the prefetch.
                self.stats.prefetches_dropped.inc();
                self.fetches.swap_remove(i);
                continue;
            }
            // Stream one bus slot of the row-wide copy; demand bursts
            // interleave because the scheduler ran first this cycle.
            if now >= self.bus_free && bank.can_rdwr(now) {
                let data_done = bank.read(now, &self.timing);
                self.bus_free = now + self.timing.t_burst;
                self.stats.bus_busy_cycles.add(self.timing.t_burst);
                let job = &mut self.fetches[i];
                job.chunks_left -= 1;
                if job.chunks_left == 0 {
                    job.done = Some(data_done);
                }
            }
            i += 1;
        }
    }

    /// Closes banks flagged for precharge as soon as it is legal.
    fn sweep_precharges(&mut self, now: Cycle) {
        for bank_idx in 0..self.banks.len() {
            if !self.want_precharge[bank_idx] {
                continue;
            }
            if self.banks[bank_idx].open_row().is_none() {
                self.want_precharge[bank_idx] = false;
                continue;
            }
            if self.fetch_pending_on(bank_idx) {
                continue; // the fetch needs the row; close afterwards
            }
            if self.banks[bank_idx].can_precharge(now) {
                self.banks[bank_idx].precharge(now, &self.timing);
                self.stats.energy.precharges += 1;
                self.want_precharge[bank_idx] = false;
            }
        }
    }

    /// §2.1: the vault controller owns refresh. When the deadline passes,
    /// stop opening new rows, close every bank as timing permits, and once
    /// the vault is quiet issue the all-bank refresh (tRFC).
    fn advance_refresh(&mut self, now: Cycle) {
        if self.timing.t_refi == 0 {
            return;
        }
        if !self.refresh_pending && now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if !self.refresh_pending {
            return;
        }
        // Drain: request every open bank to close (fetches in flight keep
        // their bank until done; the sweep skips those).
        for idx in 0..self.banks.len() {
            if self.banks[idx].open_row().is_some() {
                self.want_precharge[idx] = true;
            }
        }
        if self.banks.iter().all(|b| b.can_refresh(now)) {
            for b in &mut self.banks {
                b.refresh(now, &self.timing);
            }
            self.stats.energy.refreshes += 1;
            self.stats.refreshes.inc();
            // The all-bank refresh rewrote every row: the RowHammer
            // window restarts.
            self.rowguard.on_refresh();
            self.refresh_pending = false;
            self.next_refresh += self.timing.t_refi;
        }
    }

    fn fetch_pending_on(&self, bank_idx: usize) -> bool {
        self.fetches
            .iter()
            .any(|f| usize::from(f.key.bank) == bank_idx)
    }

    fn writeback_holds(&self, bank_idx: usize) -> bool {
        self.active_writeback
            .is_some_and(|w| usize::from(w.key.bank) == bank_idx)
    }

    /// RowHammer accounting shared by every ACT site: counts the row's
    /// activation inside the current refresh window, tracks the worst
    /// per-window count ever seen, and — only when the mitigation knob is
    /// on — charges the bank a TRR neighbor-refresh penalty once the row
    /// crosses the threshold. With mitigation off this touches nothing
    /// but the tracker and statistics, so paper results are unchanged.
    fn note_activation(&mut self, bank: u16, row: u32, now: Cycle) {
        let count = self.rowguard.record(bank, row);
        self.stats.worst_row_window_acts = self.stats.worst_row_window_acts.max(u64::from(count));
        if self.mitigate && count >= self.mitigate_threshold {
            self.banks[usize::from(bank)].trr_neighbor_refresh(now, &self.timing);
            // Restart the row's count so the threshold meters mitigation
            // intervals instead of firing on every subsequent ACT.
            self.rowguard.reset_row(bank, row);
            self.stats.mitigations.inc();
            self.obs.mark("rowguard_mitigation", now);
        }
    }

    /// Issues at most one DRAM command (RD/WR, ACT, or PRE) per cycle.
    fn schedule_command(&mut self, now: Cycle, prof: &mut Profiler) {
        // Write-drain hysteresis.
        if !self.draining && self.write_q.len() >= self.drain_high {
            self.draining = true;
            self.stats.drain_entries.inc();
        } else if self.draining && self.write_q.len() <= self.drain_low {
            self.draining = false;
        }
        let use_writes = self.draining || (self.read_q.is_empty() && !self.write_q.is_empty());

        if self.try_issue_column(now, use_writes, prof) {
            return;
        }
        if self.try_issue_activate(now, use_writes, prof) {
            return;
        }
        let _ = self.try_issue_precharge(now, use_writes);
    }

    /// Indices eligible for scheduling, in age order. FCFS restricts the
    /// scheduler's view to the queue head.
    fn candidates(&self, use_writes: bool) -> std::ops::Range<usize> {
        let len = if use_writes {
            self.write_q.len()
        } else {
            self.read_q.len()
        };
        match self.scheduler {
            SchedulerKind::FrFcfs => 0..len,
            SchedulerKind::Fcfs => 0..len.min(1),
        }
    }

    fn try_issue_column(&mut self, now: Cycle, use_writes: bool, prof: &mut Profiler) -> bool {
        if now < self.bus_free {
            return false; // TSV data bus occupied
        }
        let pick = self.candidates(use_writes).find(|&i| {
            let q = if use_writes {
                &self.write_q[i]
            } else {
                &self.read_q[i]
            };
            let bank = &self.banks[q.bank()];
            bank.open_row() == Some(q.row()) && bank.can_rdwr(now)
        });
        let Some(i) = pick else { return false };
        let mut q = if use_writes {
            self.write_q.remove(i)
        } else {
            self.read_q.remove(i)
        };
        let key = q.decoded.row_key();
        let bank = &mut self.banks[q.bank()];

        // Classify: a request served with its row already open — and not
        // opened on its own behalf — is a row-buffer hit.
        if q.category.is_none() {
            q.category = Some(AccessCategory::Hit);
            self.stats.row_hits.inc();
        }

        let same_row = queued_same_row(&self.read_q, key.bank, key.row, None);
        let action = if q.activated {
            // This request's activation already informed the scheme.
            PfAction::None
        } else {
            let pt = prof.stamp();
            let action = self.scheme.on_row_hit(key, same_row);
            let _ = prof.lap(Comp::PfTrain, pt);
            action
        };

        match q.req.kind {
            AccessKind::Read => {
                self.obs.stamp(q.req.id.0, Point::ServiceStart, now);
                let done = bank.read(now, &self.timing);
                // The TSV data bus carries this burst t_CL later; bursts
                // pipeline behind CAS, so the bus slot is one t_BURST.
                self.bus_free = now + self.timing.t_burst;
                self.stats.bus_busy_cycles.add(self.timing.t_burst);
                self.stats.energy.read_bursts += 1;
                self.stats.reads.inc();
                let source = match q.category {
                    Some(AccessCategory::Hit) => ServiceSource::RowBufferHit,
                    Some(AccessCategory::Conflict) => ServiceSource::RowBufferConflict,
                    _ => ServiceSource::RowBufferMiss,
                };
                self.push_response(q.req, done, source);
            }
            AccessKind::Write => {
                let _done = bank.write(now, &self.timing);
                self.bus_free = now + self.timing.t_burst;
                self.stats.bus_busy_cycles.add(self.timing.t_burst);
                self.stats.energy.write_bursts += 1;
            }
        }

        self.apply_action(action, now);

        // Closed-page policy: close the row once nothing queued needs it.
        if self.page_policy == PagePolicy::Closed
            && queued_same_row(&self.read_q, key.bank, key.row, None) == 0
            && queued_same_row(&self.write_q, key.bank, key.row, None) == 0
        {
            self.want_precharge[q.bank()] = true;
        }
        true
    }

    fn try_issue_activate(&mut self, now: Cycle, use_writes: bool, prof: &mut Profiler) -> bool {
        if self.refresh_pending || !self.window.can_activate(now) {
            return false;
        }
        let pick = self.candidates(use_writes).find(|&i| {
            let q = if use_writes {
                &self.write_q[i]
            } else {
                &self.read_q[i]
            };
            let bank_idx = q.bank();
            self.banks[bank_idx].can_activate(now)
                && !self.writeback_holds(bank_idx)
                && !self.fetch_pending_on(bank_idx)
        });
        let Some(i) = pick else { return false };
        let (key, conflict) = {
            let q = if use_writes {
                &mut self.write_q[i]
            } else {
                &mut self.read_q[i]
            };
            let key = q.decoded.row_key();
            let conflict = q.category == Some(AccessCategory::Conflict);
            if q.category.is_none() {
                q.category = Some(AccessCategory::Miss);
                self.stats.row_misses.inc();
            }
            q.activated = true;
            let bank = &mut self.banks[usize::from(key.bank)];
            bank.activate(now, key.row, &self.timing);
            (key, conflict)
        };
        self.window.record(now);
        self.stats.energy.activates += 1;
        self.stats.demand_activations.inc();
        self.note_activation(key.bank, key.row, now);
        let queued = queued_same_row(
            &self.read_q,
            key.bank,
            key.row,
            Some(i).filter(|_| !use_writes),
        );
        let pt = prof.stamp();
        let action = self.scheme.on_row_activated(key, conflict, queued);
        let _ = prof.lap(Comp::PfTrain, pt);
        self.apply_action(action, now);
        true
    }

    fn try_issue_precharge(&mut self, now: Cycle, use_writes: bool) -> bool {
        let pick = self.candidates(use_writes).find(|&i| {
            let q = if use_writes {
                &self.write_q[i]
            } else {
                &self.read_q[i]
            };
            let bank_idx = q.bank();
            let bank = &self.banks[bank_idx];
            let Some(open) = bank.open_row() else {
                return false;
            };
            if open == q.row() || !bank.can_precharge(now) {
                return false;
            }
            if self.fetch_pending_on(bank_idx) || self.writeback_holds(bank_idx) {
                return false;
            }
            // FR-FCFS protects the open row while other requests still
            // target it — unless this request is starving.
            let open_row_demand = queued_same_row(&self.read_q, q.decoded.bank, open, None)
                + queued_same_row(&self.write_q, q.decoded.bank, open, None);
            open_row_demand == 0 || now.saturating_sub(q.arrived) > STARVATION_LIMIT
        });
        let Some(i) = pick else { return false };
        let q = if use_writes {
            &mut self.write_q[i]
        } else {
            &mut self.read_q[i]
        };
        if q.category.is_none() {
            q.category = Some(AccessCategory::Conflict);
            self.stats.row_conflicts.inc();
        }
        let bank_idx = q.bank();
        self.banks[bank_idx].precharge(now, &self.timing);
        self.stats.energy.precharges += 1;
        true
    }

    fn apply_action(&mut self, action: PfAction, now: Cycle) {
        let PfAction::FetchRow {
            key,
            precharge_after,
            lookahead,
            used_so_far,
        } = action
        else {
            return;
        };
        self.spawn_fetch(key, precharge_after, false, now, used_so_far);
        // Lookahead rows (MMD degree > 1): sequentially following rows in
        // the same bank, fetched in the background with their own
        // activations and precharged afterwards.
        for i in 1..=lookahead {
            let row = key.row.saturating_add(i);
            if row >= self.rows_per_bank {
                break;
            }
            self.spawn_fetch(
                RowKey {
                    bank: key.bank,
                    row,
                },
                true,
                true,
                now,
                0,
            );
        }
    }

    fn spawn_fetch(
        &mut self,
        key: RowKey,
        precharge_after: bool,
        background: bool,
        now: Cycle,
        used_so_far: u32,
    ) {
        if self.buffer.contains(key) || self.fetches.iter().any(|f| f.key == key) {
            return;
        }
        if !background && self.banks[usize::from(key.bank)].open_row() != Some(key.row) {
            // A demand-triggered fetch can only copy the row that is open;
            // if it closed in the same cycle, drop the request.
            self.stats.prefetches_dropped.inc();
            return;
        }
        self.fetches.push(FetchJob {
            key,
            precharge_after,
            needs_activate: background,
            spawned: now,
            seed_util: used_so_far,
            chunks_left: self.fetch_chunks,
            done: None,
        });
    }

    /// Advances (or starts) the dirty-row writeback engine.
    fn advance_writeback(&mut self, now: Cycle) {
        if let Some(job) = self.active_writeback {
            match job.done {
                Some(done) if done <= now => {
                    self.want_precharge[usize::from(job.key.bank)] = true;
                    self.stats.writebacks.inc();
                    self.stats.energy.row_writebacks += 1;
                    self.active_writeback = None;
                }
                Some(_) => {}
                None => self.try_start_writeback_transfer(now),
            }
            return;
        }
        let Some(&key) = self.writeback_q.front() else {
            return;
        };
        // Yield to demand traffic unless writebacks are piling up.
        let bank_idx = usize::from(key.bank);
        let demand_pending = self
            .read_q
            .iter()
            .chain(self.write_q.iter())
            .any(|q| q.bank() == bank_idx);
        if demand_pending && self.writeback_q.len() <= WRITEBACK_PRESSURE {
            return;
        }
        self.writeback_q.pop_front();
        self.active_writeback = Some(WritebackJob { key, done: None });
        self.try_start_writeback_transfer(now);
    }

    fn try_start_writeback_transfer(&mut self, now: Cycle) {
        let Some(job) = &mut self.active_writeback else {
            return;
        };
        let key = job.key;
        let bank_idx = usize::from(key.bank);
        let bank = &mut self.banks[bank_idx];
        let mut activated = false;
        match bank.open_row() {
            Some(row) if row == key.row => {
                if now >= self.bus_free && bank.can_row_transfer(now) {
                    let done = bank.row_transfer_in(now, &self.timing);
                    self.bus_free = done;
                    self.stats.bus_busy_cycles.add(self.timing.t_row_transfer);
                    job.done = Some(done);
                }
            }
            Some(open) => {
                // A different row occupies the bank; close it when legal
                // and when no demand wants it (demand precharges happen in
                // the scheduler).
                if bank.can_precharge(now) && !self.want_precharge[bank_idx] {
                    let demand = queued_same_row(&self.read_q, key.bank, open, None)
                        + queued_same_row(&self.write_q, key.bank, open, None);
                    if demand == 0 {
                        bank.precharge(now, &self.timing);
                        self.stats.energy.precharges += 1;
                    }
                }
            }
            None => {
                if !self.refresh_pending && bank.can_activate(now) && self.window.can_activate(now)
                {
                    bank.activate(now, key.row, &self.timing);
                    self.window.record(now);
                    self.stats.energy.activates += 1;
                    activated = true;
                }
            }
        }
        if activated {
            self.stats.writeback_activations.inc();
            self.note_activation(key.bank, key.row, now);
        }
    }
}

impl Wake for VaultController {
    /// Folds every engine's earliest actionable cycle: pending responses,
    /// the refresh state machine, queued demand against bank/bus timing,
    /// in-flight row fetches, the precharge sweep, and the writeback
    /// engine. Candidates are conservative lower bounds — a gate that is
    /// really waiting on another event (e.g. a conflict precharge held off
    /// by open-row demand) contributes a past-due edge that clamps to
    /// `now + 1`, costing a no-op tick, never a missed one.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut wake: Option<Cycle> = None;
        let mut up = |at: Cycle| fold_wake(&mut wake, now, Some(at));

        if let Some(Reverse((at, _, _))) = self.responses.peek() {
            up(*at);
        }

        // Refresh: the deadline while idle; while draining, every bank's
        // path to `can_refresh` (close open rows, wait out busy arrays).
        if self.timing.t_refi > 0 {
            if self.refresh_pending {
                for (idx, b) in self.banks.iter().enumerate() {
                    // A fetch in flight owns the open row; its own
                    // edges below wake us, not the drain.
                    if b.open_row().is_some() && self.fetch_pending_on(idx) {
                        continue;
                    }
                    up(b.refresh_drain_edge());
                }
            } else {
                up(self.next_refresh);
            }
        }

        // The write-drain hysteresis flips `draining` on the next tick.
        if (!self.draining && self.write_q.len() >= self.drain_high)
            || (self.draining && self.write_q.len() <= self.drain_low)
        {
            up(now + 1);
        }

        // Queued demand: a buffer-resident row is served next tick; an
        // open matching row waits on bus + CAS timing; a closed bank on
        // activation timing; a conflicting row on precharge timing or the
        // starvation override.
        for q in self.read_q.iter().chain(self.write_q.iter()) {
            if self.buffer.contains(q.decoded.row_key()) {
                up(now + 1);
                continue;
            }
            let bank = &self.banks[q.bank()];
            match bank.open_row() {
                Some(r) if r == q.row() => up(self.bus_free.max(bank.rdwr_ready_at())),
                Some(_) => {
                    up(bank.precharge_ready_at());
                    up(q.arrived + STARVATION_LIMIT + 1);
                }
                None => up(bank
                    .activate_ready_at()
                    .max(self.window.earliest_activate())),
            }
        }

        // Row fetches: completions, background activations (bounded by
        // their expiry), and bus slots for the next chunk.
        for job in &self.fetches {
            if let Some(done) = job.done {
                up(done);
                continue;
            }
            if self.buffer.contains(job.key) {
                up(now + 1); // duplicate: discarded next tick
                continue;
            }
            let bank = &self.banks[usize::from(job.key.bank)];
            if job.needs_activate && bank.open_row() != Some(job.key.row) {
                up(job.spawned + LOOKAHEAD_EXPIRY + 1);
                if bank.open_row().is_none() {
                    up(bank
                        .activate_ready_at()
                        .max(self.window.earliest_activate()));
                }
                continue;
            }
            if bank.open_row() != Some(job.key.row) {
                up(now + 1); // row closed under the fetch: dropped next tick
                continue;
            }
            up(self.bus_free.max(bank.rdwr_ready_at()));
        }

        // Precharge sweep.
        for (idx, b) in self.banks.iter().enumerate() {
            if self.want_precharge[idx] && b.open_row().is_some() && !self.fetch_pending_on(idx) {
                up(b.precharge_ready_at());
            }
        }

        // Writeback engine.
        if let Some(job) = self.active_writeback {
            match job.done {
                Some(done) => up(done),
                None => {
                    let b = &self.banks[usize::from(job.key.bank)];
                    match b.open_row() {
                        Some(r) if r == job.key.row => up(self.bus_free.max(b.rdwr_ready_at())),
                        Some(_) => up(b.precharge_ready_at()),
                        None => up(b.activate_ready_at().max(self.window.earliest_activate())),
                    }
                }
            }
        } else if let Some(&key) = self.writeback_q.front() {
            let bank_idx = usize::from(key.bank);
            let demand_pending = self
                .read_q
                .iter()
                .chain(self.write_q.iter())
                .any(|q| q.bank() == bank_idx);
            if !demand_pending || self.writeback_q.len() > WRITEBACK_PRESSURE {
                up(now + 1);
            }
            // Else: yielding to demand; the demand candidates above cover
            // the tick on which the yield condition can change.
        }

        wake
    }
}

impl Snapshot for VaultController {
    fn save_state(&self) -> Value {
        // Derived configuration (timing, caps, mapping, scheduler/page
        // policy, fetch chunking) is rebuilt by the constructor; every
        // mutable field is captured. The response priority queue
        // serializes as a sorted sequence and is rebuilt by reinsertion.
        let mut responses: Vec<(Cycle, u64, MemResponse)> =
            self.responses.iter().map(|Reverse(entry)| *entry).collect();
        responses.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        Value::Map(vec![
            ("banks".into(), self.banks.to_value()),
            ("window".into(), self.window.to_value()),
            ("push_seq".into(), self.push_seq.to_value()),
            ("draining".into(), self.draining.to_value()),
            ("read_q".into(), self.read_q.to_value()),
            ("write_q".into(), self.write_q.to_value()),
            ("buffer".into(), self.buffer.to_value()),
            ("scheme".into(), self.scheme.save_state()),
            ("fetches".into(), self.fetches.to_value()),
            ("writeback_q".into(), self.writeback_q.to_value()),
            ("active_writeback".into(), self.active_writeback.to_value()),
            ("want_precharge".into(), self.want_precharge.to_value()),
            ("bus_free".into(), self.bus_free.to_value()),
            ("next_refresh".into(), self.next_refresh.to_value()),
            ("refresh_pending".into(), self.refresh_pending.to_value()),
            ("responses".into(), responses.to_value()),
            ("resp_seq".into(), self.resp_seq.to_value()),
            ("stats".into(), self.stats.to_value()),
            ("rowguard".into(), self.rowguard.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let banks: Vec<Bank> = decode(state, "banks")?;
        if banks.len() != self.banks.len() {
            return Err(de::Error::custom(format!(
                "snapshot: {} banks for a {}-bank vault",
                banks.len(),
                self.banks.len()
            )));
        }
        let want_precharge: Vec<bool> = decode(state, "want_precharge")?;
        if want_precharge.len() != self.want_precharge.len() {
            return Err(de::Error::custom(
                "snapshot: want_precharge length does not match bank count",
            ));
        }
        let read_q: Vec<Queued> = decode(state, "read_q")?;
        let write_q: Vec<Queued> = decode(state, "write_q")?;
        if read_q.len() > self.read_cap || write_q.len() > self.write_cap {
            return Err(de::Error::custom(
                "snapshot: queue contents exceed configured capacity",
            ));
        }
        self.banks = banks;
        self.want_precharge = want_precharge;
        self.read_q = read_q;
        self.write_q = write_q;
        self.window = decode(state, "window")?;
        self.push_seq = decode(state, "push_seq")?;
        self.draining = decode(state, "draining")?;
        self.buffer = decode(state, "buffer")?;
        self.scheme.restore_state(field(state, "scheme")?)?;
        self.fetches = decode(state, "fetches")?;
        self.writeback_q = decode(state, "writeback_q")?;
        self.active_writeback = decode(state, "active_writeback")?;
        self.bus_free = decode(state, "bus_free")?;
        self.next_refresh = decode(state, "next_refresh")?;
        self.refresh_pending = decode(state, "refresh_pending")?;
        let responses: Vec<(Cycle, u64, MemResponse)> = decode(state, "responses")?;
        self.responses = responses.into_iter().map(Reverse).collect();
        self.resp_seq = decode(state, "resp_seq")?;
        self.stats = decode(state, "stats")?;
        // Snapshots that predate the rowguard tracker carry no key:
        // absence means an empty window, not corruption.
        self.rowguard = if field(state, "rowguard").is_ok() {
            decode(state, "rowguard")?
        } else {
            RowGuard::new()
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::addr::AddressMapping;
    use camps_types::request::{CoreId, RequestId};

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.hmc.vaults = 4; // keep decode cheap; vault 0 is used below
        c
    }

    fn mapping(c: &SystemConfig) -> AddressMapping {
        c.hmc.address_mapping().unwrap()
    }

    /// Builds a request for (bank, row, col) in vault 0.
    fn req_at(
        c: &SystemConfig,
        id: u64,
        bank: u16,
        row: u32,
        col: u16,
        kind: AccessKind,
        now: Cycle,
    ) -> (MemRequest, DecodedAddr) {
        let m = mapping(c);
        let d = DecodedAddr {
            vault: 0,
            bank,
            row,
            col,
            offset: 0,
        };
        let addr = m.encode(&d);
        (
            MemRequest {
                id: RequestId(id),
                addr,
                kind,
                core: CoreId(0),
                created_at: now,
            },
            d,
        )
    }

    /// Runs the vault until `n` responses arrive (or `limit` cycles pass).
    fn run_until(
        v: &mut VaultController,
        start: Cycle,
        n: usize,
        limit: Cycle,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while out.len() < n && now < start + limit {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        (out, now)
    }

    /// Serves `pattern` one request at a time so FR-FCFS cannot batch
    /// same-row work — alternating rows force one ACT per access.
    fn hammer(
        v: &mut VaultController,
        c: &SystemConfig,
        pattern: &[(u16, u32)],
        start: Cycle,
    ) -> Cycle {
        let mut now = start;
        for (i, &(bank, row)) in pattern.iter().enumerate() {
            let (r, d) = req_at(c, i as u64 + 1, bank, row, 0, AccessKind::Read, now);
            assert!(v.try_enqueue(r, d, now));
            let (out, end) = run_until(v, now, 1, 100_000);
            assert_eq!(out.len(), 1, "request {i} never completed");
            now = end;
        }
        now
    }

    #[test]
    fn alternating_rows_count_per_row_activations() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let pattern = [(0, 1), (0, 2), (0, 1), (0, 2), (0, 1), (0, 2)];
        hammer(&mut v, &c, &pattern, 0);
        assert_eq!(v.stats().demand_activations.get(), 6);
        assert_eq!(v.stats().worst_row_window_acts, 3);
        assert_eq!(
            v.stats().mitigations.get(),
            0,
            "observation-only by default"
        );
    }

    #[test]
    fn mitigation_fires_at_threshold_and_slows_the_hammer() {
        let pattern: Vec<(u16, u32)> = (0..16u32).map(|i| (0u16, 1 + (i % 2))).collect();

        let mut on = cfg();
        on.rowguard.enable_mitigation = true;
        on.rowguard.threshold = 2;
        let mut v_on = VaultController::new(0, &on, SchemeKind::Nopf).unwrap();
        let end_on = hammer(&mut v_on, &on, &pattern, 0);
        // 8 ACTs per row at threshold 2 → 4 mitigations per row.
        assert_eq!(v_on.stats().mitigations.get(), 8);
        assert_eq!(
            v_on.stats().worst_row_window_acts,
            2,
            "the counter restarts at every mitigation"
        );

        let off = cfg();
        let mut v_off = VaultController::new(0, &off, SchemeKind::Nopf).unwrap();
        let end_off = hammer(&mut v_off, &off, &pattern, 0);
        assert_eq!(v_off.stats().mitigations.get(), 0);
        assert!(
            end_on > end_off,
            "the TRR penalty must delay the aggressor stream ({end_on} vs {end_off})"
        );
    }

    #[test]
    fn refresh_clears_the_rowguard_window_in_snapshots() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let now = hammer(&mut v, &c, &[(0, 1), (0, 2)], 0);
        let tracked = |v: &VaultController| {
            let Value::Map(m) = v.save_state() else {
                panic!("snapshot is a map")
            };
            let val = &m.iter().find(|(k, _)| k == "rowguard").unwrap().1;
            RowGuard::from_value(val).unwrap().tracked_rows()
        };
        assert_eq!(tracked(&v), 2);
        // Tick past the vault's refresh deadline: the all-bank refresh
        // resets every per-row counter, but the worst-case survives.
        let mut out = Vec::new();
        let mut t = now;
        while t < 2 * v.timing.t_refi {
            t += 1;
            v.tick(t, &mut out, &mut Profiler::off());
        }
        assert!(v.stats().refreshes.get() >= 1);
        assert_eq!(tracked(&v), 0);
        assert!(v.stats().worst_row_window_acts >= 1);
    }

    #[test]
    fn restore_tolerates_snapshots_without_rowguard() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        hammer(&mut v, &c, &[(0, 1), (0, 2)], 0);
        let Value::Map(mut m) = v.save_state() else {
            panic!("snapshot is a map")
        };
        m.retain(|(k, _)| k != "rowguard");
        let mut fresh = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        fresh.restore_state(&Value::Map(m)).unwrap();
        assert_eq!(fresh.rowguard.tracked_rows(), 0);
    }

    #[test]
    fn single_read_miss_latency_matches_timing() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r, d) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        assert!(v.try_enqueue(r, d, 0));
        let (out, _) = run_until(&mut v, 0, 1, 10_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].source, ServiceSource::RowBufferMiss);
        let t = TimingCpu::from_config(&c.dram, c.cpu.freq_hz);
        // ACT at cycle 1 (first tick), RD at 1+tRCD, data at +tCL+tBURST.
        assert_eq!(out[0].completed_at, 1 + t.t_rcd + t.t_cl + t.t_burst);
        assert_eq!(v.stats().row_misses.get(), 1);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        let (r2, d2) = req_at(&c, 2, 0, 5, 1, AccessKind::Read, 0);
        v.try_enqueue(r1, d1, 0);
        v.try_enqueue(r2, d2, 0);
        let (out, _) = run_until(&mut v, 0, 2, 10_000);
        assert_eq!(out.len(), 2);
        assert_eq!(v.stats().row_hits.get(), 1);
        assert_eq!(v.stats().row_misses.get(), 1);
        assert_eq!(v.stats().row_conflicts.get(), 0);
    }

    #[test]
    fn different_row_same_bank_is_a_conflict() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r1, d1, 0);
        let (_, end) = run_until(&mut v, 0, 1, 10_000);
        // Row 5 is open (open-page); now request row 6 in the same bank.
        let (r2, d2) = req_at(&c, 2, 0, 6, 0, AccessKind::Read, end);
        v.try_enqueue(r2, d2, end);
        let (out, _) = run_until(&mut v, end, 1, 20_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].source, ServiceSource::RowBufferConflict);
        assert_eq!(v.stats().row_conflicts.get(), 1);
    }

    #[test]
    fn base_scheme_prefetches_and_later_requests_hit_buffer() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Base).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r1, d1, 0);
        let (_, end) = run_until(&mut v, 0, 1, 20_000);
        // Let the row transfer finish and the bank precharge.
        let mut out = Vec::new();
        let mut now = end;
        for _ in 0..2_000 {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert_eq!(v.stats().prefetches.get(), 1);
        // A new request to any column of row 5 must now hit the buffer.
        let (r2, d2) = req_at(&c, 2, 0, 5, 7, AccessKind::Read, now);
        assert!(v.try_enqueue(r2, d2, now));
        let (out2, _) = run_until(&mut v, now, 1, 1_000);
        assert_eq!(out2[0].source, ServiceSource::PrefetchBuffer);
        assert_eq!(out2[0].completed_at, now + c.prefetch.hit_latency);
        assert_eq!(v.stats().buffer_hits.get(), 1);
    }

    #[test]
    fn base_never_leaves_rows_open() {
        // BASE fetches + precharges on every activation → no conflicts.
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Base).unwrap();
        let mut now = 0;
        let mut out = Vec::new();
        for (i, row) in [5u32, 6, 5, 6, 7, 8].iter().enumerate() {
            let (r, d) = req_at(&c, i as u64, 0, *row, 0, AccessKind::Read, now);
            assert!(v.try_enqueue(r, d, now));
            for _ in 0..3_000 {
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
        }
        assert_eq!(
            v.stats().row_conflicts.get(),
            0,
            "BASE precharges after every fetch"
        );
    }

    #[test]
    fn camps_prefetches_hot_row_after_five_accesses() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::CampsMod).unwrap();
        let mut now = 0;
        let mut out = Vec::new();
        // Five sequential requests to row 5 (activation + 4 hits exceeds
        // the threshold of 4).
        for i in 0..5u64 {
            let (r, d) = req_at(&c, i, 0, 5, i as u16, AccessKind::Read, now);
            assert!(v.try_enqueue(r, d, now));
            for _ in 0..1_000 {
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
        }
        assert_eq!(v.stats().prefetches.get(), 1);
        assert_eq!(out.len(), 5);
        // The bank was precharged after the fetch (CAMPS behavior).
        let (r, d) = req_at(&c, 99, 0, 5, 9, AccessKind::Read, now);
        v.try_enqueue(r, d, now);
        let (out2, _) = run_until(&mut v, now, 1, 1_000);
        assert_eq!(out2[0].source, ServiceSource::PrefetchBuffer);
    }

    #[test]
    fn camps_prefetches_conflict_victim_on_reactivation() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Camps).unwrap();
        let mut now = 0;
        let mut out = Vec::new();
        // Ping-pong rows 5 and 6 in bank 0. With ct_evidence = 3, the CT
        // fires on row 5's second return (accumulated evidence 2 + 1).
        for (i, row) in [5u32, 6, 5, 6, 5].iter().enumerate() {
            let (r, d) = req_at(&c, i as u64, 0, *row, 0, AccessKind::Read, now);
            assert!(v.try_enqueue(r, d, now));
            for _ in 0..3_000 {
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
        }
        assert_eq!(out.len(), 5);
        assert_eq!(v.stats().prefetches.get(), 1);
        // Row 5 is now buffer-resident.
        let (r, d) = req_at(&c, 99, 0, 5, 3, AccessKind::Read, now);
        v.try_enqueue(r, d, now);
        let (out2, _) = run_until(&mut v, now, 1, 1_000);
        assert_eq!(out2[0].source, ServiceSource::PrefetchBuffer);
    }

    #[test]
    fn nopf_never_prefetches() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let mut now = 0;
        let mut out = Vec::new();
        for i in 0..20u64 {
            let (r, d) = req_at(&c, i, 0, 5, (i % 16) as u16, AccessKind::Read, now);
            v.try_enqueue(r, d, now);
            for _ in 0..500 {
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
        }
        assert_eq!(v.stats().prefetches.get(), 0);
        assert_eq!(v.stats().buffer_hits.get(), 0);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn writes_are_posted_and_drain() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (w, d) = req_at(&c, 1, 0, 5, 0, AccessKind::Write, 0);
        assert!(v.try_enqueue(w, d, 0));
        let (out, end) = run_until(&mut v, 0, 1, 100);
        assert_eq!(out.len(), 1, "posted write acks immediately");
        // The burst itself drains in the background.
        let mut out2 = Vec::new();
        let mut now = end;
        while v.busy() && now < end + 20_000 {
            now += 1;
            v.tick(now, &mut out2, &mut Profiler::off());
        }
        assert!(!v.busy());
        assert_eq!(v.stats().energy.write_bursts, 1);
        assert_eq!(v.stats().writes.get(), 1);
    }

    #[test]
    fn read_queue_backpressure() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let mut accepted = 0;
        for i in 0..(c.vault.read_queue + 5) as u64 {
            let (r, d) = req_at(&c, i, 0, i as u32 % 8, 0, AccessKind::Read, 0);
            if v.try_enqueue(r, d, 0) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, c.vault.read_queue);
        assert_eq!(v.stats().queue_rejects.get(), 5);
    }

    #[test]
    fn frfcfs_prefers_open_row_over_older_conflict() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        // Open row 5.
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r1, d1, 0);
        let (_, end) = run_until(&mut v, 0, 1, 10_000);
        // Older request to row 6 (conflict), newer to open row 5.
        let (r2, d2) = req_at(&c, 2, 0, 6, 0, AccessKind::Read, end);
        let (r3, d3) = req_at(&c, 3, 0, 5, 1, AccessKind::Read, end + 1);
        v.try_enqueue(r2, d2, end);
        v.try_enqueue(r3, d3, end + 1);
        let (out, _) = run_until(&mut v, end + 1, 2, 30_000);
        assert_eq!(out.len(), 2);
        // The row-5 hit (id 3) completes before the row-6 conflict (id 2).
        assert_eq!(out[0].id, RequestId(3));
        assert_eq!(out[1].id, RequestId(2));
    }

    #[test]
    fn fcfs_serves_strictly_in_order() {
        let mut c = cfg();
        c.vault.scheduler = SchedulerKind::Fcfs;
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r1, d1, 0);
        let (_, end) = run_until(&mut v, 0, 1, 10_000);
        let (r2, d2) = req_at(&c, 2, 0, 6, 0, AccessKind::Read, end);
        let (r3, d3) = req_at(&c, 3, 0, 5, 1, AccessKind::Read, end + 1);
        v.try_enqueue(r2, d2, end);
        v.try_enqueue(r3, d3, end + 1);
        let (out, _) = run_until(&mut v, end + 1, 2, 40_000);
        assert_eq!(out[0].id, RequestId(2), "FCFS ignores row-buffer state");
        assert_eq!(out[1].id, RequestId(3));
    }

    #[test]
    fn closed_page_policy_precharges_after_service() {
        let mut c = cfg();
        c.vault.page_policy = PagePolicy::Closed;
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r1, d1, 0);
        let (_, end) = run_until(&mut v, 0, 1, 10_000);
        // Give the sweep time to close the bank.
        let mut out = Vec::new();
        let mut now = end;
        for _ in 0..1_000 {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        // A second access to the same row is a miss, not a hit.
        let (r2, d2) = req_at(&c, 2, 0, 5, 1, AccessKind::Read, now);
        v.try_enqueue(r2, d2, now);
        let (out2, _) = run_until(&mut v, now, 1, 10_000);
        assert_eq!(out2[0].source, ServiceSource::RowBufferMiss);
        assert_eq!(v.stats().row_misses.get(), 2);
    }

    #[test]
    fn responses_preserve_request_ids_and_metadata() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r, d) = req_at(&c, 42, 1, 3, 2, AccessKind::Read, 7);
        v.try_enqueue(r, d, 7);
        let (out, _) = run_until(&mut v, 7, 1, 10_000);
        assert_eq!(out[0].id, RequestId(42));
        assert_eq!(out[0].core, CoreId(0));
        assert_eq!(out[0].created_at, 7);
        assert_eq!(out[0].addr, r.addr);
        assert!(out[0].latency() > 0);
    }

    #[test]
    fn finalize_counts_resident_referenced_rows() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Base).unwrap();
        let (r, d) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r, d, 0);
        let mut out = Vec::new();
        for now in 1..3_000 {
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert_eq!(v.stats().prefetches.get(), 1);
        // The fetched row was never demand-referenced from the buffer
        // (the triggering read was served from the bank).
        v.finalize(3_000);
        assert_eq!(v.stats().prefetches_referenced.get(), 0);
        assert_eq!(v.stats().prefetch_accuracy(), Some(0.0));
        // Buffer lookups were synced into the energy counters.
        assert!(v.stats().energy.buffer_accesses > 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        // Conservation: every accepted read eventually produces exactly one
        // response, under random schemes, banks, rows, and arrival gaps.
        #[test]
        fn no_read_is_ever_lost(
            ops in proptest::collection::vec((0u16..8, 0u32..32, 0u16..16, 0u64..200), 1..60),
            scheme_idx in 0usize..6,
        ) {
            let c = cfg();
            let mut v = VaultController::new(0, &c, SchemeKind::ALL[scheme_idx]).unwrap();
            let mut now: Cycle = 0;
            let mut accepted = 0u64;
            let mut out = Vec::new();
            for (i, &(bank, row, col, gap)) in ops.iter().enumerate() {
                now += gap;
                let (r, d) = req_at(&c, i as u64, bank, row, col, AccessKind::Read, now);
                if v.try_enqueue(r, d, now) {
                    accepted += 1;
                }
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
            let deadline = now + 2_000_000;
            while v.busy() && now < deadline {
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
            proptest::prop_assert_eq!(out.len() as u64, accepted,
                "accepted reads must all complete");
            // And every response id is unique.
            let mut ids: Vec<u64> = out.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len() as u64, accepted);
        }
    }

    #[test]
    fn snapshot_mid_flight_resumes_bit_identically() {
        // Exercise every stateful engine: queued demand, an in-flight row
        // fetch, buffer residency, and pending responses — then snapshot,
        // restore onto a fresh vault, and require identical behavior.
        for kind in SchemeKind::ALL {
            let c = cfg();
            let mut a = VaultController::new(0, &c, kind).unwrap();
            let mut now: Cycle = 0;
            let mut out_a = Vec::new();
            for (i, row) in [5u32, 5, 5, 5, 5, 6, 5, 7].iter().enumerate() {
                let (r, d) = req_at(&c, i as u64, 0, *row, i as u16, AccessKind::Read, now);
                a.try_enqueue(r, d, now);
                for _ in 0..40 {
                    now += 1;
                    a.tick(now, &mut out_a, &mut Profiler::off());
                }
            }
            let state = a.save_state();
            let mut b = VaultController::new(0, &c, kind).unwrap();
            b.restore_state(&state).unwrap();
            let mut out_b = Vec::new();
            let deadline = now + 200_000;
            while (a.busy() || b.busy()) && now < deadline {
                now += 1;
                a.tick(now, &mut out_a, &mut Profiler::off());
                b.tick(now, &mut out_b, &mut Profiler::off());
            }
            // Responses emitted after the snapshot point must match exactly.
            let pending = out_a.len() - out_b.len();
            assert_eq!(
                &out_a[pending..],
                &out_b[..],
                "{kind}: post-snapshot responses diverged"
            );
            a.finalize(now);
            b.finalize(now);
            assert_eq!(a.stats(), b.stats(), "{kind}: stats diverged");
        }
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        let c = cfg();
        let a = VaultController::new(0, &c, SchemeKind::Camps).unwrap();
        let state = a.save_state();
        let mut c8 = cfg();
        c8.hmc.banks_per_vault = 8;
        let mut b = VaultController::new(0, &c8, SchemeKind::Camps).unwrap();
        let err = b.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("bank"));
    }

    #[test]
    fn vault_bus_serializes_bursts_across_banks() {
        // Two same-cycle reads to different banks: their data must be
        // spaced by at least one bus slot (t_burst), not returned together.
        let c = cfg();
        let t = TimingCpu::from_config(&c.dram, c.cpu.freq_hz);
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        let (r2, d2) = req_at(&c, 2, 1, 7, 0, AccessKind::Read, 0);
        assert!(v.try_enqueue(r1, d1, 0));
        assert!(v.try_enqueue(r2, d2, 0));
        let (out, _) = run_until(&mut v, 0, 2, 20_000);
        assert_eq!(out.len(), 2);
        let gap = out[1].completed_at.abs_diff(out[0].completed_at);
        assert!(
            gap >= t.t_burst,
            "bus must serialize: gap {gap} < tBURST {}",
            t.t_burst
        );
    }

    #[test]
    fn demand_bursts_interleave_with_row_fetch_chunks() {
        // Start a CAMPS fetch on bank 0, then send a demand read to bank 1.
        // The demand must complete long before the whole-row transfer
        // would finish if it monopolized the bus.
        let c = cfg();
        let t = TimingCpu::from_config(&c.dram, c.cpu.freq_hz);
        let mut v = VaultController::new(0, &c, SchemeKind::Base).unwrap();
        let (r1, d1) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        assert!(v.try_enqueue(r1, d1, 0));
        // Let the activation + fetch begin.
        let (out1, end) = run_until(&mut v, 0, 1, 20_000);
        assert_eq!(out1.len(), 1);
        let mut now = end;
        let (r2, d2) = req_at(&c, 2, 1, 7, 0, AccessKind::Read, now);
        assert!(v.try_enqueue(r2, d2, now));
        let (out2, _) = run_until(&mut v, now, 1, 20_000);
        // Bank-1 miss latency ≈ tRCD + tCL + tBURST plus at most a couple
        // of bus slots of fetch traffic — far less than a full row
        // transfer on top.
        let latency = out2[0].completed_at - now;
        assert!(
            latency < t.miss_read_latency() + t.t_row_transfer,
            "demand stuck behind fetch: {latency}"
        );
        now = out2[0].completed_at;
        // And the fetch still completes.
        let mut out = Vec::new();
        for _ in 0..5_000 {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert!(v.stats().prefetches.get() >= 1);
    }

    #[test]
    fn push_to_llc_emits_one_packet_per_block() {
        let mut c = cfg();
        c.prefetch.push_to_llc = true;
        let mut v = VaultController::new(0, &c, SchemeKind::Base).unwrap();
        let (r, d) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        assert!(v.try_enqueue(r, d, 0));
        let mut out = Vec::new();
        for now in 1..3_000 {
            v.tick(now, &mut out, &mut Profiler::off());
        }
        let pushes: Vec<_> = out.iter().filter(|r| r.push).collect();
        assert_eq!(
            pushes.len(),
            c.hmc.blocks_per_row() as usize,
            "one push packet per 64 B block of the prefetched row"
        );
        // Pushes cover every column of the row exactly once.
        let m = mapping(&c);
        let mut cols: Vec<u16> = pushes.iter().map(|r| m.decode(r.addr).col).collect();
        cols.sort_unstable();
        assert_eq!(cols, (0..16).collect::<Vec<u16>>());
        // And the demand response itself is not a push.
        assert!(out.iter().any(|r| !r.push && r.id == RequestId(1)));
    }

    #[test]
    fn refresh_fires_periodically_and_blocks_activation() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let t = TimingCpu::from_config(&c.dram, c.cpu.freq_hz);
        let mut out = Vec::new();
        // Run three refresh intervals with no traffic: the vault must
        // refresh on schedule.
        for now in 1..=(3 * t.t_refi + t.t_rfc) {
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert!(
            v.stats().refreshes.get() >= 2,
            "refreshes: {}",
            v.stats().refreshes.get()
        );
        assert_eq!(v.stats().energy.refreshes, v.stats().refreshes.get());
    }

    #[test]
    fn refresh_drains_open_rows_first() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let t = TimingCpu::from_config(&c.dram, c.cpu.freq_hz);
        // Open a row just before the refresh deadline.
        let start = v_next_refresh_probe(&c) - 200;
        let (r, d) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, start);
        let mut out = Vec::new();
        let mut now = start;
        assert!(v.try_enqueue(r, d, now));
        // Advance well past the deadline; the request is served, the row
        // closed, and the refresh eventually happens.
        for _ in 0..(t.t_refi / 2) {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert_eq!(out.len(), 1);
        assert!(v.stats().refreshes.get() >= 1);
    }

    /// First refresh deadline for vault 0 under `cfg` (mirrors the
    /// constructor's stagger formula).
    fn v_next_refresh_probe(c: &SystemConfig) -> Cycle {
        TimingCpu::from_config(&c.dram, c.cpu.freq_hz).t_refi
    }

    #[test]
    fn disabling_refresh_removes_all_refreshes() {
        let mut c = cfg();
        c.dram.t_refi = 0;
        let mut v = VaultController::new(0, &c, SchemeKind::Nopf).unwrap();
        let mut out = Vec::new();
        for now in 1..100_000 {
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert_eq!(v.stats().refreshes.get(), 0);
    }

    #[test]
    fn write_to_buffered_row_is_absorbed_and_written_back() {
        let c = cfg();
        let mut v = VaultController::new(0, &c, SchemeKind::Base).unwrap();
        // Prefetch row 5 via a read.
        let (r, d) = req_at(&c, 1, 0, 5, 0, AccessKind::Read, 0);
        v.try_enqueue(r, d, 0);
        let mut out = Vec::new();
        let mut now = 0;
        for _ in 0..3_000 {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert_eq!(v.stats().prefetches.get(), 1);
        // Write to the buffered row: absorbed, marks it dirty.
        let (w, dw) = req_at(&c, 2, 0, 5, 3, AccessKind::Write, now);
        assert!(v.try_enqueue(w, dw, now));
        assert_eq!(v.stats().buffer_hits.get(), 1);
        // Force eviction pressure: prefetch many other rows via reads.
        for i in 0..(c.prefetch.entries as u64 + 4) {
            let (r, d) = req_at(
                &c,
                100 + i,
                (i % 8) as u16 + 1,
                50 + i as u32,
                0,
                AccessKind::Read,
                now,
            );
            assert!(v.try_enqueue(r, d, now));
            for _ in 0..3_000 {
                now += 1;
                v.tick(now, &mut out, &mut Profiler::off());
            }
        }
        // The dirty row was evicted and written back to its bank.
        while v.busy() && now < 1_000_000 {
            now += 1;
            v.tick(now, &mut out, &mut Profiler::off());
        }
        assert_eq!(v.stats().writebacks.get(), 1);
        assert_eq!(v.stats().energy.row_writebacks, 1);
    }
}
