//! Per-vault statistics.

use camps_dram::energy::EnergyCounters;
use camps_stats::{Counter, Log2Histogram, Ratio};
use serde::{Deserialize, Serialize};

/// Everything one vault measures over a run. Merged across vaults by the
/// system layer and turned into the paper's figures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VaultStats {
    /// Demand reads completed (responses produced for reads).
    pub reads: Counter,
    /// Demand writes accepted.
    pub writes: Counter,
    /// Demand accesses served straight from the prefetch buffer.
    pub buffer_hits: Counter,
    /// Demand accesses that had to touch a bank: hits.
    pub row_hits: Counter,
    /// …row misses (idle bank, activation needed).
    pub row_misses: Counter,
    /// …row-buffer conflicts (precharge + activation needed) — the event
    /// CAMPS minimizes (Figure 6).
    pub row_conflicts: Counter,
    /// Whole rows prefetched into the buffer.
    pub prefetches: Counter,
    /// Prefetched rows that were referenced at least once before leaving
    /// the buffer — numerator of Figure 7's accuracy.
    pub prefetches_referenced: Counter,
    /// Prefetch fetches abandoned because the row closed first.
    pub prefetches_dropped: Counter,
    /// Dirty prefetched rows written back to their bank.
    pub writebacks: Counter,
    /// Demand requests rejected for a full queue (backpressure events).
    pub queue_rejects: Counter,
    /// Round-trip latency of reads inside the vault (enqueue → response),
    /// CPU cycles.
    pub read_latency: Log2Histogram,
    /// Write-drain activations.
    pub drain_entries: Counter,
    /// All-bank refreshes performed.
    #[serde(default)]
    pub refreshes: Counter,
    /// Cycles the vault's shared TSV data bus was granted (demand bursts,
    /// fetch slots, writeback transfers) — bandwidth-utilization metric.
    #[serde(default)]
    pub bus_busy_cycles: Counter,
    /// ACT commands issued on behalf of demand requests.
    #[serde(default)]
    pub demand_activations: Counter,
    /// ACT commands issued to fetch prefetch rows into the buffer — the
    /// activations a prefetching scheme *adds* over a no-prefetch
    /// baseline (RowHammer amplification numerator).
    #[serde(default)]
    pub prefetch_activations: Counter,
    /// ACT commands issued to write dirty prefetched rows back.
    #[serde(default)]
    pub writeback_activations: Counter,
    /// Worst per-row activation count observed inside any single refresh
    /// window (tREFI ≡ tREFW here) — the RowHammer exposure metric.
    /// Merged across vaults by max, not sum.
    #[serde(default)]
    pub worst_row_window_acts: u64,
    /// TRR-style neighbor refreshes injected by the rowguard mitigation
    /// (always zero with mitigation off).
    #[serde(default)]
    pub mitigations: Counter,
    /// DRAM/prefetch energy events.
    pub energy: EnergyCounters,
}

impl VaultStats {
    /// Fresh, zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bank accesses that were classified (hit + miss + conflict).
    #[must_use]
    pub fn bank_accesses(&self) -> u64 {
        self.row_hits.get() + self.row_misses.get() + self.row_conflicts.get()
    }

    /// Row-buffer conflict rate over bank accesses (Figure 6's metric),
    /// `None` when the vault saw no bank traffic.
    #[must_use]
    pub fn conflict_rate(&self) -> Option<f64> {
        let total = self.bank_accesses();
        (total > 0).then(|| self.row_conflicts.as_f64() / total as f64)
    }

    /// Prefetch accuracy (Figure 7): referenced / issued.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> Option<f64> {
        let issued = self.prefetches.get();
        (issued > 0).then(|| self.prefetches_referenced.as_f64() / issued as f64)
    }

    /// Fraction of demand traffic served by the prefetch buffer.
    #[must_use]
    pub fn buffer_hit_rate(&self) -> Ratio {
        let mut r = Ratio::new();
        r.hits.add(self.buffer_hits.get());
        r.total.add(self.buffer_hits.get() + self.bank_accesses());
        r
    }

    /// Folds another vault's stats into this one.
    pub fn merge(&mut self, other: &VaultStats) {
        self.reads.merge(other.reads);
        self.writes.merge(other.writes);
        self.buffer_hits.merge(other.buffer_hits);
        self.row_hits.merge(other.row_hits);
        self.row_misses.merge(other.row_misses);
        self.row_conflicts.merge(other.row_conflicts);
        self.prefetches.merge(other.prefetches);
        self.prefetches_referenced
            .merge(other.prefetches_referenced);
        self.prefetches_dropped.merge(other.prefetches_dropped);
        self.writebacks.merge(other.writebacks);
        self.queue_rejects.merge(other.queue_rejects);
        self.read_latency.merge(&other.read_latency);
        self.drain_entries.merge(other.drain_entries);
        self.refreshes.merge(other.refreshes);
        self.bus_busy_cycles.merge(other.bus_busy_cycles);
        self.demand_activations.merge(other.demand_activations);
        self.prefetch_activations.merge(other.prefetch_activations);
        self.writeback_activations
            .merge(other.writeback_activations);
        // Worst-case exposure is a maximum across vaults: summing would
        // overstate what any single row experienced.
        self.worst_row_window_acts = self.worst_row_window_acts.max(other.worst_row_window_acts);
        self.mitigations.merge(other.mitigations);
        self.energy.merge(&other.energy);
    }

    /// Total ACT commands issued, by attribution.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.demand_activations.get()
            + self.prefetch_activations.get()
            + self.writeback_activations.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_rate_over_bank_accesses() {
        let mut s = VaultStats::new();
        s.row_hits.add(6);
        s.row_misses.add(2);
        s.row_conflicts.add(2);
        assert_eq!(s.bank_accesses(), 10);
        assert_eq!(s.conflict_rate(), Some(0.2));
    }

    #[test]
    fn empty_rates_are_none() {
        let s = VaultStats::new();
        assert_eq!(s.conflict_rate(), None);
        assert_eq!(s.prefetch_accuracy(), None);
    }

    #[test]
    fn accuracy_is_referenced_over_issued() {
        let mut s = VaultStats::new();
        s.prefetches.add(8);
        s.prefetches_referenced.add(6);
        assert_eq!(s.prefetch_accuracy(), Some(0.75));
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = VaultStats::new();
        a.reads.add(2);
        a.read_latency.record(100);
        let mut b = VaultStats::new();
        b.reads.add(3);
        b.row_conflicts.add(1);
        b.read_latency.record(200);
        a.merge(&b);
        assert_eq!(a.reads.get(), 5);
        assert_eq!(a.row_conflicts.get(), 1);
        assert_eq!(a.read_latency.count(), 2);
    }

    #[test]
    fn worst_window_acts_merge_by_max_and_activations_by_sum() {
        let mut a = VaultStats::new();
        a.demand_activations.add(10);
        a.prefetch_activations.add(4);
        a.worst_row_window_acts = 7;
        let mut b = VaultStats::new();
        b.demand_activations.add(1);
        b.writeback_activations.add(2);
        b.worst_row_window_acts = 90;
        b.mitigations.add(3);
        a.merge(&b);
        assert_eq!(a.total_activations(), 17);
        assert_eq!(a.worst_row_window_acts, 90, "max, not sum");
        assert_eq!(a.mitigations.get(), 3);
    }

    #[test]
    fn buffer_hit_rate_combines_buffer_and_bank_traffic() {
        let mut s = VaultStats::new();
        s.buffer_hits.add(3);
        s.row_hits.add(1);
        assert_eq!(s.buffer_hit_rate().value(), Some(0.75));
    }
}
