//! The HMC vault controller.
//!
//! Each of the 32 vaults owns 16 banks, a read queue and a write queue of
//! 32 entries each (Table I), an FR-FCFS (or FCFS) command scheduler, an
//! open- or closed-page policy, and — the paper's contribution — a
//! prefetch engine: the prefetch buffer plus one of the evaluated
//! [`camps_prefetch::SchemeKind`]s.
//!
//! Request life cycle inside a vault:
//!
//! 1. [`controller::VaultController::try_enqueue`] probes the prefetch
//!    buffer ("the vault controller will first check the prefetch buffer",
//!    §3.1). A hit answers in the 22-cycle buffer latency; a miss enters
//!    the read/write queue (backpressure when full).
//! 2. Every [`controller::VaultController::tick`], the scheduler issues at
//!    most one DRAM command (PRE/ACT/RD/WR), starts pending row fetches
//!    (whole-row transfers into the buffer over the TSVs), advances dirty
//!    writebacks, and collects due responses.
//! 3. Row-buffer events are fed to the prefetch scheme, whose
//!    [`camps_prefetch::PfAction`]s create row-fetch jobs.

#![warn(missing_docs)]

pub mod controller;
pub mod queue;
pub mod stats;

pub use controller::VaultController;
pub use queue::Queued;
pub use stats::VaultStats;
