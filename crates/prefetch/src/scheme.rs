//! The prefetch-scheme interface and the factory for all evaluated schemes.
//!
//! The vault controller translates its row-buffer activity into calls on
//! [`PrefetchScheme`]; the scheme answers with [`PfAction`]s. Keeping the
//! interface event-shaped (rather than letting schemes poke at DRAM state)
//! makes every scheme a pure, unit-testable state machine and guarantees
//! all five schemes see exactly the same information the paper's hardware
//! would: row-buffer hit/miss/conflict outcomes and read-queue occupancy.

use crate::replacement::ReplacementKind;
use crate::schemes::{base::Base, base_hit::BaseHit, camps::Camps, mmd::Mmd, none::Nopf};
use camps_types::addr::RowKey;
use camps_types::clock::Cycle;
use camps_types::config::PrefetchBufferConfig;
use serde::value::Value;
use serde::{de, Deserialize, Serialize};
use std::fmt;

/// What the vault controller should do in response to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfAction {
    /// Nothing to prefetch.
    None,
    /// Stream the currently open row `key` into the prefetch buffer over
    /// the TSV path.
    FetchRow {
        /// The row to copy (it is open in its bank when the action fires).
        key: RowKey,
        /// Close the bank once the copy completes. CAMPS and BASE do this
        /// ("…and precharges bank to make it ready for next request",
        /// §3.1); BASE-HIT/MMD leave the row open under the open-page
        /// policy.
        precharge_after: bool,
        /// How many *additional* sequential rows (`key.row + 1 …`) to
        /// prefetch after this one — MMD's adaptive lookahead degree.
        /// Lookahead rows need their own activations; the vault schedules
        /// them as background fetch jobs.
        lookahead: u32,
        /// Distinct lines already served from the open row before this
        /// fetch (the RUT count); seeds the buffer entry's §3.2
        /// utilization counter.
        used_so_far: u32,
    },
}

/// One of the paper's evaluated prefetching schemes.
pub trait PrefetchScheme: Send {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Replacement policy the prefetch buffer should use under this scheme.
    fn replacement(&self) -> ReplacementKind;

    /// A demand access was just served from the open row `key`
    /// (row-buffer hit). `queued_same_row` counts *other* read-queue
    /// entries waiting on the same row.
    fn on_row_hit(&mut self, key: RowKey, queued_same_row: u32) -> PfAction;

    /// Row `key` was just activated to serve a demand access.
    /// `conflict` is true if a different row had to be closed first.
    fn on_row_activated(&mut self, key: RowKey, conflict: bool, queued_same_row: u32) -> PfAction;

    /// The prefetch buffer served a demand access from `key`;
    /// `first_touch` marks the first demand reference to that resident row
    /// (the usefulness signal MMD adapts on).
    fn on_buffer_hit(&mut self, key: RowKey, first_touch: bool) {
        let _ = (key, first_touch);
    }

    /// Row `key` left the buffer; `referenced` tells whether any demand
    /// access touched it while resident.
    fn on_buffer_evicted(&mut self, key: RowKey, referenced: bool) {
        let _ = (key, referenced);
    }

    /// Earliest cycle strictly after `now` at which the scheme needs a
    /// tick on its own (the [`camps_types::wake::Wake`] contract). Schemes
    /// are event-shaped — they act only when the vault controller calls
    /// them — so the default is never.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let _ = now;
        None
    }

    /// Diagnostic one-liner of internal state (adaptive thresholds etc.).
    fn debug_state(&self) -> String {
        self.kind().name().to_string()
    }

    /// `(RUT entries, CT entries)` currently live — the occupancy gauge
    /// behind the metrics time-series. Table-less schemes report zero.
    fn table_occupancy(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Captures the scheme's mutable state (RUT/CT contents, adaptive
    /// thresholds) for checkpointing. Stateless schemes return
    /// [`Value::Null`] (the default).
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Overlays state captured by [`PrefetchScheme::save_state`] on an
    /// identically constructed scheme.
    ///
    /// # Errors
    /// Returns a deserialization error on shape mismatch (snapshot from a
    /// different scheme kind or a format break).
    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        let _ = state;
        Ok(())
    }
}

/// Identifier + factory for the evaluated schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// No prefetching (reference point for ablations; not in Figure 5).
    Nopf,
    /// Prefetch the whole row on the first access to it (paper's BASE).
    Base,
    /// Prefetch a row once ≥ 2 read-queue requests target it (BASE-HIT).
    BaseHit,
    /// Usefulness-adaptive memory-side prefetcher with LRU buffer (MMD).
    Mmd,
    /// Conflict-aware prefetching (§3.1) with an LRU buffer (CAMPS).
    Camps,
    /// CAMPS + utilization/recency buffer management (§3.2, CAMPS-MOD).
    CampsMod,
}

impl SchemeKind {
    /// Every scheme, NOPF included.
    pub const ALL: [SchemeKind; 6] = [
        Self::Nopf,
        Self::Base,
        Self::BaseHit,
        Self::Mmd,
        Self::Camps,
        Self::CampsMod,
    ];

    /// The five schemes of Figure 5 (everything except NOPF).
    pub const PAPER: [SchemeKind; 5] = [
        Self::Base,
        Self::BaseHit,
        Self::Mmd,
        Self::Camps,
        Self::CampsMod,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Nopf => "NOPF",
            Self::Base => "BASE",
            Self::BaseHit => "BASE-HIT",
            Self::Mmd => "MMD",
            Self::Camps => "CAMPS",
            Self::CampsMod => "CAMPS-MOD",
        }
    }

    /// Instantiates the scheme for a vault with `banks` banks.
    #[must_use]
    pub fn build(self, cfg: &PrefetchBufferConfig, banks: u32) -> Box<dyn PrefetchScheme> {
        match self {
            Self::Nopf => Box::new(Nopf),
            Self::Base => Box::new(Base),
            Self::BaseHit => Box::new(BaseHit),
            Self::Mmd => Box::new(Mmd::new(banks, cfg.mmd_epoch)),
            Self::Camps => Box::new(Camps::new(banks, cfg, ReplacementKind::Lru)),
            Self::CampsMod => Box::new(Camps::new(banks, cfg, ReplacementKind::UtilRecency)),
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;

    #[test]
    fn names_match_paper_figures() {
        assert_eq!(SchemeKind::Base.name(), "BASE");
        assert_eq!(SchemeKind::BaseHit.name(), "BASE-HIT");
        assert_eq!(SchemeKind::Mmd.name(), "MMD");
        assert_eq!(SchemeKind::Camps.name(), "CAMPS");
        assert_eq!(SchemeKind::CampsMod.name(), "CAMPS-MOD");
        assert_eq!(SchemeKind::CampsMod.to_string(), "CAMPS-MOD");
    }

    #[test]
    fn factory_builds_matching_kinds() {
        let cfg = SystemConfig::paper_default().prefetch;
        for kind in SchemeKind::ALL {
            let s = kind.build(&cfg, 16);
            assert_eq!(s.kind(), kind);
        }
    }

    #[test]
    fn only_camps_mod_uses_util_recency() {
        let cfg = SystemConfig::paper_default().prefetch;
        for kind in SchemeKind::ALL {
            let s = kind.build(&cfg, 16);
            let expect = if kind == SchemeKind::CampsMod {
                ReplacementKind::UtilRecency
            } else {
                ReplacementKind::Lru
            };
            assert_eq!(s.replacement(), expect, "{kind}");
        }
    }

    #[test]
    fn paper_set_excludes_nopf() {
        assert!(!SchemeKind::PAPER.contains(&SchemeKind::Nopf));
        assert_eq!(SchemeKind::PAPER.len(), 5);
    }
}
