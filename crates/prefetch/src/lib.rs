//! The CAMPS prefetch engine — the paper's contribution.
//!
//! Each HMC vault controller owns:
//!
//! * a [`buffer::PrefetchBuffer`] (Table I: 16 KB, fully associative, 1 KB
//!   row entries, 22-cycle hit latency) with a pluggable
//!   [`replacement`] policy — plain LRU or the paper's §3.2
//!   utilization + recency policy,
//! * a [`tables::RowUtilizationTable`] (RUT, one entry per bank) and a
//!   [`tables::ConflictTable`] (CT, 32 entries, fully associative, LRU)
//!   driving the §3.1 conflict-aware prefetch decision,
//! * a [`scheme::PrefetchScheme`] implementing one of the evaluated
//!   policies: `NOPF`, `BASE`, `BASE-HIT`, `MMD`, `CAMPS`, `CAMPS-MOD`.
//!
//! The vault controller (in `camps-vault`) feeds the scheme a stream of
//! row-buffer events and executes the returned [`scheme::PfAction`]s; this
//! crate is purely the decision + bookkeeping logic, so every mechanism is
//! unit-testable without a DRAM model.

#![warn(missing_docs)]

pub mod buffer;
pub mod replacement;
pub mod scheme;
pub mod schemes;
pub mod tables;

pub use buffer::{Evicted, PrefetchBuffer};
pub use replacement::ReplacementKind;
pub use scheme::{PfAction, PrefetchScheme, SchemeKind};
pub use tables::{ConflictTable, RowUtilizationTable};
