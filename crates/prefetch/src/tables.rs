//! The CAMPS profiling tables (§3.1).
//!
//! * [`RowUtilizationTable`] (RUT) — one entry per bank in the vault
//!   (16 in Table I, 20 bits each): tracks how many requests have been
//!   served from the row *currently open* in that bank's row buffer.
//! * [`ConflictTable`] (CT) — 32 entries per vault, fully associative,
//!   shared by all banks, LRU-replaced: remembers rows recently displaced
//!   from row buffers. A row found here on re-activation has been bouncing
//!   in and out of the row buffer — a conflict-prone row worth prefetching.

use camps_types::addr::RowKey;
use serde::{Deserialize, Serialize};

/// Per-bank utilization counters for the currently open rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowUtilizationTable {
    /// `entries[bank]` = (row, hits served from it while open).
    entries: Vec<Option<(u32, u32)>>,
}

impl RowUtilizationTable {
    /// One slot per bank.
    #[must_use]
    pub fn new(banks: u32) -> Self {
        Self {
            entries: vec![None; banks as usize],
        }
    }

    /// Number of banks currently tracking a row (occupancy gauge for
    /// the metrics time-series).
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Current tracked (row, count) for `bank`.
    #[must_use]
    pub fn get(&self, bank: u16) -> Option<(u32, u32)> {
        self.entries[bank as usize]
    }

    /// Records a row-buffer hit on `row` in `bank` and returns the updated
    /// count. If the table was tracking nothing (or — after a prefetch
    /// cleared it — a stale row), it starts tracking `row` at 1.
    pub fn record_hit(&mut self, bank: u16, row: u32) -> u32 {
        let slot = &mut self.entries[bank as usize];
        match slot {
            Some((r, c)) if *r == row => {
                *c += 1;
                *c
            }
            _ => {
                *slot = Some((row, 1));
                1
            }
        }
    }

    /// A new row was opened in `bank`: starts tracking it (count 1 — the
    /// activation serves a request) and returns the *displaced* entry, if
    /// any, which §3.1 moves into the Conflict Table.
    pub fn open_row(&mut self, bank: u16, row: u32) -> Option<(u32, u32)> {
        self.entries[bank as usize]
            .replace((row, 1))
            .filter(|(r, _)| *r != row)
    }

    /// Clears the entry for `bank` (done after the tracked row is
    /// prefetched and the bank precharged).
    pub fn clear(&mut self, bank: u16) {
        self.entries[bank as usize] = None;
    }
}

/// Fully associative, LRU-managed table of conflict-victim rows.
///
/// Each entry carries the displaced row's accumulated utilization count —
/// the paper sizes CT entries at 20 bits precisely so "the row utilization
/// information kept in CT is used later to determine whether a row causes
/// row buffer conflicts" (§3.1): evidence accumulates across displacements
/// of the same row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictTable {
    /// Most recently inserted/refreshed first: (row, accumulated accesses).
    entries: Vec<(RowKey, u32)>,
    capacity: usize,
    evictions: u64,
}

impl ConflictTable {
    /// An empty table of `capacity` entries (32 in §3.1).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "conflict table needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            evictions: 0,
        }
    }

    /// Number of tracked rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table tracks nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `key` is tracked (no LRU update).
    #[must_use]
    pub fn contains(&self, key: RowKey) -> bool {
        self.entries.iter().any(|&(k, _)| k == key)
    }

    /// Accumulated utilization recorded for `key`, if tracked.
    #[must_use]
    pub fn count_of(&self, key: RowKey) -> Option<u32> {
        self.entries
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, c)| c)
    }

    /// Inserts `key` as MRU with `count` accesses from its just-ended
    /// residency, accumulating onto any existing entry; evicts the LRU row
    /// when full.
    pub fn insert(&mut self, key: RowKey, count: u32) {
        let prior = match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => self.entries.remove(pos).1,
            None => {
                if self.entries.len() == self.capacity {
                    self.entries.pop();
                    self.evictions += 1;
                }
                0
            }
        };
        self.entries.insert(0, (key, prior.saturating_add(count)));
    }

    /// Removes `key` (done once the row has been prefetched), returning
    /// its accumulated count if it was present.
    pub fn remove(&mut self, key: RowKey) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    /// LRU evictions performed so far (capacity-pressure metric).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(bank: u16, row: u32) -> RowKey {
        RowKey { bank, row }
    }

    #[test]
    fn rut_counts_hits_per_open_row() {
        let mut rut = RowUtilizationTable::new(16);
        assert_eq!(rut.record_hit(3, 100), 1);
        assert_eq!(rut.record_hit(3, 100), 2);
        assert_eq!(rut.record_hit(3, 100), 3);
        assert_eq!(rut.get(3), Some((100, 3)));
        assert_eq!(rut.get(4), None);
    }

    #[test]
    fn rut_hit_on_untracked_row_restarts_count() {
        let mut rut = RowUtilizationTable::new(16);
        rut.record_hit(0, 7);
        rut.record_hit(0, 7);
        // The vault opened row 9 without informing RUT (e.g. after clear):
        // a hit on 9 restarts tracking rather than counting toward row 7.
        assert_eq!(rut.record_hit(0, 9), 1);
        assert_eq!(rut.get(0), Some((9, 1)));
    }

    #[test]
    fn rut_open_row_displaces_previous_entry() {
        let mut rut = RowUtilizationTable::new(16);
        rut.record_hit(2, 50);
        rut.record_hit(2, 50);
        let displaced = rut.open_row(2, 60);
        assert_eq!(displaced, Some((50, 2)));
        assert_eq!(rut.get(2), Some((60, 1)));
    }

    #[test]
    fn rut_reopen_same_row_displaces_nothing() {
        let mut rut = RowUtilizationTable::new(16);
        rut.open_row(1, 5);
        assert_eq!(rut.open_row(1, 5), None);
    }

    #[test]
    fn rut_clear_empties_bank_slot() {
        let mut rut = RowUtilizationTable::new(16);
        rut.record_hit(0, 1);
        rut.clear(0);
        assert_eq!(rut.get(0), None);
    }

    #[test]
    fn ct_insert_contains_remove() {
        let mut ct = ConflictTable::new(4);
        ct.insert(key(0, 1), 2);
        assert!(ct.contains(key(0, 1)));
        assert_eq!(ct.count_of(key(0, 1)), Some(2));
        assert_eq!(ct.remove(key(0, 1)), Some(2));
        assert!(!ct.contains(key(0, 1)));
        assert_eq!(ct.remove(key(0, 1)), None);
    }

    #[test]
    fn ct_lru_eviction_when_full() {
        let mut ct = ConflictTable::new(2);
        ct.insert(key(0, 1), 1);
        ct.insert(key(0, 2), 1);
        ct.insert(key(0, 3), 1); // evicts (0,1), the LRU
        assert!(!ct.contains(key(0, 1)));
        assert!(ct.contains(key(0, 2)));
        assert!(ct.contains(key(0, 3)));
        assert_eq!(ct.evictions(), 1);
    }

    #[test]
    fn ct_reinsert_accumulates_and_refreshes_lru() {
        let mut ct = ConflictTable::new(2);
        ct.insert(key(0, 1), 1);
        ct.insert(key(0, 2), 1);
        ct.insert(key(0, 1), 3); // refresh → (0,2) becomes LRU; count 1+3
        assert_eq!(ct.count_of(key(0, 1)), Some(4));
        ct.insert(key(0, 3), 1);
        assert!(ct.contains(key(0, 1)));
        assert!(!ct.contains(key(0, 2)));
    }

    #[test]
    fn ct_shared_across_banks() {
        let mut ct = ConflictTable::new(32);
        for bank in 0..16 {
            ct.insert(key(bank, 1), 1);
        }
        assert_eq!(ct.len(), 16);
        for bank in 0..16 {
            assert!(ct.contains(key(bank, 1)));
        }
    }

    proptest! {
        #[test]
        fn ct_never_exceeds_capacity_and_keeps_mru(
            rows in prop::collection::vec((0u16..4, 0u32..50), 1..200)
        ) {
            let mut ct = ConflictTable::new(8);
            for &(b, r) in &rows {
                ct.insert(key(b, r), 1);
                prop_assert!(ct.len() <= 8);
                prop_assert!(ct.contains(key(b, r)), "just-inserted row must be present");
            }
        }

        #[test]
        fn rut_counts_are_per_bank_independent(
            hits in prop::collection::vec((0u16..8, 0u32..4), 1..100)
        ) {
            let mut rut = RowUtilizationTable::new(8);
            let mut model: Vec<Option<(u32, u32)>> = vec![None; 8];
            for &(b, r) in &hits {
                let c = rut.record_hit(b, r);
                let slot = &mut model[b as usize];
                match slot {
                    Some((mr, mc)) if *mr == r => *mc += 1,
                    _ => *slot = Some((r, 1)),
                }
                prop_assert_eq!(Some((r, c)), *slot);
            }
        }
    }
}
