//! CAMPS — conflict-aware memory-side prefetching (§3.1 of the paper).
//!
//! Decision logic, exactly as Figure 3 of the paper describes:
//!
//! * **Row-buffer hit** → count it in the RUT. Once a row has served more
//!   than the threshold (4) requests while open, it is clearly hot:
//!   stream the whole row into the prefetch buffer and precharge the bank.
//!   The row's RUT entry is cleared (it is no longer open).
//! * **Row-buffer miss/conflict (activation)** → if the newly opened row
//!   already has an entry in the Conflict Table, it has been displaced
//!   recently — a conflict-prone row: prefetch it immediately, remove it
//!   from the CT, and precharge the bank. Otherwise keep the row open and
//!   start tracking it in the RUT; whatever entry the RUT held for that
//!   bank is *moved* into the CT (that row was just displaced by this
//!   activation).
//!
//! With `ReplacementKind::UtilRecency` this becomes CAMPS-MOD (§3.2).

use crate::replacement::ReplacementKind;
use crate::scheme::{PfAction, PrefetchScheme, SchemeKind};
use crate::tables::{ConflictTable, RowUtilizationTable};
use camps_types::addr::RowKey;
use camps_types::config::PrefetchBufferConfig;
use camps_types::snapshot::decode;
use serde::value::Value;
use serde::{de, Serialize as _};

/// The conflict-aware scheme (CAMPS, or CAMPS-MOD when built with the
/// utilization + recency replacement policy).
#[derive(Debug)]
pub struct Camps {
    rut: RowUtilizationTable,
    ct: ConflictTable,
    threshold: u32,
    /// Minimum accumulated CT evidence (past accesses + the reactivating
    /// access) before a CT hit triggers the fetch.
    ct_evidence: u32,
    replacement: ReplacementKind,
}

impl Camps {
    /// Creates the scheme for a vault with `banks` banks.
    #[must_use]
    pub fn new(banks: u32, cfg: &PrefetchBufferConfig, replacement: ReplacementKind) -> Self {
        Self {
            rut: RowUtilizationTable::new(banks),
            ct: ConflictTable::new(cfg.ct_entries),
            threshold: cfg.rut_threshold,
            ct_evidence: cfg.ct_evidence,
            replacement,
        }
    }

    /// Read-only view of the conflict table (tests/ablations).
    #[must_use]
    pub fn conflict_table(&self) -> &ConflictTable {
        &self.ct
    }

    /// Read-only view of the row-utilization table (tests/ablations).
    #[must_use]
    pub fn utilization_table(&self) -> &RowUtilizationTable {
        &self.rut
    }
}

impl PrefetchScheme for Camps {
    fn kind(&self) -> SchemeKind {
        match self.replacement {
            ReplacementKind::UtilRecency => SchemeKind::CampsMod,
            // LRU is the paper's plain CAMPS; other policies (FIFO, …) are
            // ablation variants of it.
            _ => SchemeKind::Camps,
        }
    }

    fn replacement(&self) -> ReplacementKind {
        self.replacement
    }

    fn on_row_hit(&mut self, key: RowKey, _queued_same_row: u32) -> PfAction {
        let count = self.rut.record_hit(key.bank, key.row);
        if count > self.threshold {
            // §3.1: "If the number of accesses to a row exceeds a threshold
            // value (four in our experiment), our scheme fetches the whole
            // row to the prefetch buffer and precharges bank."
            self.rut.clear(key.bank);
            PfAction::FetchRow {
                key,
                precharge_after: true,
                lookahead: 0,
                used_so_far: count,
            }
        } else {
            PfAction::None
        }
    }

    fn on_row_activated(
        &mut self,
        key: RowKey,
        _conflict: bool,
        _queued_same_row: u32,
    ) -> PfAction {
        if self.ct.contains(key) {
            // §3.1: "if the newly opened row already has an entry in CT …
            // this row caused row-buffer conflict and is a good candidate
            // for prefetching. After fetching this row to the prefetch
            // buffer, its entry will be removed from the CT and the bank is
            // precharged." The utilization information carried in the CT
            // gates the decision: enough accumulated evidence (past
            // residencies + this access) marks a genuinely conflict-prone
            // row; a row seen only once before keeps accumulating instead.
            let prior = self.ct.count_of(key).unwrap_or(0);
            if prior + 1 >= self.ct_evidence {
                self.ct.remove(key);
                return PfAction::FetchRow {
                    key,
                    precharge_after: true,
                    lookahead: 0,
                    used_so_far: 1,
                };
            }
        }
        // §3.1: the newly opened row starts tracking in the RUT; the
        // displaced RUT entry moves to the CT.
        if let Some((old_row, count)) = self.rut.open_row(key.bank, key.row) {
            self.ct.insert(
                RowKey {
                    bank: key.bank,
                    row: old_row,
                },
                count,
            );
        }
        PfAction::None
    }

    fn table_occupancy(&self) -> (usize, usize) {
        (self.rut.occupied(), self.ct.len())
    }

    fn save_state(&self) -> Value {
        // `threshold`, `ct_evidence`, and `replacement` come from the
        // configuration; only the profiling tables are mutable state.
        Value::Map(vec![
            ("rut".into(), self.rut.to_value()),
            ("ct".into(), self.ct.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        self.rut = decode(state, "rut")?;
        self.ct = decode(state, "ct")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;

    fn scheme() -> Camps {
        let cfg = SystemConfig::paper_default().prefetch;
        Camps::new(16, &cfg, ReplacementKind::Lru)
    }

    fn k(bank: u16, row: u32) -> RowKey {
        RowKey { bank, row }
    }

    #[test]
    fn hot_row_prefetched_after_threshold_exceeded() {
        let mut s = scheme();
        assert_eq!(s.on_row_activated(k(0, 10), false, 0), PfAction::None);
        // Activation counts as access 1; hits 2..=4 stay below the trigger
        // ("exceeds a threshold value (four)").
        for _ in 0..3 {
            assert_eq!(s.on_row_hit(k(0, 10), 0), PfAction::None);
        }
        // Fifth access exceeds 4 → fetch + precharge.
        assert_eq!(
            s.on_row_hit(k(0, 10), 0),
            PfAction::FetchRow {
                key: k(0, 10),
                precharge_after: true,
                lookahead: 0,
                used_so_far: 5
            }
        );
        // The RUT entry is gone; the row is NOT in the CT (prefetched rows
        // leave the tables entirely).
        assert_eq!(s.utilization_table().get(0), None);
        assert!(!s.conflict_table().contains(k(0, 10)));
    }

    #[test]
    fn displaced_row_moves_to_conflict_table() {
        let mut s = scheme();
        s.on_row_activated(k(0, 10), false, 0);
        s.on_row_hit(k(0, 10), 0);
        // A different row opens in the same bank: row 10 moves RUT → CT.
        assert_eq!(s.on_row_activated(k(0, 11), true, 0), PfAction::None);
        assert!(s.conflict_table().contains(k(0, 10)));
        assert_eq!(s.utilization_table().get(0), Some((11, 1)));
    }

    #[test]
    fn reactivated_conflict_victim_is_prefetched_once_evidence_accrues() {
        let mut s = scheme(); // ct_evidence = 3 (paper default config)
        s.on_row_activated(k(0, 10), false, 0);
        s.on_row_activated(k(0, 11), true, 0); // 10 → CT with count 1
                                               // First return of row 10: accumulated evidence 1 + 1 = 2 < 3 — it
                                               // keeps profiling instead of fetching, and 11 is displaced to CT.
        assert_eq!(s.on_row_activated(k(0, 10), true, 0), PfAction::None);
        assert!(s.conflict_table().contains(k(0, 11)));
        // Another bounce: 10 displaced again (CT count accumulates to 2)…
        assert_eq!(s.on_row_activated(k(0, 11), true, 0), PfAction::None);
        // …and on its second return the evidence (2 + 1 = 3) fires.
        assert_eq!(
            s.on_row_activated(k(0, 10), true, 0),
            PfAction::FetchRow {
                key: k(0, 10),
                precharge_after: true,
                lookahead: 0,
                used_so_far: 1
            }
        );
        // Consumed from the CT.
        assert!(!s.conflict_table().contains(k(0, 10)));
    }

    #[test]
    fn ct_fires_immediately_with_minimum_evidence() {
        let mut cfg = SystemConfig::paper_default().prefetch;
        cfg.ct_evidence = 2; // the paper's letter: any re-activation fires
        let mut s = Camps::new(16, &cfg, ReplacementKind::Lru);
        s.on_row_activated(k(0, 10), false, 0);
        s.on_row_activated(k(0, 11), true, 0); // 10 → CT
        assert!(matches!(
            s.on_row_activated(k(0, 10), true, 0),
            PfAction::FetchRow { .. }
        ));
    }

    #[test]
    fn conflict_table_is_shared_across_banks() {
        let mut s = scheme();
        for bank in 0..16 {
            s.on_row_activated(k(bank, 1), false, 0);
            s.on_row_activated(k(bank, 2), true, 0); // (bank,1) → CT
        }
        for bank in 0..16 {
            assert!(s.conflict_table().contains(k(bank, 1)));
        }
    }

    #[test]
    fn ct_capacity_is_lru_bounded() {
        let cfg = SystemConfig::paper_default().prefetch;
        let mut s = Camps::new(16, &cfg, ReplacementKind::Lru);
        // Displace 40 distinct rows through bank 0's RUT slot; the CT holds
        // the 32 most recent.
        for row in 0..41u32 {
            s.on_row_activated(k(0, row), row > 0, 0);
        }
        // Rows 0..8 displaced first → evicted; rows 8..40 resident.
        assert!(!s.conflict_table().contains(k(0, 0)));
        assert!(!s.conflict_table().contains(k(0, 7)));
        assert!(s.conflict_table().contains(k(0, 8)));
        assert!(s.conflict_table().contains(k(0, 39)));
        assert_eq!(s.conflict_table().len(), 32);
    }

    #[test]
    fn kind_tracks_replacement_policy() {
        let cfg = SystemConfig::paper_default().prefetch;
        assert_eq!(
            Camps::new(16, &cfg, ReplacementKind::Lru).kind(),
            SchemeKind::Camps
        );
        assert_eq!(
            Camps::new(16, &cfg, ReplacementKind::UtilRecency).kind(),
            SchemeKind::CampsMod
        );
    }

    #[test]
    fn snapshot_round_trips_profiling_tables() {
        let mut a = scheme();
        // Populate both tables: open rows, displace a few into the CT.
        for row in 0..6u32 {
            a.on_row_activated(k(0, row), row > 0, 0);
        }
        a.on_row_hit(k(0, 5), 0);
        let state = a.save_state();
        let mut b = scheme();
        b.restore_state(&state).unwrap();
        assert_eq!(a.utilization_table(), b.utilization_table());
        assert_eq!(a.conflict_table(), b.conflict_table());
        // Identical behavior after restore.
        assert_eq!(
            a.on_row_activated(k(0, 4), true, 0),
            b.on_row_activated(k(0, 4), true, 0)
        );
        assert!(b.restore_state(&serde::value::Value::Null).is_err());
    }

    #[test]
    fn threshold_respects_config() {
        let mut cfg = SystemConfig::paper_default().prefetch;
        cfg.rut_threshold = 1;
        let mut s = Camps::new(16, &cfg, ReplacementKind::Lru);
        s.on_row_activated(k(0, 3), false, 0);
        // Second access already exceeds threshold 1.
        assert!(matches!(
            s.on_row_hit(k(0, 3), 0),
            PfAction::FetchRow { .. }
        ));
    }
}
