//! NOPF — no prefetching.
//!
//! Not part of the paper's figures; used as the ablation reference point
//! that isolates how much of each scheme's gain comes from prefetching at
//! all versus from the decision policy.

use crate::replacement::ReplacementKind;
use crate::scheme::{PfAction, PrefetchScheme, SchemeKind};
use camps_types::addr::RowKey;

/// The do-nothing scheme.
#[derive(Debug, Default, Clone, Copy)]
pub struct Nopf;

impl PrefetchScheme for Nopf {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Nopf
    }

    fn replacement(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }

    fn on_row_hit(&mut self, _key: RowKey, _queued_same_row: u32) -> PfAction {
        PfAction::None
    }

    fn on_row_activated(
        &mut self,
        _key: RowKey,
        _conflict: bool,
        _queued_same_row: u32,
    ) -> PfAction {
        PfAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_prefetches() {
        let mut s = Nopf;
        let k = RowKey { bank: 0, row: 1 };
        assert_eq!(s.on_row_hit(k, 10), PfAction::None);
        assert_eq!(s.on_row_activated(k, true, 10), PfAction::None);
        s.on_buffer_hit(k, true); // default no-ops must not panic
        s.on_buffer_evicted(k, false);
    }
}
