//! Concrete implementations of the evaluated prefetching schemes.

pub mod base;
pub mod base_hit;
pub mod camps;
pub mod mmd;
pub mod none;

pub use base::Base;
pub use base_hit::BaseHit;
pub use camps::Camps;
pub use mmd::Mmd;
pub use none::Nopf;
