//! BASE-HIT — prefetch a row once the read queue shows reuse.
//!
//! §5: "The second scheme prefetches a whole row if the row has two or
//! more hits based on the requests in the read queue." The scheme fires
//! when the access being served plus the requests still queued for the
//! same row reach two; the row stays open afterwards (open-page policy).

use crate::replacement::ReplacementKind;
use crate::scheme::{PfAction, PrefetchScheme, SchemeKind};
use camps_types::addr::RowKey;

/// Read-queue-reuse triggered prefetcher.
#[derive(Debug, Default, Clone, Copy)]
pub struct BaseHit;

impl BaseHit {
    fn decide(key: RowKey, queued_same_row: u32) -> PfAction {
        // The request being served counts as the first "hit"; one or more
        // queued requests to the same row make it two.
        if queued_same_row >= 1 {
            PfAction::FetchRow {
                key,
                precharge_after: false,
                lookahead: 0,
                used_so_far: 1,
            }
        } else {
            PfAction::None
        }
    }
}

impl PrefetchScheme for BaseHit {
    fn kind(&self) -> SchemeKind {
        SchemeKind::BaseHit
    }

    fn replacement(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }

    fn on_row_hit(&mut self, key: RowKey, queued_same_row: u32) -> PfAction {
        Self::decide(key, queued_same_row)
    }

    fn on_row_activated(&mut self, key: RowKey, _conflict: bool, queued_same_row: u32) -> PfAction {
        Self::decide(key, queued_same_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_request_does_not_fetch() {
        let mut s = BaseHit;
        let k = RowKey { bank: 1, row: 3 };
        assert_eq!(s.on_row_hit(k, 0), PfAction::None);
        assert_eq!(s.on_row_activated(k, false, 0), PfAction::None);
    }

    #[test]
    fn queued_reuse_triggers_fetch_without_precharge() {
        let mut s = BaseHit;
        let k = RowKey { bank: 1, row: 3 };
        assert_eq!(
            s.on_row_hit(k, 1),
            PfAction::FetchRow {
                key: k,
                precharge_after: false,
                lookahead: 0,
                used_so_far: 1
            }
        );
        assert_eq!(
            s.on_row_activated(k, true, 3),
            PfAction::FetchRow {
                key: k,
                precharge_after: false,
                lookahead: 0,
                used_so_far: 1
            }
        );
    }
}
