//! BASE — prefetch the whole row on the first access to it.
//!
//! §5: "the baseline scheme, which prefetches a whole row at the first
//! access to the row". Every activation immediately streams the row into
//! the buffer and precharges the bank, so BASE never suffers row-buffer
//! conflicts (§5.2 excludes it from Figure 6 for exactly that reason) but
//! pollutes the small buffer with barely used rows, which is what CAMPS
//! beats by 17.9 % on average.

use crate::replacement::ReplacementKind;
use crate::scheme::{PfAction, PrefetchScheme, SchemeKind};
use camps_types::addr::RowKey;

/// The aggressive always-prefetch baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct Base;

impl PrefetchScheme for Base {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Base
    }

    fn replacement(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }

    fn on_row_hit(&mut self, key: RowKey, _queued_same_row: u32) -> PfAction {
        // Under BASE a row-buffer hit only happens in the short window
        // between activation and the row copy completing; insisting on the
        // fetch is harmless (the vault deduplicates in-flight fetches).
        PfAction::FetchRow {
            key,
            precharge_after: true,
            lookahead: 0,
            used_so_far: 1,
        }
    }

    fn on_row_activated(
        &mut self,
        key: RowKey,
        _conflict: bool,
        _queued_same_row: u32,
    ) -> PfAction {
        PfAction::FetchRow {
            key,
            precharge_after: true,
            lookahead: 0,
            used_so_far: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_activation_fetches_and_precharges() {
        let mut s = Base;
        let k = RowKey { bank: 2, row: 9 };
        assert_eq!(
            s.on_row_activated(k, false, 0),
            PfAction::FetchRow {
                key: k,
                precharge_after: true,
                lookahead: 0,
                used_so_far: 1
            }
        );
        assert_eq!(
            s.on_row_activated(k, true, 5),
            PfAction::FetchRow {
                key: k,
                precharge_after: true,
                lookahead: 0,
                used_so_far: 1
            }
        );
    }

    #[test]
    fn hits_also_fetch() {
        let mut s = Base;
        let k = RowKey { bank: 0, row: 0 };
        assert_eq!(
            s.on_row_hit(k, 0),
            PfAction::FetchRow {
                key: k,
                precharge_after: true,
                lookahead: 0,
                used_so_far: 1
            }
        );
    }
}
