//! MMD — usefulness-adaptive memory-side prefetching.
//!
//! Reconstruction of the comparator the paper calls MMD ("Meeting Midway",
//! Yedlapalli et al., PACT 2013 [8]), from the paper's description: "an
//! existing memory-side prefetching scheme that dynamically adjusts the
//! prefetch degree based on the usefulness of prefetched data and uses
//! traditional LRU policy for prefetch buffer management".
//!
//! The original Meeting Midway prefetcher sits in the host memory
//! controller and adapts how far it runs ahead of the demand stream. Moved
//! into an HMC vault controller at row granularity (as this paper's
//! evaluation does), address-space lookahead is not expressible — under
//! the `RoRaBaVaCo` mapping the "next" row of the address space lives in
//! another vault, and a vault-local `row + 1` fetch has no correlation
//! with the demand stream (we verified experimentally that a literal
//! degree-of-sequential-rows port collapses for exactly this reason). The
//! knob that remains meaningful vault-side is *how much observed reuse a
//! row must show before it is worth a whole-row fetch*, so this
//! reconstruction adapts a per-open-row hit threshold with the usefulness
//! feedback loop:
//!
//! * every `epoch` issued prefetches, accuracy = prefetched rows that were
//!   demand-referenced / rows prefetched;
//! * accuracy ≥ 75 % → threshold − 1 (min 1): the data is being consumed,
//!   fetch sooner;
//! * accuracy < 40 % → threshold + 1 (max 4): back off.
//!
//! MMD never precharges after fetching (it is conflict-blind — the very
//! property CAMPS' Conflict Table adds) and uses plain LRU in the buffer
//! (what CAMPS-MOD's §3.2 policy replaces).

use crate::replacement::ReplacementKind;
use crate::scheme::{PfAction, PrefetchScheme, SchemeKind};
use crate::tables::RowUtilizationTable;
use camps_types::addr::RowKey;
use camps_types::snapshot::decode;
use serde::value::Value;
use serde::{de, Serialize as _};

/// Most aggressive: fetch a row on its first access while open.
const MIN_THRESHOLD: u32 = 1;
/// Most conservative trigger.
const MAX_THRESHOLD: u32 = 4;
/// Raise aggressiveness above this accuracy.
const HIGH_ACCURACY: f64 = 0.75;
/// Lower aggressiveness below this accuracy.
const LOW_ACCURACY: f64 = 0.40;

/// The usefulness-adaptive scheme.
#[derive(Debug)]
pub struct Mmd {
    hits: RowUtilizationTable,
    threshold: u32,
    epoch: u32,
    issued_in_epoch: u32,
    useful_in_epoch: u32,
}

impl Mmd {
    /// Creates the scheme for a vault with `banks` banks and the given
    /// feedback epoch (prefetches per adaptation step).
    #[must_use]
    pub fn new(banks: u32, epoch: u32) -> Self {
        Self {
            hits: RowUtilizationTable::new(banks),
            threshold: 2,
            epoch: epoch.max(1),
            issued_in_epoch: 0,
            useful_in_epoch: 0,
        }
    }

    /// Current adaptive threshold (exposed for tests and ablations).
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn note_issue(&mut self) {
        self.issued_in_epoch += 1;
        if self.issued_in_epoch >= self.epoch {
            let accuracy = f64::from(self.useful_in_epoch) / f64::from(self.issued_in_epoch);
            if accuracy >= HIGH_ACCURACY {
                self.threshold = (self.threshold - 1).max(MIN_THRESHOLD);
            } else if accuracy < LOW_ACCURACY {
                self.threshold = (self.threshold + 1).min(MAX_THRESHOLD);
            }
            self.issued_in_epoch = 0;
            self.useful_in_epoch = 0;
        }
    }

    fn decide(&mut self, key: RowKey, count: u32) -> PfAction {
        if count >= self.threshold {
            self.hits.clear(key.bank);
            self.note_issue();
            PfAction::FetchRow {
                key,
                precharge_after: false,
                lookahead: 0,
                used_so_far: count,
            }
        } else {
            PfAction::None
        }
    }
}

impl PrefetchScheme for Mmd {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Mmd
    }

    fn replacement(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }

    fn on_row_hit(&mut self, key: RowKey, _queued_same_row: u32) -> PfAction {
        let count = self.hits.record_hit(key.bank, key.row);
        self.decide(key, count)
    }

    fn on_row_activated(
        &mut self,
        key: RowKey,
        _conflict: bool,
        _queued_same_row: u32,
    ) -> PfAction {
        self.hits.open_row(key.bank, key.row);
        self.decide(key, 1)
    }

    fn on_buffer_hit(&mut self, _key: RowKey, first_touch: bool) {
        if first_touch {
            // Saturating: the epoch reset may race a late hit.
            self.useful_in_epoch = self.useful_in_epoch.saturating_add(1);
        }
    }

    fn debug_state(&self) -> String {
        format!(
            "MMD thr={} epoch={}/{} useful={}",
            self.threshold, self.issued_in_epoch, self.epoch, self.useful_in_epoch
        )
    }

    fn table_occupancy(&self) -> (usize, usize) {
        (self.hits.occupied(), 0)
    }

    fn save_state(&self) -> Value {
        // `epoch` is a construction input; the hit table, the adaptive
        // threshold, and the in-epoch feedback counters are mutable.
        Value::Map(vec![
            ("hits".into(), self.hits.to_value()),
            ("threshold".into(), self.threshold.to_value()),
            ("issued_in_epoch".into(), self.issued_in_epoch.to_value()),
            ("useful_in_epoch".into(), self.useful_in_epoch.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), de::Error> {
        self.hits = decode(state, "hits")?;
        self.threshold = decode(state, "threshold")?;
        self.issued_in_epoch = decode(state, "issued_in_epoch")?;
        self.useful_in_epoch = decode(state, "useful_in_epoch")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(bank: u16, row: u32) -> RowKey {
        RowKey { bank, row }
    }

    #[test]
    fn starts_at_threshold_two() {
        let s = Mmd::new(16, 64);
        assert_eq!(s.threshold(), 2);
    }

    #[test]
    fn fetches_after_threshold_hits_without_precharge() {
        let mut s = Mmd::new(16, 1024);
        // Activation = first hit; below threshold 2 → no fetch.
        assert_eq!(s.on_row_activated(k(0, 5), false, 0), PfAction::None);
        // Second access to the open row reaches the threshold.
        assert_eq!(
            s.on_row_hit(k(0, 5), 0),
            PfAction::FetchRow {
                key: k(0, 5),
                precharge_after: false,
                lookahead: 0,
                used_so_far: 2
            }
        );
    }

    #[test]
    fn counter_resets_after_fetch() {
        let mut s = Mmd::new(16, 1024);
        s.on_row_activated(k(0, 5), false, 0);
        s.on_row_hit(k(0, 5), 0); // fetch fires, counter cleared
        assert_eq!(s.on_row_hit(k(0, 5), 0), PfAction::None); // restarts at 1
    }

    #[test]
    fn high_accuracy_lowers_threshold() {
        let mut s = Mmd::new(16, 2);
        for row in 0..2 {
            s.on_row_activated(k(0, row), false, 0);
            s.on_buffer_hit(k(0, row), true);
            let _ = s.on_row_hit(k(0, row), 0);
        }
        assert_eq!(s.threshold(), 1);
        // At threshold 1, an activation alone triggers the fetch.
        assert!(matches!(
            s.on_row_activated(k(1, 9), false, 0),
            PfAction::FetchRow { .. }
        ));
    }

    #[test]
    fn low_accuracy_raises_threshold() {
        let mut s = Mmd::new(16, 2);
        for row in 0..2 {
            s.on_row_activated(k(0, row), false, 0);
            let _ = s.on_row_hit(k(0, row), 0); // issued, never referenced
        }
        assert_eq!(s.threshold(), 3);
    }

    #[test]
    fn threshold_stays_within_bounds() {
        let mut s = Mmd::new(16, 1);
        for row in 0..20 {
            s.on_row_activated(k(0, row), false, 0);
            for _ in 0..4 {
                let _ = s.on_row_hit(k(0, row), 0);
            }
        }
        assert_eq!(s.threshold(), MAX_THRESHOLD);
        for row in 20..60 {
            s.on_row_activated(k(0, row), false, 0);
            for _ in 0..4 {
                if let PfAction::FetchRow { key, .. } = s.on_row_hit(k(0, row), 0) {
                    s.on_buffer_hit(key, true);
                }
            }
        }
        assert_eq!(s.threshold(), MIN_THRESHOLD);
    }

    #[test]
    fn snapshot_round_trips_adaptive_state() {
        let mut a = Mmd::new(16, 2);
        for row in 0..2 {
            a.on_row_activated(k(0, row), false, 0);
            let _ = a.on_row_hit(k(0, row), 0); // issued, never referenced
        }
        assert_eq!(a.threshold(), 3);
        a.on_row_activated(k(1, 7), false, 0); // partial epoch + live RUT entry
        let state = a.save_state();
        let mut b = Mmd::new(16, 2);
        b.restore_state(&state).unwrap();
        assert_eq!(b.threshold(), 3);
        assert_eq!(a.debug_state(), b.debug_state());
        for row in 10..14 {
            assert_eq!(
                a.on_row_activated(k(2, row), false, 0),
                b.on_row_activated(k(2, row), false, 0)
            );
            assert_eq!(a.on_row_hit(k(2, row), 0), b.on_row_hit(k(2, row), 0));
        }
        assert!(b.restore_state(&serde::value::Value::U64(3)).is_err());
    }

    #[test]
    fn moderate_accuracy_leaves_threshold_alone() {
        let mut s = Mmd::new(16, 4);
        // 2 useful out of 4 issued = 50 % — inside the dead band.
        for row in 0..4 {
            s.on_row_activated(k(0, row), false, 0);
            if let PfAction::FetchRow { key, .. } = s.on_row_hit(k(0, row), 0) {
                if row < 2 {
                    s.on_buffer_hit(key, true);
                }
            }
        }
        assert_eq!(s.threshold(), 2);
    }
}
