//! The per-vault prefetch buffer.
//!
//! Table I: 16 KB per vault, fully associative, 1 KB entries (one DRAM
//! row), 22-cycle hit latency (latency is charged by the vault controller;
//! the buffer itself is purely functional state).
//!
//! Each resident row tracks:
//! * a per-line reference mask → the §3.2 *utilization* counter
//!   ("number of distinct cache lines referenced within that row"),
//! * its recency rank (MRU = capacity-1; with a full buffer of 16 this is
//!   exactly the paper's 15..0 recency counter),
//! * a dirty flag (writes absorbed by the buffer must be written back to
//!   the bank on eviction),
//! * whether it was *ever* referenced by a demand access — the numerator of
//!   the Figure 7 prefetch-accuracy metric.

use crate::replacement::{ReplacementKind, VictimView};
use camps_types::addr::RowKey;
use camps_types::clock::Cycle;
use serde::{Deserialize, Serialize};

/// One resident prefetched row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    key: RowKey,
    line_mask: u64,
    /// Distinct lines already served from the bank's row buffer before the
    /// row was fetched (the RUT count at trigger time). §3.2 defines
    /// utilization as distinct lines referenced *within the row*, not
    /// merely since insertion; seeding makes fully-streamed rows reach the
    /// "all lines consumed → evict first" state.
    seed_util: u32,
    dirty: bool,
    inserted_at: Cycle,
    last_access: Cycle,
    referenced: bool,
}

/// Information about a row evicted (or invalidated) from the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// Which row left the buffer.
    pub key: RowKey,
    /// True if the buffer absorbed writes for it (needs a writeback).
    pub dirty: bool,
    /// Distinct lines referenced while resident.
    pub utilization: u32,
    /// True if at least one demand access hit it while resident.
    pub referenced: bool,
}

/// A fully associative buffer of whole prefetched rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchBuffer {
    entries: Vec<Entry>,
    /// Indices into `entries`, most recently used first.
    lru_order: Vec<usize>,
    capacity: usize,
    blocks_per_row: u32,
    policy: ReplacementKind,
    // Lifetime statistics.
    insertions: u64,
    hits: u64,
    lookups: u64,
    /// Rows that left the buffer (eviction, invalidation, or drain)
    /// without a single demand reference — wasted fetches, the
    /// complement of the Figure 7 accuracy numerator. `default` so
    /// checkpoints written before the counter existed still restore.
    #[serde(default)]
    unused_evictions: u64,
}

impl PrefetchBuffer {
    /// Creates an empty buffer of `capacity` row entries.
    ///
    /// # Panics
    /// Panics if `capacity` is 0 or `blocks_per_row` is 0 or > 64.
    #[must_use]
    pub fn new(capacity: u32, blocks_per_row: u32, policy: ReplacementKind) -> Self {
        assert!(capacity > 0, "buffer needs at least one entry");
        assert!(
            (1..=64).contains(&blocks_per_row),
            "line mask is a u64: 1..=64 blocks per row"
        );
        Self {
            entries: Vec::with_capacity(capacity as usize),
            lru_order: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            blocks_per_row,
            policy,
            insertions: 0,
            hits: 0,
            lookups: 0,
            unused_evictions: 0,
        }
    }

    /// Number of resident rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no rows are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum resident rows.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `key` is resident (no state update — used by schemes to
    /// avoid duplicate fetches).
    #[must_use]
    pub fn contains(&self, key: RowKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Recency rank of `key` as the paper defines it (MRU = capacity-1),
    /// or `None` if not resident.
    #[must_use]
    pub fn recency_of(&self, key: RowKey) -> Option<u32> {
        let idx = self.entries.iter().position(|e| e.key == key)?;
        let rank = self.lru_order.iter().position(|&i| i == idx)?;
        Some((self.capacity - 1 - rank) as u32)
    }

    /// Utilization of `key` (distinct lines referenced within the row,
    /// pre-fetch accesses included, capped at the row's line count), or
    /// `None` if not resident.
    #[must_use]
    pub fn utilization_of(&self, key: RowKey) -> Option<u32> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| (e.line_mask.count_ones() + e.seed_util).min(self.blocks_per_row))
    }

    /// Whether `key` has been demand-referenced since insertion, or `None`
    /// if not resident.
    #[must_use]
    pub fn is_referenced(&self, key: RowKey) -> Option<bool> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.referenced)
    }

    /// Probes the buffer for block `col` of row `key` at time `now`.
    ///
    /// On a hit the entry's line mask, referenced flag, recency, and (for
    /// writes) dirty bit are updated. Returns whether it hit.
    pub fn access(&mut self, key: RowKey, col: u16, now: Cycle, is_write: bool) -> bool {
        self.lookups += 1;
        debug_assert!(u32::from(col) < self.blocks_per_row, "column out of range");
        let Some(idx) = self.entries.iter().position(|e| e.key == key) else {
            return false;
        };
        let e = &mut self.entries[idx];
        e.line_mask |= 1u64 << col;
        e.referenced = true;
        e.last_access = now;
        if is_write {
            e.dirty = true;
        }
        self.hits += 1;
        self.touch(idx);
        true
    }

    /// Inserts a freshly prefetched row at time `now`, evicting a victim if
    /// the buffer is full. Returns the eviction (if any) so the vault can
    /// schedule a writeback for dirty rows and feed accuracy stats.
    ///
    /// Inserting a row that is already resident refreshes its recency and
    /// returns `None` (the fetch was redundant; schemes normally guard with
    /// [`PrefetchBuffer::contains`]).
    pub fn insert(&mut self, key: RowKey, now: Cycle) -> Option<Evicted> {
        self.insert_with_utilization(key, now, 0)
    }

    /// Like [`PrefetchBuffer::insert`], seeding the entry's utilization
    /// with `seed_util` distinct lines that were already served from the
    /// open row before the fetch triggered (the RUT count, §3.2).
    pub fn insert_with_utilization(
        &mut self,
        key: RowKey,
        now: Cycle,
        seed_util: u32,
    ) -> Option<Evicted> {
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            self.touch(idx);
            return None;
        }
        self.insertions += 1;
        let evicted = if self.entries.len() == self.capacity {
            let victim = self.pick_victim();
            Some(self.remove_index(victim))
        } else {
            None
        };
        self.entries.push(Entry {
            key,
            line_mask: 0,
            seed_util: seed_util.min(self.blocks_per_row),
            dirty: false,
            inserted_at: now,
            last_access: now,
            referenced: false,
        });
        self.lru_order.insert(0, self.entries.len() - 1);
        evicted
    }

    /// Removes `key` (e.g. a demand write that must invalidate the stale
    /// prefetched copy). Returns its state if it was resident.
    pub fn invalidate(&mut self, key: RowKey) -> Option<Evicted> {
        let idx = self.entries.iter().position(|e| e.key == key)?;
        Some(self.remove_index(idx))
    }

    /// Drains every resident row (end of simulation), yielding eviction
    /// records so accuracy statistics can count never-referenced residents.
    pub fn drain(&mut self) -> Vec<Evicted> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(idx) = self.entries.len().checked_sub(1) {
            out.push(self.remove_index(idx));
        }
        out
    }

    /// Lifetime (insertions, demand hits, demand lookups).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.insertions, self.hits, self.lookups)
    }

    /// Rows that left the buffer without ever being demand-referenced
    /// (prefetch-accuracy complement for the metrics time-series).
    #[must_use]
    pub fn unused_evictions(&self) -> u64 {
        self.unused_evictions
    }

    /// Moves entry `idx` to MRU.
    fn touch(&mut self, idx: usize) {
        let rank = self.lru_order.iter().position(|&i| i == idx);
        debug_assert!(rank.is_some(), "entry must be in the recency stack");
        if let Some(rank) = rank {
            self.lru_order.remove(rank);
            self.lru_order.insert(0, idx);
        }
    }

    fn pick_victim(&self) -> usize {
        let views: Vec<VictimView> = self
            .entries
            .iter()
            .enumerate()
            .map(|(idx, e)| {
                let rank = self.lru_order.iter().position(|&i| i == idx);
                debug_assert!(rank.is_some(), "entry must be in the recency stack");
                // An entry missing from the stack (impossible unless the
                // invariant broke) ranks as least recent.
                let rank = rank.unwrap_or(self.lru_order.len().saturating_sub(1));
                VictimView {
                    utilization: (e.line_mask.count_ones() + e.seed_util).min(self.blocks_per_row),
                    lines: self.blocks_per_row,
                    recency: (self.capacity - 1 - rank) as u32,
                    inserted_at: e.inserted_at,
                }
            })
            .collect();
        self.policy.victim(&views)
    }

    fn remove_index(&mut self, idx: usize) -> Evicted {
        let e = self.entries.swap_remove(idx);
        if !e.referenced {
            self.unused_evictions += 1;
        }
        let moved = self.entries.len(); // old index of the swapped-in entry
        self.lru_order.retain(|&i| i != idx);
        for slot in &mut self.lru_order {
            if *slot == moved {
                *slot = idx;
            }
        }
        Evicted {
            key: e.key,
            dirty: e.dirty,
            utilization: (e.line_mask.count_ones() + e.seed_util).min(self.blocks_per_row),
            referenced: e.referenced,
        }
    }
}

impl camps_types::wake::Wake for PrefetchBuffer {
    /// The buffer is purely reactive SRAM state: lookups, fills, and
    /// evictions all happen inside vault-controller calls. It never wakes
    /// on its own — but note [`PrefetchBuffer::access`] counts lookups, so
    /// owners must tick every cycle while demand retries are pending.
    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(bank: u16, row: u32) -> RowKey {
        RowKey { bank, row }
    }

    fn buf(cap: u32, policy: ReplacementKind) -> PrefetchBuffer {
        PrefetchBuffer::new(cap, 16, policy)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut b = buf(4, ReplacementKind::Lru);
        assert!(!b.access(key(0, 1), 0, 0, false));
        assert!(b.insert(key(0, 1), 0).is_none());
        assert!(b.access(key(0, 1), 3, 5, false));
        assert_eq!(b.utilization_of(key(0, 1)), Some(1));
        assert_eq!(b.stats(), (1, 1, 2));
    }

    #[test]
    fn distinct_lines_counted_once() {
        let mut b = buf(4, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        for _ in 0..3 {
            b.access(key(0, 1), 7, 0, false);
        }
        b.access(key(0, 1), 8, 0, false);
        assert_eq!(b.utilization_of(key(0, 1)), Some(2));
    }

    #[test]
    fn lru_eviction_order() {
        let mut b = buf(2, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        b.insert(key(0, 2), 1);
        // Touch row 1 so row 2 becomes LRU.
        b.access(key(0, 1), 0, 2, false);
        let ev = b.insert(key(0, 3), 3).unwrap();
        assert_eq!(ev.key, key(0, 2));
        assert!(!ev.referenced);
    }

    #[test]
    fn mru_recency_is_capacity_minus_one() {
        let mut b = buf(16, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        b.insert(key(0, 2), 0);
        assert_eq!(b.recency_of(key(0, 2)), Some(15));
        assert_eq!(b.recency_of(key(0, 1)), Some(14));
        b.access(key(0, 1), 0, 1, false);
        assert_eq!(b.recency_of(key(0, 1)), Some(15));
        assert_eq!(b.recency_of(key(0, 2)), Some(14));
    }

    #[test]
    fn full_buffer_recency_is_permutation_of_0_to_15() {
        let mut b = buf(16, ReplacementKind::Lru);
        for r in 0..16 {
            b.insert(key(0, r), 0);
        }
        let mut seen: Vec<u32> = (0..16).map(|r| b.recency_of(key(0, r)).unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn util_recency_evicts_consumed_row_first() {
        let mut b = buf(2, ReplacementKind::UtilRecency);
        b.insert(key(0, 1), 0);
        b.insert(key(0, 2), 0);
        // Fully consume row 2 (16 lines), then touch it again so it is MRU.
        for col in 0..16 {
            b.access(key(0, 2), col, 1, false);
        }
        let ev = b.insert(key(0, 3), 2).unwrap();
        assert_eq!(ev.key, key(0, 2));
        assert_eq!(ev.utilization, 16);
        assert!(ev.referenced);
    }

    #[test]
    fn writes_mark_dirty_and_surface_on_eviction() {
        let mut b = buf(1, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        b.access(key(0, 1), 2, 0, true);
        let ev = b.insert(key(0, 2), 1).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn unused_evictions_count_unreferenced_departures() {
        let mut b = buf(1, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        // Never referenced → the eviction is a wasted fetch.
        b.insert(key(0, 2), 1);
        assert_eq!(b.unused_evictions(), 1);
        // Referenced rows leave without charge, even via drain.
        b.access(key(0, 2), 0, 2, false);
        b.drain();
        assert_eq!(b.unused_evictions(), 1);
        // Invalidating an untouched row counts too.
        b.insert(key(0, 3), 3);
        b.invalidate(key(0, 3));
        assert_eq!(b.unused_evictions(), 2);
    }

    #[test]
    fn invalidate_removes_row() {
        let mut b = buf(4, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        let ev = b.invalidate(key(0, 1)).unwrap();
        assert_eq!(ev.key, key(0, 1));
        assert!(!b.contains(key(0, 1)));
        assert!(b.invalidate(key(0, 1)).is_none());
    }

    #[test]
    fn duplicate_insert_is_refresh_not_eviction() {
        let mut b = buf(2, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        b.insert(key(0, 2), 1);
        assert!(b.insert(key(0, 1), 2).is_none());
        assert_eq!(b.len(), 2);
        assert_eq!(b.recency_of(key(0, 1)), Some(1)); // MRU of capacity 2
    }

    #[test]
    fn drain_reports_all_entries() {
        let mut b = buf(4, ReplacementKind::Lru);
        b.insert(key(0, 1), 0);
        b.insert(key(1, 2), 0);
        b.access(key(0, 1), 0, 1, false);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained.iter().filter(|e| e.referenced).count(), 1);
        assert!(b.is_empty());
    }

    proptest! {
        // Random workloads: the buffer never exceeds capacity, the recency
        // stack always indexes each resident entry exactly once, and a
        // just-inserted row is never its own eviction victim.
        #[test]
        fn invariants_under_random_ops(
            ops in prop::collection::vec((0u8..3, 0u32..24, 0u16..16), 1..300),
            policy in prop::sample::select(vec![
                ReplacementKind::Lru,
                ReplacementKind::UtilRecency,
                ReplacementKind::Fifo,
            ]),
        ) {
            let mut b = buf(8, policy);
            for (i, (op, row, col)) in ops.into_iter().enumerate() {
                let k = key(0, row);
                match op {
                    0 => {
                        let was_resident = b.contains(k);
                        let ev = b.insert(k, i as u64);
                        if let Some(ev) = ev {
                            prop_assert!(was_resident || ev.key != k,
                                "fresh insert evicted itself");
                        }
                        prop_assert!(b.contains(k));
                    }
                    1 => { let _ = b.access(k, col, i as u64, false); }
                    _ => { let _ = b.invalidate(k); }
                }
                prop_assert!(b.len() <= b.capacity());
                // Recency stack is a permutation of entry indices.
                let mut order: Vec<u32> = Vec::new();
                for r in 0..24u32 {
                    if let Some(rec) = b.recency_of(key(0, r)) {
                        order.push(rec);
                    }
                }
                order.sort_unstable();
                order.dedup();
                prop_assert_eq!(order.len(), b.len(), "recency ranks must be distinct");
            }
        }

        #[test]
        fn utilization_bounded_by_lines(cols in prop::collection::vec(0u16..16, 1..100)) {
            let mut b = buf(2, ReplacementKind::UtilRecency);
            b.insert(key(0, 0), 0);
            for (i, c) in cols.iter().enumerate() {
                b.access(key(0, 0), *c, i as u64, false);
            }
            let u = b.utilization_of(key(0, 0)).unwrap();
            prop_assert!(u <= 16);
            let distinct: std::collections::HashSet<_> = cols.iter().collect();
            prop_assert_eq!(u as usize, distinct.len());
        }
    }
}
