//! Prefetch-buffer replacement policies.
//!
//! * [`ReplacementKind::Lru`] — classic least-recently-used, as used by the
//!   BASE/BASE-HIT/MMD comparators and plain CAMPS.
//! * [`ReplacementKind::UtilRecency`] — the paper's §3.2 policy
//!   (CAMPS-MOD): evict a fully-consumed row if one exists; otherwise the
//!   row minimizing `utilization + recency`, breaking ties toward lower
//!   utilization.
//!
//! The policies operate on a read-only view of the buffer entries
//! ([`VictimView`]) so they can be tested in isolation and swapped at run
//! time without generics leaking into the vault controller.

use serde::{Deserialize, Serialize};

/// Which replacement policy a scheme uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Evict the least-recently-used row.
    Lru,
    /// §3.2: fully-consumed rows first, then min(utilization + recency),
    /// ties to the lower utilization.
    UtilRecency,
    /// Evict the oldest-inserted row regardless of use — ablation
    /// baseline showing what recency tracking buys.
    Fifo,
}

/// The per-entry state a policy may inspect when picking a victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimView {
    /// Distinct cache lines referenced since the row entered the buffer.
    pub utilization: u32,
    /// Total cache lines in the row (16 for 1 KB rows / 64 B lines).
    pub lines: u32,
    /// Recency rank: MRU = capacity-1, LRU (when full) = 0. Always a
    /// permutation of `capacity-len .. capacity` over resident entries.
    pub recency: u32,
    /// Cycle the row was inserted (FIFO ordering).
    pub inserted_at: u64,
}

impl ReplacementKind {
    /// Index of the entry to evict. The buffer only asks when full, so
    /// `entries` is nonempty in practice; an (invariant-breaking) empty
    /// slice yields index 0 rather than aborting the run.
    #[must_use]
    pub fn victim(self, entries: &[VictimView]) -> usize {
        debug_assert!(!entries.is_empty(), "victim() on empty buffer");
        match self {
            Self::Lru => lru_victim(entries),
            Self::UtilRecency => util_recency_victim(entries),
            Self::Fifo => fifo_victim(entries),
        }
    }
}

fn fifo_victim(entries: &[VictimView]) -> usize {
    entries
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| (e.inserted_at, e.recency))
        .map_or(0, |(i, _)| i)
}

fn lru_victim(entries: &[VictimView]) -> usize {
    entries
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.recency)
        .map_or(0, |(i, _)| i)
}

fn util_recency_victim(entries: &[VictimView]) -> usize {
    // §3.2 step 1: a row whose every line has been consumed no longer needs
    // to stay — all its data has already been transferred to the processor.
    // (Among several, prefer the least recent.)
    if let Some((i, _)) = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.utilization >= e.lines)
        .min_by_key(|(_, e)| e.recency)
    {
        return i;
    }
    // §3.2 step 2: minimize utilization + recency; ties go to the lower
    // utilization count; a final recency tie-break keeps the choice
    // deterministic.
    entries
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| (e.utilization + e.recency, e.utilization, e.recency))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(utilization: u32, recency: u32) -> VictimView {
        VictimView {
            utilization,
            lines: 16,
            recency,
            inserted_at: u64::from(recency),
        }
    }

    #[test]
    fn lru_picks_lowest_recency() {
        let e = [v(9, 3), v(1, 0), v(2, 2)];
        assert_eq!(ReplacementKind::Lru.victim(&e), 1);
    }

    #[test]
    fn fully_consumed_row_evicted_first() {
        // Entry 2 has all 16 lines referenced — §3.2 evicts it even though
        // its util+recency sum is the largest.
        let e = [v(3, 0), v(5, 1), v(16, 15)];
        assert_eq!(ReplacementKind::UtilRecency.victim(&e), 2);
    }

    #[test]
    fn least_recent_of_multiple_consumed_rows() {
        let e = [v(16, 7), v(16, 2), v(1, 0)];
        assert_eq!(ReplacementKind::UtilRecency.victim(&e), 1);
    }

    #[test]
    fn min_sum_wins_without_consumed_rows() {
        // sums: 10, 4, 9 → entry 1.
        let e = [v(8, 2), v(1, 3), v(4, 5)];
        assert_eq!(ReplacementKind::UtilRecency.victim(&e), 1);
    }

    #[test]
    fn sum_tie_broken_by_lower_utilization() {
        // Both sum to 6; entry 1 has lower utilization → evicted (paper:
        // "the row with the lowest utilization count value will be
        // evicted").
        let e = [v(5, 1), v(2, 4)];
        assert_eq!(ReplacementKind::UtilRecency.victim(&e), 1);
    }

    #[test]
    fn highly_utilized_recent_rows_survive() {
        // The paper's motivation: a hot recent row must outlive a cold old
        // one under UtilRecency even when LRU would agree, and — crucially
        // — a *recently inserted but unused* row is evicted before an old
        // but heavily reused one.
        let hot_old = v(12, 1);
        let cold_new = v(0, 3);
        let e = [hot_old, cold_new];
        assert_eq!(ReplacementKind::UtilRecency.victim(&e), 1);
        // LRU would have evicted the hot old row instead.
        assert_eq!(ReplacementKind::Lru.victim(&e), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = ReplacementKind::Lru.victim(&[]);
    }

    #[test]
    fn fifo_evicts_oldest_insertion_even_if_hot() {
        let mut old_hot = v(14, 15); // MRU and heavily used…
        old_hot.inserted_at = 1; // …but inserted first
        let mut new_cold = v(0, 0);
        new_cold.inserted_at = 99;
        assert_eq!(ReplacementKind::Fifo.victim(&[old_hot, new_cold]), 0);
        assert_eq!(ReplacementKind::Lru.victim(&[old_hot, new_cold]), 1);
    }

    proptest! {
        #[test]
        fn victim_always_in_range(
            entries in prop::collection::vec((0u32..=16, 0u32..16), 1..16),
            policy in prop::sample::select(vec![
                ReplacementKind::Lru,
                ReplacementKind::UtilRecency,
                ReplacementKind::Fifo,
            ]),
        ) {
            let views: Vec<_> = entries.iter().map(|&(u, r)| v(u, r)).collect();
            let i = policy.victim(&views);
            prop_assert!(i < views.len());
        }

        #[test]
        fn util_recency_never_evicts_unconsumed_over_consumed(
            entries in prop::collection::vec((0u32..16, 0u32..16), 1..15),
        ) {
            // Add one fully consumed row; it must always be the victim.
            let mut views: Vec<_> = entries.iter().map(|&(u, r)| v(u, r)).collect();
            views.push(v(16, 15));
            let i = ReplacementKind::UtilRecency.victim(&views);
            prop_assert_eq!(i, views.len() - 1);
        }

        #[test]
        fn lru_victim_has_min_recency(
            entries in prop::collection::vec((0u32..=16, 0u32..64), 1..16),
        ) {
            let views: Vec<_> = entries.iter().map(|&(u, r)| v(u, r)).collect();
            let i = ReplacementKind::Lru.victim(&views);
            let min = views.iter().map(|e| e.recency).min().unwrap();
            prop_assert_eq!(views[i].recency, min);
        }
    }
}
