//! `multicube` — the paper's scheme matrix rerun at 1, 2, and 4 cubes.
//!
//! The CAMPS evaluation is single-cube; the HMC scaling story is cube
//! chaining. This bench answers the ROADMAP's pooled-memory question
//! empirically: it reruns the paper mixes under every scheme on chained
//! pools of 1, 2, and 4 cubes and reports how each scheme's speedup
//! over NOPF decays as requests pick up inter-cube hops.
//!
//! The measurements land in `BENCH_multicube.json`: per cube count, one
//! entry per scheme with its geomean IPC across the mixes and its
//! speedup over same-pool NOPF (speedups compare like with like — a
//! 4-cube CAMPS run is normalized to 4-cube NOPF, so the column isolates
//! the *prefetcher's* contribution from the fabric's added latency).
//!
//! ```text
//! cargo run --release -p camps-bench --bin multicube [-- --out FILE]
//! cargo run --release -p camps-bench --bin multicube -- --check ci/perf_baseline.json
//! ```
//!
//! `--check` gates total wall time against the `multicube_ceiling` entry
//! of the committed baseline (a runaway guard, not a perf benchmark).

use camps::experiment::{run_matrix, RunLength};
use camps::metrics::RunResult;
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::Mix;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Workload seed for every run (fixed: rows are cross-comparable).
const SEED: u64 = 0xC0BE5;

/// Cube counts the matrix sweeps over.
const CUBE_COUNTS: [u32; 3] = [1, 2, 4];

fn mixes() -> Vec<Mix> {
    // One high-intensity and one low-intensity Table II mix: enough to
    // expose the fabric's effect on both traffic classes while keeping
    // the 3 × 6-scheme matrix affordable in CI.
    vec![*Mix::by_id("HM1").unwrap(), *Mix::by_id("LM1").unwrap()]
}

/// Geomean IPC across a scheme's per-mix results.
fn scheme_geomean(results: &[RunResult], scheme: SchemeKind) -> f64 {
    let ipcs: Vec<f64> = results
        .iter()
        .filter(|r| r.scheme == scheme)
        .map(RunResult::geomean_ipc)
        .collect();
    assert!(!ipcs.is_empty(), "no results for {}", scheme.name());
    let log_sum: f64 = ipcs.iter().map(|i| i.ln()).sum();
    (log_sum / ipcs.len() as f64).exp()
}

fn run() -> Result<String, String> {
    let mixes = mixes();
    let len = RunLength::tiny();
    let mut body = String::from("{\n  \"benchmark\": \"multicube-scaling\",\n  \"pools\": [\n");
    for (i, &cubes) in CUBE_COUNTS.iter().enumerate() {
        let mut cfg = SystemConfig::paper_default();
        cfg.topology.cubes = cubes;
        let t0 = Instant::now();
        let results = run_matrix(&cfg, &mixes, &SchemeKind::ALL, &len, SEED)
            .map_err(|e| format!("{cubes}-cube matrix failed: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();
        let nopf = scheme_geomean(&results, SchemeKind::Nopf);
        let _ = write!(
            body,
            "    {{\"cubes\": {cubes}, \"topology\": \"chain\", \"wall_secs\": {wall:.3}, \
             \"schemes\": ["
        );
        for (j, &scheme) in SchemeKind::ALL.iter().enumerate() {
            let ipc = scheme_geomean(&results, scheme);
            let _ = write!(
                body,
                "{}\n      {{\"scheme\": \"{}\", \"geomean_ipc\": {ipc:.4}, \
                 \"speedup_vs_nopf\": {:.4}}}",
                if j == 0 { "" } else { "," },
                scheme.name(),
                ipc / nopf,
            );
            println!(
                "{cubes} cube(s) | {:>9} | geomean IPC {ipc:.4} | vs NOPF {:.3}",
                scheme.name(),
                ipc / nopf
            );
        }
        let _ = write!(
            body,
            "\n    ]}}{}\n",
            if i + 1 == CUBE_COUNTS.len() { "" } else { "," }
        );
    }
    body.push_str("  ]\n}\n");
    Ok(body)
}

/// Pulls `"multicube_ceiling": <secs>` out of the baseline file
/// (textual; the format is ours).
fn baseline_ceiling(text: &str) -> Option<f64> {
    let needle = "\"multicube_ceiling\": ";
    let at = text.find(needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_multicube.json");
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check needs a baseline file");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option `{other}` (try --out FILE | --check FILE)");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let rendered = match run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("multicube: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("multicube: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("multicube: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(ceiling) = baseline_ceiling(&text) else {
            eprintln!("multicube: baseline {path} has no multicube_ceiling entry");
            return ExitCode::FAILURE;
        };
        let total = started.elapsed().as_secs_f64();
        if total > ceiling {
            eprintln!("multicube: wall time {total:.1}s exceeds the {ceiling:.0}s ceiling");
            return ExitCode::FAILURE;
        }
        println!("check: {total:.1}s within the {ceiling:.0}s ceiling");
    }
    ExitCode::SUCCESS
}
