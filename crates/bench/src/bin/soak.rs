//! `soak` — long-running robustness harness.
//!
//! Loops (mix, scheme) runs at miniature scale under randomly chosen
//! fault-injection plans with rollback-and-retry recovery enabled, until
//! a wall-clock budget expires. The harness fails (exits nonzero) if any
//! run aborts without recovering, and asserts that the serialized
//! machine state stays bounded across iterations (no state leak across
//! rollbacks).
//!
//! With `--adversarial` (or `SOAK_ADVERSARIAL=1`), every other iteration
//! swaps the Table II mix for a hammer/thrash/pollution attack stream
//! (see `camps-workloads`'s `adversarial` module) and runs it over a
//! fixed cycle horizon — attack streams starve cores by design, so a
//! retirement target would never be met. The zero-unrecovered-aborts
//! assertion holds for attack iterations exactly as for mix iterations.
//!
//! ```text
//! SOAK_SECONDS=90 SOAK_SEED=1 cargo run --release -p camps-bench --bin soak
//! SOAK_SECONDS=45 cargo run --release -p camps-bench --bin soak -- --adversarial
//! ```

use camps::recovery::{run_with_recovery, snapshot_to_string, RecoveryPolicy};
use camps::System;
use camps_cpu::trace::TraceSource;
use camps_dram::TimingCpu;
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::{AdversarialSpec, AdversarialTrace, AttackKind, ALL_MIXES};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Cycle horizon for adversarial iterations (~6 refresh windows).
const ATTACK_CYCLES: u64 = 150_000;

/// Attack rotation for `--adversarial` iterations.
const ATTACKS: [AttackKind; 4] = [
    AttackKind::HammerDouble,
    AttackKind::HammerSingle,
    AttackKind::ConflictThrash,
    AttackKind::BufferPollution,
];

/// One attack stream per core, each hammering its own vault.
fn attack_traces(
    cfg: &SystemConfig,
    kind: AttackKind,
    seed: u64,
) -> Result<Vec<Box<dyn TraceSource>>, String> {
    let t_refw = TimingCpu::from_config(&cfg.dram, cfg.cpu.freq_hz).t_refi;
    (0..cfg.cpu.cores)
        .map(|i| {
            let vault = (i % cfg.hmc.vaults) as u16;
            AdversarialTrace::new(
                AdversarialSpec::preset(kind, vault, seed ^ (u64::from(i) << 32)),
                &cfg.hmc,
                t_refw,
            )
            .map(|t| Box::new(t) as Box<dyn TraceSource>)
            .map_err(|e| format!("{}: {e}", kind.as_str()))
        })
        .collect()
}

/// Snapshot-size ceiling per iteration. The small() machine serializes
/// to low single-digit MB; 64 MB means runaway state growth.
const MAX_SNAPSHOT_BYTES: usize = 64 << 20;

/// xorshift64* — deterministic, dependency-free choice of faults.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let budget = Duration::from_secs(env_u64("SOAK_SECONDS", 90));
    let seed = env_u64("SOAK_SEED", 0xCA3B5);
    let mut adversarial = env_u64("SOAK_ADVERSARIAL", 0) != 0;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--adversarial" => adversarial = true,
            other => {
                eprintln!("soak: unknown option `{other}` (try --adversarial)");
                return ExitCode::FAILURE;
            }
        }
    }
    let deadline = Instant::now() + budget;
    let mut rng = XorShift(seed | 1);

    let mut iterations = 0u64;
    let mut runs = 0u64;
    let mut attack_runs = 0u64;
    let mut faulty_runs = 0u64;
    let mut recovered_runs = 0u64;
    let mut rollbacks = 0u64;
    let mut max_snapshot = 0usize;

    while Instant::now() < deadline {
        iterations += 1;
        // paper_default: the Table II mixes need its full capacity.
        // Tight (but legal) watchdog so stalls are detected quickly.
        let mut cfg = SystemConfig::paper_default();
        cfg.integrity.audit = true;
        cfg.integrity.watchdog_cycles = cfg.worst_case_access_cycles().max(5_000);
        let fault = rng.below(3);
        match fault {
            0 => {
                // Wedge one vault mid-run: recovers via the watchdog.
                cfg.faults.stall_vault = u32::try_from(rng.below(u64::from(cfg.hmc.vaults)))
                    .expect("invariant: vault count fits u32");
                cfg.faults.stall_vault_from = 500 + rng.below(3_000);
            }
            1 => {
                // Duplicate responses: recovers via the audit ledger.
                cfg.faults.duplicate_response_every = 20 + rng.below(200);
            }
            _ => {} // clean control run
        }
        let scheme = SchemeKind::ALL[rng.below(SchemeKind::ALL.len() as u64) as usize];
        let mix = &ALL_MIXES[rng.below(ALL_MIXES.len() as u64) as usize];
        // With --adversarial, every other iteration runs an attack stream
        // instead of a mix; the attack starves cores, so it gets a fixed
        // cycle horizon rather than a retirement target.
        let attack = if adversarial && iterations.is_multiple_of(2) {
            Some(ATTACKS[rng.below(ATTACKS.len() as u64) as usize])
        } else {
            None
        };
        let label = attack.map_or(mix.id, |k| k.as_str());
        let (target_instructions, max_cycles) = match attack {
            Some(_) => (u64::MAX, ATTACK_CYCLES),
            None => (5_000, 2_000_000),
        };

        let capacity = match cfg.hmc.address_mapping() {
            Ok(m) => m.capacity_bytes(),
            Err(e) => {
                eprintln!("soak: bad config: {e}");
                return ExitCode::FAILURE;
            }
        };
        let traces = match attack {
            Some(kind) => attack_traces(&cfg, kind, seed ^ runs),
            None => mix
                .build_traces(capacity, seed ^ runs)
                .map_err(|e| e.to_string()),
        };
        let traces = match traces {
            Ok(t) => t,
            Err(e) => {
                eprintln!("soak: trace build failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut sys = match System::new(&cfg, scheme, traces) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("soak: setup failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let policy = RecoveryPolicy {
            max_recoveries: 3,
            checkpoint_every: Some(2_000),
            checkpoint_path: None,
        };
        match run_with_recovery(
            &mut sys,
            target_instructions,
            max_cycles,
            label,
            seed,
            &policy,
        ) {
            Ok((result, report)) => {
                runs += 1;
                if attack.is_some() {
                    attack_runs += 1;
                }
                if fault != 2 {
                    faulty_runs += 1;
                }
                if report.recovered() {
                    recovered_runs += 1;
                    rollbacks += report.events.len() as u64;
                }
                if result.cycles == 0 {
                    eprintln!("soak: {label} {scheme:?} produced an empty run");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!(
                    "soak: UNRECOVERED abort on {label} {scheme:?} (fault class {fault}): {e}"
                );
                return ExitCode::FAILURE;
            }
        }
        // A drained machine must serialize to a bounded snapshot: growth
        // here would mean rollbacks leak state.
        let run = sys.run_begin(0, 0);
        match snapshot_to_string(&sys, &run, label, seed) {
            Ok(text) => {
                max_snapshot = max_snapshot.max(text.len());
                if text.len() > MAX_SNAPSHOT_BYTES {
                    eprintln!(
                        "soak: snapshot grew to {} bytes (cap {MAX_SNAPSHOT_BYTES})",
                        text.len()
                    );
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("soak: post-run snapshot failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "soak: {runs} runs ({attack_runs} adversarial, {faulty_runs} faulted, {recovered_runs} \
         recovered via {rollbacks} rollbacks), max snapshot {max_snapshot} bytes, \
         0 unrecovered aborts"
    );
    if runs == 0 {
        eprintln!("soak: budget too small to finish a single run");
        return ExitCode::FAILURE;
    }
    if adversarial && attack_runs == 0 {
        eprintln!("soak: --adversarial ran no attack iterations");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
