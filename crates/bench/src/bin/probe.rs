//! Focused diagnostic probe: single benchmark, chosen scheme, small run;
//! dumps bank-level category counts to understand scheduler behavior.
//!
//! Usage: `probe <benchmark> <scheme> [instructions]`

use camps::system::System;
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::generator::SpecTrace;
use camps_workloads::spec::profile_for;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map_or("lbm", String::as_str);
    let scheme = match args.get(1).map(String::as_str) {
        Some("base") => SchemeKind::Base,
        Some("basehit") => SchemeKind::BaseHit,
        Some("mmd") => SchemeKind::Mmd,
        Some("camps") => SchemeKind::Camps,
        Some("campsmod") => SchemeKind::CampsMod,
        _ => SchemeKind::Nopf,
    };
    let instrs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let cfg = SystemConfig::paper_default();
    let capacity = cfg.hmc.address_mapping().unwrap().capacity_bytes();
    let slice = capacity / 8;
    // `mix:HM1` runs a Table II mix; a bare name runs 8 copies of it.
    let traces: Vec<_> = if let Some(mix_id) = bench.strip_prefix("mix:") {
        camps_workloads::Mix::by_id(mix_id)
            .expect("known mix id")
            .build_traces(capacity, 0xCA3B5)
            .expect("known benchmark names")
    } else {
        (0..8)
            .map(|core| {
                Box::new(SpecTrace::new(
                    profile_for(bench).expect("known benchmark name"),
                    core as u64 * slice,
                    slice,
                    99 ^ (core as u64),
                )) as Box<dyn camps_cpu::trace::TraceSource>
            })
            .collect()
    };
    let mut sys = System::new(&cfg, scheme, traces).expect("paper-default config");
    sys.warmup(instrs);
    let r = sys.run(instrs, 50_000_000, "probe").expect("probe run");
    println!("bench={bench} scheme={} instrs={instrs}", scheme.name());
    println!("cycles={} geomean_ipc={:.3}", r.cycles, r.geomean_ipc());
    let total_instr = instrs * 8;
    println!(
        "mem reads/kiloinstr={:.1} writes/kiloinstr={:.1}",
        r.vaults.reads.get() as f64 * 1000.0 / total_instr as f64,
        r.vaults.writes.get() as f64 * 1000.0 / total_instr as f64
    );
    println!(
        "reads={} writes={} buffer_hits={} row_hits={} misses={} conflicts={}",
        r.vaults.reads.get(),
        r.vaults.writes.get(),
        r.vaults.buffer_hits.get(),
        r.vaults.row_hits.get(),
        r.vaults.row_misses.get(),
        r.vaults.row_conflicts.get()
    );
    println!(
        "conflict_rate={:.1}% prefetches={} referenced={} dropped={} accuracy={:.1}%",
        r.conflict_rate() * 100.0,
        r.vaults.prefetches.get(),
        r.vaults.prefetches_referenced.get(),
        r.vaults.prefetches_dropped.get(),
        r.prefetch_accuracy() * 100.0
    );
    println!(
        "amat_mem={:.1} amat_all={:.1} queue_rejects={} writebacks={} drains={}",
        r.amat_mem,
        r.amat_all,
        r.vaults.queue_rejects.get(),
        r.vaults.writebacks.get(),
        r.vaults.drain_entries.get()
    );
    println!(
        "bus utilization={:.1}% (of {} vault-cycles)",
        r.vaults.bus_busy_cycles.as_f64() * 100.0 / (r.cycles as f64 * 32.0),
        r.cycles * 32
    );
    println!(
        "energy: acts={} pres={} rd={} wr={} rowfetch={} rowwb={} flits={}",
        r.vaults.energy.activates,
        r.vaults.energy.precharges,
        r.vaults.energy.read_bursts,
        r.vaults.energy.write_bursts,
        r.vaults.energy.row_fetches,
        r.vaults.energy.row_writebacks,
        r.vaults.energy.link_flits
    );
    for v in sys.memory().hmc().vaults().iter().take(4) {
        println!("  vault{}: {}", v.id(), v.scheme_debug());
    }
    for (i, (ipc, stats)) in r.ipc.iter().zip(&r.core_stats).enumerate() {
        println!(
            "  core{i}: ipc={ipc:.3} loads={} stores={} stalls={} rejects={}",
            stats.loads.get(),
            stats.stores.get(),
            stats.load_stall_cycles.get(),
            stats.rejections.get()
        );
    }
}
