//! `throughput` — engine throughput benchmark (simulated cycles/second).
//!
//! Runs the same workloads under the polling and event engines, records
//! wall-clock time and simulated cycles for each, verifies the two
//! engines stayed bit-identical, and writes the numbers to
//! `BENCH_engine.json`. Workloads cover both extremes:
//!
//! * `HM1` / `LM1` — real paper mixes (memory-busy; modest skipping),
//! * `idle-heavy` — a synthetic trace whose ROB fills with compute
//!   behind one outstanding load, so the machine sleeps for whole memory
//!   round trips at a time; this is where time-skipping shines.
//!
//! The observability cost rides along: `HM1` is also run once under the
//! event engine with full tracing + metrics sampling enabled, and the
//! wall-clock ratio over the plain event run is reported as
//! `obs_over_plain` (memory-busy = most requests per cycle = the worst
//! case for per-request stamping).
//!
//! ```text
//! cargo run --release -p camps-bench --bin throughput [-- --out FILE]
//! cargo run --release -p camps-bench --bin throughput -- --trace-out hm1.trace.json
//! cargo run --release -p camps-bench --bin throughput -- --check ci/perf_baseline.json
//! ```
//!
//! `--trace-out` saves the traced run's Perfetto JSON (otherwise the
//! trace is rendered and discarded — rendering cost stays in the
//! measurement either way). `--check` reruns the `idle-heavy` workload
//! and exits nonzero if the measured event-engine advantage (wall-clock
//! speedup over polling) falls below 80% of the committed baseline's — a
//! portable regression gate: absolute cycles/sec vary across machines,
//! the *ratio* between two engines on the same machine does not. When
//! the baseline carries an `obs_over_plain` entry the overhead ratio is
//! gated the same way (against a generous ceiling).

use camps::metrics::RunResult;
use camps::system::Engine;
use camps::System;
use camps_cpu::trace::{TraceOp, TraceSource, VecTrace};
use camps_obs::{ObsConfig, TraceHandle};
use camps_prefetch::SchemeKind;
use camps_types::addr::PhysAddr;
use camps_types::config::SystemConfig;
use camps_workloads::Mix;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Instructions per core for the measured runs.
const INSTRUCTIONS: u64 = 60_000;
/// Cycle cap (generous; the idle-heavy trace is latency-bound).
const MAX_CYCLES: u64 = 40_000_000;
/// `--check` fails when the measured speedup drops below this fraction
/// of the committed baseline's speedup.
const CHECK_FLOOR: f64 = 0.8;
/// `--check` fails when the measured observability overhead exceeds this
/// multiple of the committed baseline's ratio. Wide on purpose: the
/// overhead is a small ratio of two short wall-clock times, so it is far
/// noisier than the engine speedup.
const OVERHEAD_CEILING: f64 = 2.0;
/// Workload used for the observability-overhead measurement.
const OBS_WORKLOAD: &str = "HM1";
/// Metrics sampling period for the observed run (cycles).
const OBS_SAMPLE_EVERY: u64 = 1_000;

/// One measured (workload, engine) cell.
struct Sample {
    workload: &'static str,
    engine: &'static str,
    cycles: u64,
    wall_secs: f64,
}

impl Sample {
    fn mcycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs.max(1e-9) / 1e6
    }
}

/// The config a workload runs under. The paper mixes use the Table I
/// machine untouched; `idle-heavy` narrows it to one core so the whole
/// machine genuinely sleeps between memory round trips.
fn config_for(workload: &str) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    if workload == "idle-heavy" {
        // One narrow core: a single outstanding row-miss load at a time,
        // with only rob/issue_width cycles of retire work per round trip —
        // the machine spends most wall-cycles fully asleep.
        cfg.cpu.cores = 1;
        cfg.cpu.rob_entries = 64;
    }
    cfg
}

/// The traces a workload feeds its cores.
fn traces_for(cfg: &SystemConfig, workload: &str, seed: u64) -> Vec<Box<dyn TraceSource>> {
    if workload == "idle-heavy" {
        // Each load is preceded by enough compute to fill the ROB, so the
        // core goes quiescent for the whole memory round trip. Strided
        // across rows so every access misses the caches.
        let gap = cfg.cpu.rob_entries - 1;
        return (0..cfg.cpu.cores)
            .map(|c| {
                let ops: Vec<TraceOp> = (0..2048u64)
                    .map(|i| TraceOp::load(gap, PhysAddr((u64::from(c) << 32) + i * (1 << 19))))
                    .collect();
                Box::new(VecTrace::new(format!("idle{c}"), ops)) as Box<dyn TraceSource>
            })
            .collect();
    }
    let mix = Mix::by_id(workload).expect("known mix");
    let capacity = cfg
        .hmc
        .address_mapping()
        .expect("valid mapping")
        .capacity_bytes();
    mix.build_traces(capacity, seed).expect("traces build")
}

/// Runs `workload` under `engine`, returning the sample and the result
/// (for cross-engine identity checking).
fn measure(workload: &'static str, engine: Engine) -> Result<(Sample, RunResult), String> {
    let cfg = config_for(workload);
    let mut sys = System::new(&cfg, SchemeKind::Camps, traces_for(&cfg, workload, 11))
        .map_err(|e| format!("{workload}: {e}"))?;
    sys.set_engine(engine);
    sys.warmup(2_000);
    let start = Instant::now();
    let result = sys
        .run(INSTRUCTIONS, MAX_CYCLES, workload)
        .map_err(|e| format!("{workload}: {e}"))?;
    let wall_secs = start.elapsed().as_secs_f64();
    let name = match engine {
        Engine::Polling => "polling",
        Engine::Event => "event",
    };
    Ok((
        Sample {
            workload,
            engine: name,
            cycles: result.cycles,
            wall_secs,
        },
        result,
    ))
}

/// The observability-overhead measurement: traced event run vs the plain
/// event run of the same workload.
struct Overhead {
    workload: &'static str,
    plain_secs: f64,
    observed_secs: f64,
    trace_bytes: u64,
    metrics_rows: u64,
}

impl Overhead {
    fn ratio(&self) -> f64 {
        self.observed_secs / self.plain_secs.max(1e-9)
    }
}

/// Reruns `workload` under the event engine with full observability on
/// (trace recording + metrics sampling) and compares against the plain
/// event-engine wall time. The traced run must not perturb the
/// simulation: its `RunResult` — minus the stage-latency block only an
/// observed run can have — must serialize identically to `plain`'s.
fn measure_observed(
    workload: &'static str,
    plain: &Sample,
    plain_result: &RunResult,
    trace_out: Option<&PathBuf>,
) -> Result<Overhead, String> {
    let cfg = config_for(workload);
    let mut sys = System::new(&cfg, SchemeKind::Camps, traces_for(&cfg, workload, 11))
        .map_err(|e| format!("{workload}: {e}"))?;
    sys.set_engine(Engine::Event);
    let obs_cfg = ObsConfig {
        // Span recording is switched by `trace_out`'s presence; the path
        // itself is unused here — the export below is explicit.
        trace_out: Some(
            trace_out
                .cloned()
                .unwrap_or_else(|| PathBuf::from("unused.trace.json")),
        ),
        metrics_every: Some(OBS_SAMPLE_EVERY),
        ..ObsConfig::default()
    };
    sys.enable_obs(&obs_cfg);
    sys.warmup(2_000);
    let start = Instant::now();
    let mut result = sys
        .run(INSTRUCTIONS, MAX_CYCLES, workload)
        .map_err(|e| format!("{workload} (observed): {e}"))?;
    // Rendering is part of the cost a user pays for `--trace-out`; keep
    // it inside the timed region whether or not the JSON is saved.
    let trace = sys.obs().render_trace_json();
    let observed_secs = start.elapsed().as_secs_f64();
    let metrics_rows = sys.obs().samples();
    let trace_bytes = trace.map_or(0, |t| t.len() as u64);
    if let Some(path) = trace_out {
        let report = sys
            .obs()
            .export_trace(path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "{workload:>10}: trace saved to {} ({} records, {} dropped)",
            path.display(),
            report.records,
            report.dropped
        );
    }
    result.stage_latency = None;
    result.profile = None;
    let a = serde_json::to_string(plain_result).map_err(|e| e.to_string())?;
    let b = serde_json::to_string(&result).map_err(|e| e.to_string())?;
    if a != b {
        return Err(format!(
            "{workload}: observed run diverged from plain run — tracing perturbed the simulation"
        ));
    }
    Ok(Overhead {
        workload,
        plain_secs: plain.wall_secs,
        observed_secs,
        trace_bytes,
        metrics_rows,
    })
}

/// Measures one workload under both engines and asserts bit-identity.
/// Returns the event-engine `RunResult` too, so the observability
/// overhead pass can reuse it as the non-perturbation reference.
fn measure_pair(workload: &'static str) -> Result<(Sample, Sample, RunResult), String> {
    let (polled, rp) = measure(workload, Engine::Polling)?;
    let (evented, re) = measure(workload, Engine::Event)?;
    let a = serde_json::to_string(&rp).map_err(|e| e.to_string())?;
    let b = serde_json::to_string(&re).map_err(|e| e.to_string())?;
    if a != b {
        return Err(format!("{workload}: engines diverged — refusing to bench"));
    }
    Ok((polled, evented, re))
}

fn render(pairs: &[(Sample, Sample)], overhead: Option<&Overhead>) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"engine-throughput\",\n");
    out.push_str(&format!(
        "  \"instructions_per_core\": {INSTRUCTIONS},\n  \"entries\": [\n"
    ));
    let mut first = true;
    for (p, e) in pairs {
        for s in [p, e] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"cycles\": {}, \
                 \"wall_secs\": {:.4}, \"mcycles_per_sec\": {:.2}}}",
                s.workload,
                s.engine,
                s.cycles,
                s.wall_secs,
                s.mcycles_per_sec()
            ));
        }
    }
    out.push_str("\n  ],\n  \"speedups\": [\n");
    for (i, (p, e)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"event_over_polling\": {:.3}}}",
            p.workload,
            p.wall_secs / e.wall_secs.max(1e-9)
        ));
    }
    out.push_str("\n  ]");
    if let Some(o) = overhead {
        out.push_str(",\n  \"obs_overhead\": [\n");
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"obs_over_plain\": {:.3}, \
             \"plain_secs\": {:.4}, \"observed_secs\": {:.4}, \
             \"trace_bytes\": {}, \"metrics_rows\": {}}}",
            o.workload,
            o.ratio(),
            o.plain_secs,
            o.observed_secs,
            o.trace_bytes,
            o.metrics_rows
        ));
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Pulls the named per-workload ratio (`event_over_polling` or
/// `obs_over_plain`) out of a baseline file written by this binary
/// (matching is textual; the format is ours).
fn baseline_ratio(text: &str, workload: &str, key: &str) -> Option<f64> {
    let needle = format!("\"workload\": \"{workload}\", \"{key}\": ");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_engine.json");
    let mut check_path: Option<String> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check needs a baseline file");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace-out needs a file");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown option `{other}` (try --out FILE | --trace-out FILE | --check FILE)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if trace_out.is_some() && !TraceHandle::compiled() {
        eprintln!("throughput: built without the `obs` feature; --trace-out is unavailable");
        return ExitCode::FAILURE;
    }
    if trace_out.is_some() && check_path.is_some() {
        eprintln!("throughput: --trace-out applies to the measuring mode, not --check");
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        // Regression gate: idle-heavy only, ratio vs the committed baseline.
        let baseline_text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("throughput: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(expected) = baseline_ratio(&baseline_text, "idle-heavy", "event_over_polling")
        else {
            eprintln!("throughput: baseline {path} has no idle-heavy speedup");
            return ExitCode::FAILURE;
        };
        let (p, e, _) = match measure_pair("idle-heavy") {
            Ok(pair) => pair,
            Err(err) => {
                eprintln!("throughput: {err}");
                return ExitCode::FAILURE;
            }
        };
        let measured = p.wall_secs / e.wall_secs.max(1e-9);
        let floor = expected * CHECK_FLOOR;
        println!(
            "idle-heavy event/polling speedup: measured {measured:.2}x, \
             baseline {expected:.2}x, floor {floor:.2}x"
        );
        if measured < floor {
            eprintln!("throughput: event-engine speedup regressed >20% vs baseline");
            return ExitCode::FAILURE;
        }
        // Observability-overhead gate — only when the baseline commits to a
        // ratio and the binary carries the hooks at all.
        let expected_oh = baseline_ratio(&baseline_text, OBS_WORKLOAD, "obs_over_plain");
        if let Some(expected_oh) = expected_oh.filter(|_| TraceHandle::compiled()) {
            let (_, e, re) = match measure_pair(OBS_WORKLOAD) {
                Ok(pair) => pair,
                Err(err) => {
                    eprintln!("throughput: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let o = match measure_observed(OBS_WORKLOAD, &e, &re, None) {
                Ok(o) => o,
                Err(err) => {
                    eprintln!("throughput: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let ceiling = expected_oh * OVERHEAD_CEILING;
            println!(
                "{OBS_WORKLOAD} observed/plain overhead: measured {:.2}x, \
                 baseline {expected_oh:.2}x, ceiling {ceiling:.2}x",
                o.ratio()
            );
            if o.ratio() > ceiling {
                eprintln!("throughput: observability overhead regressed >2x vs baseline");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut pairs = Vec::new();
    let mut obs_ref: Option<RunResult> = None;
    for workload in ["idle-heavy", "HM1", "LM1"] {
        match measure_pair(workload) {
            Ok((p, e, re)) => {
                println!(
                    "{workload:>10}: polling {:8.2} Mcyc/s ({:.2}s) | event {:8.2} Mcyc/s \
                     ({:.2}s) | speedup {:.2}x",
                    p.mcycles_per_sec(),
                    p.wall_secs,
                    e.mcycles_per_sec(),
                    e.wall_secs,
                    p.wall_secs / e.wall_secs.max(1e-9)
                );
                if workload == OBS_WORKLOAD {
                    obs_ref = Some(re);
                }
                pairs.push((p, e));
            }
            Err(err) => {
                eprintln!("throughput: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut overhead = None;
    if TraceHandle::compiled() {
        let plain = pairs
            .iter()
            .find(|(p, _)| p.workload == OBS_WORKLOAD)
            .map(|(_, e)| e)
            .expect("obs workload is in the measured set");
        let reference = obs_ref.as_ref().expect("event result retained");
        match measure_observed(OBS_WORKLOAD, plain, reference, trace_out.as_ref()) {
            Ok(o) => {
                println!(
                    "{:>10}: observed {:.2}s vs plain {:.2}s | obs overhead {:.2}x | \
                     {} metrics rows, {} KiB trace",
                    o.workload,
                    o.observed_secs,
                    o.plain_secs,
                    o.ratio(),
                    o.metrics_rows,
                    o.trace_bytes / 1024
                );
                overhead = Some(o);
            }
            Err(err) => {
                eprintln!("throughput: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("obs hooks compiled out; skipping the overhead measurement");
    }
    let rendered = render(&pairs, overhead.as_ref());
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("throughput: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
