//! `profile` — self-profiler attribution benchmark (where do the
//! simulator's cycles go?).
//!
//! Runs the paper mixes (`HM1`, `LM1`) and the synthetic `idle-heavy`
//! trace under both engines with the host-side self-profiler enabled,
//! and reports for each cell:
//!
//! * the measured wall time and the share of it the profiler's span
//!   tree attributes to named components (the *attribution ratio* —
//!   anything unattributed is profiler blind spot),
//! * the top components by exclusive time, and
//! * under the event engine, per-wake-source dispatch accounting
//!   (wakes, spurious ratio, cycles coalesced) plus scan-backoff
//!   engagements.
//!
//! The numbers land in `BENCH_profile.json`.
//!
//! ```text
//! cargo run --release -p camps-bench --bin profile [-- --out FILE]
//! cargo run --release -p camps-bench --bin profile -- --check ci/perf_baseline.json
//! ```
//!
//! `--check` fails when any cell attributes less than 90% of its
//! measured wall time (the profiler grew a blind spot), and gates the
//! binary's total wall time against the `profile_ceiling` entry of the
//! committed baseline (generous — a runaway guard, not a perf bench).

use camps::system::Engine;
use camps::System;
use camps_cpu::trace::{TraceOp, TraceSource, VecTrace};
use camps_obs::{ObsConfig, ProfileSummary};
use camps_prefetch::SchemeKind;
use camps_types::addr::PhysAddr;
use camps_types::config::SystemConfig;
use camps_workloads::Mix;
use std::process::ExitCode;
use std::time::Instant;

/// Instructions per core for the measured runs.
const INSTRUCTIONS: u64 = 60_000;
/// Cycle cap (generous; the idle-heavy trace is latency-bound).
const MAX_CYCLES: u64 = 40_000_000;
/// `--check` fails when a cell attributes less than this share of its
/// measured wall time to named components.
const ATTRIBUTION_FLOOR: f64 = 0.9;
/// Top-N components reported per cell.
const TOP_COMPONENTS: usize = 6;

const WORKLOADS: [&str; 3] = ["HM1", "LM1", "idle-heavy"];

/// The config a workload runs under (mirrors the `throughput` bench so
/// the two report on the same machines).
fn config_for(workload: &str) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    if workload == "idle-heavy" {
        cfg.cpu.cores = 1;
        cfg.cpu.rob_entries = 64;
    }
    cfg
}

/// The traces a workload feeds its cores (mirrors `throughput`).
fn traces_for(cfg: &SystemConfig, workload: &str, seed: u64) -> Vec<Box<dyn TraceSource>> {
    if workload == "idle-heavy" {
        let gap = cfg.cpu.rob_entries - 1;
        return (0..cfg.cpu.cores)
            .map(|c| {
                let ops: Vec<TraceOp> = (0..2048u64)
                    .map(|i| TraceOp::load(gap, PhysAddr((u64::from(c) << 32) + i * (1 << 19))))
                    .collect();
                Box::new(VecTrace::new(format!("idle{c}"), ops)) as Box<dyn TraceSource>
            })
            .collect();
    }
    let mix = Mix::by_id(workload).expect("known mix");
    let capacity = cfg
        .hmc
        .address_mapping()
        .expect("valid mapping")
        .capacity_bytes();
    mix.build_traces(capacity, seed).expect("traces build")
}

/// One profiled (workload, engine) cell.
struct Cell {
    workload: &'static str,
    engine: &'static str,
    wall_secs: f64,
    summary: ProfileSummary,
}

impl Cell {
    /// Share of the measured wall time the span tree accounts for.
    fn attribution(&self) -> f64 {
        self.summary.attributed_ns() as f64 / (self.wall_secs * 1e9).max(1.0)
    }
}

/// Runs `workload` under `engine` with the profiler on and returns the
/// measured cell.
fn measure(workload: &'static str, engine: Engine) -> Result<Cell, String> {
    let cfg = config_for(workload);
    let mut sys = System::new(&cfg, SchemeKind::Camps, traces_for(&cfg, workload, 11))
        .map_err(|e| format!("{workload}: {e}"))?;
    sys.set_engine(engine);
    sys.enable_obs(&ObsConfig {
        profile: true,
        ..ObsConfig::default()
    });
    sys.warmup(2_000);
    let start = Instant::now();
    let result = sys
        .run(INSTRUCTIONS, MAX_CYCLES, workload)
        .map_err(|e| format!("{workload}: {e}"))?;
    let wall_secs = start.elapsed().as_secs_f64();
    let summary = result
        .profile
        .ok_or_else(|| format!("{workload}: profiled run produced no summary"))?;
    Ok(Cell {
        workload,
        engine: match engine {
            Engine::Polling => "polling",
            Engine::Event => "event",
        },
        wall_secs,
        summary,
    })
}

fn render(cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"self-profile\",\n");
    out.push_str(&format!(
        "  \"instructions_per_core\": {INSTRUCTIONS},\n  \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"wall_secs\": {:.4}, \
             \"attributed_ratio\": {:.3},\n     \"top_exclusive\": [",
            c.workload,
            c.engine,
            c.wall_secs,
            c.attribution()
        ));
        let mut nodes: Vec<_> = c.summary.nodes.iter().collect();
        nodes.sort_by_key(|n| std::cmp::Reverse(n.excl_ns));
        let total = c.summary.total_ns.max(1);
        for (j, n) in nodes.iter().take(TOP_COMPONENTS).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"comp\": \"{}\", \"excl_ms\": {:.2}, \"share\": {:.3}}}",
                n.comp,
                n.excl_ns as f64 / 1e6,
                n.excl_ns as f64 / total as f64
            ));
        }
        out.push(']');
        if !c.summary.wake_sources.is_empty() {
            out.push_str(",\n     \"wake_sources\": [");
            for (j, w) in c.summary.wake_sources.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"source\": \"{}\", \"wakes\": {}, \"spurious_ratio\": {:.3}, \
                     \"cycles_skipped\": {}}}",
                    w.source,
                    w.wakes,
                    w.spurious_ratio(),
                    w.cycles_skipped
                ));
            }
            out.push_str(&format!(
                "],\n     \"backoff_engagements\": {}",
                c.summary.backoff_engagements
            ));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Pulls `"profile_ceiling": <secs>` out of the baseline file (textual;
/// the format is ours).
fn baseline_ceiling(text: &str) -> Option<f64> {
    let needle = "\"profile_ceiling\": ";
    let at = text.find(needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_profile.json");
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check needs a baseline file");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option `{other}` (try --out FILE | --check FILE)");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let mut cells = Vec::new();
    for workload in WORKLOADS {
        for engine in [Engine::Polling, Engine::Event] {
            match measure(workload, engine) {
                Ok(cell) => {
                    println!(
                        "{:>10} / {:<7}: {:.3}s wall, {:.1}% attributed, {} spurious wakes",
                        cell.workload,
                        cell.engine,
                        cell.wall_secs,
                        cell.attribution() * 100.0,
                        cell.summary.spurious_wakes()
                    );
                    cells.push(cell);
                }
                Err(e) => {
                    eprintln!("profile: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let rendered = render(&cells);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("profile: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let mut ok = true;
        for c in &cells {
            if c.attribution() < ATTRIBUTION_FLOOR {
                eprintln!(
                    "profile: {}/{} attributes only {:.1}% of wall time (floor {:.0}%)",
                    c.workload,
                    c.engine,
                    c.attribution() * 100.0,
                    ATTRIBUTION_FLOOR * 100.0
                );
                ok = false;
            }
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("profile: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(ceiling) = baseline_ceiling(&text) else {
            eprintln!("profile: baseline {path} has no profile_ceiling");
            return ExitCode::FAILURE;
        };
        let elapsed = started.elapsed().as_secs_f64();
        println!("total wall time {elapsed:.1}s, ceiling {ceiling:.1}s");
        if elapsed > ceiling {
            eprintln!("profile: wall time exceeded the committed ceiling");
            ok = false;
        }
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
