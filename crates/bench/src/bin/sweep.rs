//! `sweep` — fault-injection drill for the resilient sweep supervisor.
//!
//! Three passes over the same tiny mixes × schemes matrix:
//!
//! 1. **Reference** — a clean sweep, no journal, no faults. Its results
//!    are the ground truth for every bit-identity check below.
//! 2. **Fault drill** — the same matrix with a fresh journal and three
//!    injected faults: a start-panic (retry runs clean), a mid-run panic
//!    planted *after* the first checkpoint (the retry must resume from
//!    that checkpoint, not restart), and a permanently stalled vault
//!    (watchdog fires every attempt; the job must exhaust its retries
//!    and quarantine without poisoning its siblings). Every surviving
//!    result must be byte-for-byte identical to the reference — faults,
//!    retries, and checkpoint resume may cost time, never correctness.
//! 3. **Journal resume** — the same sweep again, same journal, faults
//!    off: the completed jobs must come back from the journal without
//!    rerunning, the quarantined job runs clean, and the merged matrix
//!    must again be bit-identical to the reference.
//!
//! The measurements land in `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p camps-bench --bin sweep [-- --out FILE]
//! cargo run --release -p camps-bench --bin sweep -- --check ci/perf_baseline.json
//! ```
//!
//! `--check` additionally gates the binary's total wall time against the
//! `sweep_ceiling` entry of the committed baseline (generous — an
//! absolute runaway guard, not a perf benchmark).

use camps::experiment::RunLength;
use camps::metrics::RunResult;
use camps::sweep::{run_sweep, InjectedFault, JobOutcome, SweepFaultPlan, SweepPolicy, SweepRun};
use camps_prefetch::SchemeKind;
use camps_types::config::{SystemConfig, TopologyKind};
use camps_workloads::Mix;
use serde::Serialize as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Workload seed for every job.
const SEED: u64 = 0x5EE9;
/// Checkpoint cadence — a tiny run lasts >10k cycles under every
/// scheme, so several checkpoints land before the planted mid-run panic.
const CHECKPOINT_EVERY: u64 = 2_000;
/// Where the mid-run panic fires: late enough that checkpoints exist,
/// early enough that every tiny run actually reaches it.
const PANIC_AT: u64 = 6_000;

fn schemes() -> Vec<SchemeKind> {
    vec![SchemeKind::Nopf, SchemeKind::Base, SchemeKind::CampsMod]
}

fn mixes() -> Vec<Mix> {
    vec![*Mix::by_id("HM1").unwrap(), *Mix::by_id("LM1").unwrap()]
}

/// Canonical byte form of a result, for bit-identity comparison.
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&r.to_value()).expect("RunResult serializes")
}

fn assert_results_match(
    reference: &SweepRun,
    candidate: &SweepRun,
    what: &str,
) -> Result<(), String> {
    for (i, (want, got)) in reference.results.iter().zip(&candidate.results).enumerate() {
        let (Some(want), Some(got)) = (want, got) else {
            continue; // quarantined slots are checked by the caller
        };
        if fingerprint(want) != fingerprint(got) {
            return Err(format!(
                "{what}: job {i} ({}/{}) diverged from the reference run",
                got.mix_id, got.scheme
            ));
        }
    }
    Ok(())
}

fn run(cubes: u32, kind: TopologyKind) -> Result<String, String> {
    let mut cfg = SystemConfig::paper_default();
    cfg.topology.cubes = cubes;
    cfg.topology.kind = kind;
    let len = RunLength::tiny();
    let mixes = mixes();
    let schemes = schemes();
    let n_jobs = mixes.len() * schemes.len();

    let dir = std::env::temp_dir().join(format!("camps-bench-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let journal = dir.join("sweep.journal.jsonl");

    // Pass 1: clean reference.
    let t0 = Instant::now();
    let reference = run_sweep(&cfg, &mixes, &schemes, &len, SEED, &SweepPolicy::default())
        .map_err(|e| format!("reference sweep failed: {e}"))?;
    let reference_secs = t0.elapsed().as_secs_f64();
    if reference.report.completed != n_jobs {
        return Err(format!(
            "reference sweep incomplete: {}",
            reference.report.render()
        ));
    }

    // Pass 2: fault drill. Jobs are row-major mixes × schemes; fault the
    // first three, leave the rest as healthy siblings.
    let faults = SweepFaultPlan::new()
        .inject(0, InjectedFault::PanicOnStart, 1)
        .inject(1, InjectedFault::PanicAtCycle(PANIC_AT), 1)
        .inject(
            2,
            InjectedFault::StallVault {
                vault: 0,
                from: 1_000,
            },
            u32::MAX,
        );
    let drill_policy = SweepPolicy {
        max_retries: 2,
        retry_backoff: Duration::ZERO,
        job_deadline: None,
        checkpoint_every: Some(CHECKPOINT_EVERY),
        journal_path: Some(journal.clone()),
        scratch_dir: Some(dir.join("ckpts")),
        threads: None,
        trace_out: None,
        progress_every: None,
        faults,
    };
    let t1 = Instant::now();
    let drill = run_sweep(&cfg, &mixes, &schemes, &len, SEED, &drill_policy)
        .map_err(|e| format!("fault drill failed: {e}"))?;
    let drill_secs = t1.elapsed().as_secs_f64();
    let rep = &drill.report;
    if rep.completed != n_jobs - 1 || rep.quarantined != 1 {
        return Err(format!(
            "fault drill: expected {} completed + 1 quarantined, got:\n{}",
            n_jobs - 1,
            rep.render()
        ));
    }
    if rep.jobs[0].attempts != 2 || rep.jobs[0].panics != 1 {
        return Err(format!(
            "start-panic job should complete on attempt 2: {:?}",
            rep.jobs[0]
        ));
    }
    if rep.jobs[1].resumed_retries == 0 {
        return Err(format!(
            "mid-run-panic job never resumed from its checkpoint: {:?}",
            rep.jobs[1]
        ));
    }
    if rep.jobs[2].outcome != JobOutcome::Quarantined
        || rep.jobs[2].attempts != 3
        || rep.jobs[2].watchdog_trips != 3
    {
        return Err(format!(
            "stalled-vault job should trip the watchdog on all 3 attempts and quarantine: {:?}",
            rep.jobs[2]
        ));
    }
    assert_results_match(&reference, &drill, "fault drill")?;

    // Pass 3: journal resume — completed jobs skip, the quarantined one
    // runs clean, and the merged matrix matches the reference.
    let resume_policy = SweepPolicy {
        faults: SweepFaultPlan::new(),
        ..drill_policy
    };
    let t2 = Instant::now();
    let resumed = run_sweep(&cfg, &mixes, &schemes, &len, SEED, &resume_policy)
        .map_err(|e| format!("journal resume failed: {e}"))?;
    let resume_secs = t2.elapsed().as_secs_f64();
    if resumed.report.journaled != n_jobs - 1 || resumed.report.completed != 1 {
        return Err(format!(
            "journal resume: expected {} journaled + 1 completed, got:\n{}",
            n_jobs - 1,
            resumed.report.render()
        ));
    }
    assert_results_match(&reference, &resumed, "journal resume")?;
    if resumed.results.iter().any(Option::is_none) {
        return Err("journal resume left a hole in the matrix".into());
    }

    std::fs::remove_dir_all(&dir).ok();

    println!("reference : {}", reference.report.render().trim_end());
    println!("fault drill: {}", drill.report.render().trim_end());
    println!("resume    : {}", resumed.report.render().trim_end());

    Ok(format!(
        "{{\n  \"benchmark\": \"sweep-supervisor\",\n  \"jobs\": {n_jobs},\n  \
         \"cubes\": {cubes},\n  \"topology\": \"{}\",\n  \
         \"threads\": {},\n  \"reference_secs\": {reference_secs:.3},\n  \
         \"fault_drill_secs\": {drill_secs:.3},\n  \"resume_secs\": {resume_secs:.3},\n  \
         \"drill_retries\": {},\n  \"drill_quarantined\": {},\n  \
         \"resume_journaled\": {},\n  \"bit_identical\": true\n}}\n",
        kind.name(),
        drill.report.threads,
        drill.report.total_retries,
        drill.report.quarantined,
        resumed.report.journaled,
    ))
}

/// Pulls `"sweep_ceiling": <secs>` out of the baseline file (textual;
/// the format is ours).
fn baseline_ceiling(text: &str) -> Option<f64> {
    let needle = "\"sweep_ceiling\": ";
    let at = text.find(needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_sweep.json");
    let mut check_path: Option<String> = None;
    let mut cubes = 1u32;
    let mut kind = TopologyKind::Chain;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check needs a baseline file");
                    return ExitCode::FAILURE;
                }
            },
            "--cubes" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => cubes = n,
                None => {
                    eprintln!("--cubes needs a power-of-two count");
                    return ExitCode::FAILURE;
                }
            },
            "--topology" => match it.next().and_then(|k| k.parse().ok()) {
                Some(k) => kind = k,
                None => {
                    eprintln!("--topology needs `chain` or `star`");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown option `{other}` \
                     (try --out FILE | --check FILE | --cubes N | --topology chain|star)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let rendered = match run(cubes, kind) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("sweep: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sweep: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(ceiling) = baseline_ceiling(&text) else {
            eprintln!("sweep: baseline {path} has no sweep_ceiling");
            return ExitCode::FAILURE;
        };
        let elapsed = started.elapsed().as_secs_f64();
        println!("total wall time {elapsed:.1}s, ceiling {ceiling:.1}s");
        if elapsed > ceiling {
            eprintln!("sweep: wall time exceeded the committed ceiling");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
