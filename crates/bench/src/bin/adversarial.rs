//! `adversarial` — ranks all six schemes by worst-case RowHammer
//! activation amplification under attack streams.
//!
//! Every core runs one adversarial generator (hammer single/double,
//! conflict thrash, buffer pollution — see `camps-workloads`'s
//! `adversarial` module) against its own vault, and each attack is run
//! under every scheme. The per-run [`AmplificationReport`] is written to
//! `BENCH_adversarial.json` together with a ranking of the schemes by
//! hammer amplification on the double-sided aggressor stream — the
//! ρHammer observation in miniature: a prefetcher that echoes aggressor
//! activations hands the attacker extra hammers for free, so CAMPS must
//! rank strictly above the no-prefetch baseline.
//!
//! A second pass reruns the aggressor stream with the TRR-style rowguard
//! mitigation enabled (tight threshold) under every scheme, asserting
//! mitigations fire and no run wedges the watchdog.
//!
//! ```text
//! cargo run --release -p camps-bench --bin adversarial [-- --out FILE]
//! cargo run --release -p camps-bench --bin adversarial -- --check ci/perf_baseline.json
//! ```
//!
//! `--check` additionally gates the binary's total wall time against the
//! `adversarial_ceiling` entry of the committed baseline (generous — an
//! absolute runaway guard, not a perf benchmark).

use camps::metrics::RunResult;
use camps::System;
use camps_cpu::trace::TraceSource;
use camps_dram::TimingCpu;
use camps_prefetch::SchemeKind;
use camps_stats::AmplificationReport;
use camps_types::config::SystemConfig;
use camps_workloads::{AdversarialSpec, AdversarialTrace, AttackKind};
use std::process::ExitCode;
use std::time::Instant;

/// Fixed measurement horizon in CPU cycles (~10 refresh windows at the
/// paper's tREFI). The bench runs for a fixed number of *cycles*, not
/// instructions: all-miss attack streams saturate the shared L3 MSHRs
/// and starve the slower cores almost completely (rejections every
/// cycle), so a per-core retirement target would never be reached.
/// Amplification is a ratio of activation counts over the horizon, so a
/// fixed-cycle window is the honest measurement.
const HORIZON_CYCLES: u64 = 250_000;
/// Per-core retirement target passed to `System::run` — unreachable on
/// purpose so the horizon alone ends the run.
const RETIRE_TARGET: u64 = u64::MAX;
/// Base seed for the attack streams.
const SEED: u64 = 0xA11CE;
/// Aggressor rows per hammer stream — more than the 16-row prefetch
/// buffer, so buffered aggressors are evicted (and, when dirty, written
/// back with a fresh ACT) before they can be reused.
const HAMMER_AGGRESSORS: u32 = 32;
/// Mitigation threshold for the mitigation-on pass: a saturated bank
/// reaches ~6 ACTs per aggressor row per refresh window, so 3 fires
/// reliably within the short horizon (the default 64 never would).
const MITIGATION_THRESHOLD: u32 = 3;

/// The attacks, ranked stream first.
const ATTACKS: [AttackKind; 4] = [
    AttackKind::HammerDouble,
    AttackKind::HammerSingle,
    AttackKind::ConflictThrash,
    AttackKind::BufferPollution,
];

/// One measured (attack, scheme) cell.
struct Entry {
    attack: AttackKind,
    scheme: SchemeKind,
    report: AmplificationReport,
    geomean_ipc: f64,
    cycles: u64,
    wall_secs: f64,
}

/// One mitigation-on rerun.
struct MitigationRun {
    scheme: SchemeKind,
    mitigations: u64,
    worst_row_window_acts: u64,
    cycles: u64,
}

/// Builds one attack stream per core, each targeting its own vault.
fn attack_traces(
    cfg: &SystemConfig,
    kind: AttackKind,
) -> Result<Vec<Box<dyn TraceSource>>, String> {
    let t_refw = TimingCpu::from_config(&cfg.dram, cfg.cpu.freq_hz).t_refi;
    (0..cfg.cpu.cores)
        .map(|i| {
            let vault = (i % cfg.hmc.vaults) as u16;
            let mut spec = AdversarialSpec::preset(kind, vault, SEED + u64::from(i));
            if matches!(kind, AttackKind::HammerDouble | AttackKind::HammerSingle) {
                spec.aggressors = HAMMER_AGGRESSORS;
            }
            AdversarialTrace::new(spec, &cfg.hmc, t_refw)
                .map(|t| Box::new(t) as Box<dyn TraceSource>)
                .map_err(|e| format!("{}: {e}", kind.as_str()))
        })
        .collect()
}

/// Runs one (attack, scheme) cell to completion.
fn run_attack(
    cfg: &SystemConfig,
    scheme: SchemeKind,
    kind: AttackKind,
) -> Result<RunResult, String> {
    let traces = attack_traces(cfg, kind)?;
    let mut sys =
        System::new(cfg, scheme, traces).map_err(|e| format!("{}: {e}", kind.as_str()))?;
    sys.warmup(2_000);
    sys.run(RETIRE_TARGET, HORIZON_CYCLES, kind.as_str())
        .map_err(|e| format!("{} under {scheme}: {e}", kind.as_str()))
}

fn render(entries: &[Entry], ranking: &[(SchemeKind, f64)], mitigated: &[MitigationRun]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"adversarial\",\n");
    out.push_str(&format!(
        "  \"horizon_cycles\": {HORIZON_CYCLES},\n  \"entries\": [\n"
    ));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let r = &e.report;
        out.push_str(&format!(
            "    {{\"attack\": \"{}\", \"scheme\": \"{}\", \
             \"hammer_amplification\": {:.4}, \"worst_row_window_acts\": {}, \
             \"demand_activations\": {}, \"prefetch_activations\": {}, \
             \"writeback_activations\": {}, \"refreshes\": {}, \
             \"geomean_ipc\": {:.4}, \"cycles\": {}, \"wall_secs\": {:.3}}}",
            e.attack.as_str(),
            e.scheme,
            r.hammer_amplification,
            r.worst_row_window_acts,
            r.demand_activations,
            r.prefetch_activations,
            r.writeback_activations,
            r.refreshes,
            e.geomean_ipc,
            e.cycles,
            e.wall_secs,
        ));
    }
    out.push_str("\n  ],\n  \"hammer_ranking\": [\n");
    for (i, (scheme, amp)) in ranking.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"scheme\": \"{scheme}\", \"hammer_amplification\": {amp:.4}}}"
        ));
    }
    out.push_str("\n  ],\n  \"mitigation\": [\n");
    for (i, m) in mitigated.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"mitigations\": {}, \
             \"worst_row_window_acts\": {}, \"cycles\": {}, \"completed\": true}}",
            m.scheme, m.mitigations, m.worst_row_window_acts, m.cycles
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Pulls `"adversarial_ceiling": <secs>` out of the baseline file
/// (textual; the format is ours).
fn baseline_ceiling(text: &str) -> Option<f64> {
    let needle = "\"adversarial_ceiling\": ";
    let at = text.find(needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_adversarial.json");
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check needs a baseline file");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option `{other}` (try --out FILE | --check FILE)");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let cfg = SystemConfig::paper_default();
    let mut entries = Vec::new();
    for attack in ATTACKS {
        for scheme in SchemeKind::ALL {
            let t0 = Instant::now();
            let result = match run_attack(&cfg, scheme, attack) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("adversarial: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(report) = result.amplification else {
                eprintln!(
                    "adversarial: {} under {scheme} produced no amplification report",
                    attack.as_str()
                );
                return ExitCode::FAILURE;
            };
            // Well-formedness: the ratio must reconcile with its parts.
            let expect =
                report.total_activations() as f64 / report.demand_activations.max(1) as f64;
            if report.demand_activations == 0
                || (report.hammer_amplification - expect).abs() > 1e-9
                || report.worst_row_window_acts == 0
                || report.mitigations != 0
            {
                eprintln!(
                    "adversarial: malformed report for {} under {scheme}: {report:?}",
                    attack.as_str()
                );
                return ExitCode::FAILURE;
            }
            println!(
                "{:>13} | {:<9} | amp {:.3} | worst {:>4} acts/window | {:>8} cycles | {:.2}s",
                attack.as_str(),
                scheme.to_string(),
                report.hammer_amplification,
                report.worst_row_window_acts,
                result.cycles,
                t0.elapsed().as_secs_f64()
            );
            entries.push(Entry {
                attack,
                scheme,
                report,
                geomean_ipc: result.geomean_ipc(),
                cycles: result.cycles,
                wall_secs: t0.elapsed().as_secs_f64(),
            });
        }
    }

    // Rank by worst-case amplification on the double-sided stream.
    let mut ranking: Vec<(SchemeKind, f64)> = entries
        .iter()
        .filter(|e| e.attack == AttackKind::HammerDouble)
        .map(|e| (e.scheme, e.report.hammer_amplification))
        .collect();
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1));
    let amp_of = |s: SchemeKind| ranking.iter().find(|(k, _)| *k == s).map(|(_, a)| *a);
    let (camps, nopf) = match (amp_of(SchemeKind::Camps), amp_of(SchemeKind::Nopf)) {
        (Some(c), Some(n)) => (c, n),
        _ => {
            eprintln!("adversarial: hammer ranking lost a scheme");
            return ExitCode::FAILURE;
        }
    };
    println!("hammer-double amplification: CAMPS {camps:.4} vs NOPF {nopf:.4}");
    if camps <= nopf {
        eprintln!(
            "adversarial: CAMPS must amplify the aggressor stream beyond the \
             no-prefetch baseline (CAMPS {camps:.4} <= NOPF {nopf:.4})"
        );
        return ExitCode::FAILURE;
    }

    // Mitigation-on pass: every scheme, tight threshold, watchdog armed
    // by the default config — completion proves no deadlock.
    let mut mitigated_cfg = cfg.clone();
    mitigated_cfg.rowguard.enable_mitigation = true;
    mitigated_cfg.rowguard.threshold = MITIGATION_THRESHOLD;
    if let Err(e) = mitigated_cfg.validate() {
        eprintln!("adversarial: mitigation config invalid: {e}");
        return ExitCode::FAILURE;
    }
    let mut mitigated = Vec::new();
    for scheme in SchemeKind::ALL {
        let result = match run_attack(&mitigated_cfg, scheme, AttackKind::HammerDouble) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("adversarial (mitigation on): {e}");
                return ExitCode::FAILURE;
            }
        };
        let mitigations = result.vaults.mitigations.get();
        if mitigations == 0 {
            eprintln!("adversarial: mitigation never fired under {scheme}");
            return ExitCode::FAILURE;
        }
        println!(
            "mitigation on | {:<9} | {} neighbor refreshes | worst {} acts/window",
            scheme.to_string(),
            mitigations,
            result.vaults.worst_row_window_acts
        );
        mitigated.push(MitigationRun {
            scheme,
            mitigations,
            worst_row_window_acts: result.vaults.worst_row_window_acts,
            cycles: result.cycles,
        });
    }

    let rendered = render(&entries, &ranking, &mitigated);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("adversarial: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("adversarial: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(ceiling) = baseline_ceiling(&text) else {
            eprintln!("adversarial: baseline {path} has no adversarial_ceiling");
            return ExitCode::FAILURE;
        };
        let elapsed = started.elapsed().as_secs_f64();
        println!("total wall time {elapsed:.1}s, ceiling {ceiling:.1}s");
        if elapsed > ceiling {
            eprintln!("adversarial: wall time exceeded the committed ceiling");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
