//! Quick calibration probe: run a subset of mixes under every scheme and
//! print the headline metrics, to sanity-check the qualitative shape
//! against the paper before running the full figure benches.
//!
//! Usage: `cargo run --release -p camps-bench --bin calibrate [mix ...]`

use camps::experiment::{run_mix, RunLength};
use camps::metrics::{average_speedup, speedup_table};
use camps_bench::table::TableWriter;
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::Mix;
use rayon::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mix_ids: Vec<&str> = if args.is_empty() {
        vec!["HM1", "HM3", "LM1", "MX1"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let cfg = SystemConfig::paper_default();
    let len = match std::env::var("CAMPS_BENCH_SCALE").as_deref() {
        Ok("standard") => RunLength::standard(),
        Ok("thorough") => RunLength::thorough(),
        _ => RunLength::quick(),
    };
    let schemes = [
        SchemeKind::Nopf,
        SchemeKind::Base,
        SchemeKind::BaseHit,
        SchemeKind::Mmd,
        SchemeKind::Camps,
        SchemeKind::CampsMod,
    ];
    let jobs: Vec<(&str, SchemeKind)> = mix_ids
        .iter()
        .flat_map(|&m| schemes.iter().map(move |&s| (m, s)))
        .collect();
    let results: Vec<_> = jobs
        .par_iter()
        .map(|&(mix_id, scheme)| {
            let mix = Mix::by_id(mix_id).expect("known mix id");
            run_mix(&cfg, mix, scheme, &len, 0xCA3B5).expect("calibration run")
        })
        .collect();

    let headers: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let mut perf = TableWriter::new(&headers, 3);
    let mut conf = TableWriter::new(&headers, 3);
    let mut acc = TableWriter::new(&headers, 3);
    let mut amat = TableWriter::new(&headers, 1);
    let mut energy = TableWriter::new(&headers, 3);
    for &mix_id in &mix_ids {
        let row = |f: &dyn Fn(&camps::metrics::RunResult) -> f64| {
            schemes
                .iter()
                .map(|&s| {
                    results
                        .iter()
                        .find(|r| r.mix_id == mix_id && r.scheme == s)
                        .map(f)
                })
                .collect::<Vec<_>>()
        };
        perf.row(mix_id, row(&|r| r.geomean_ipc()));
        conf.row(mix_id, row(&|r| r.conflict_rate() * 100.0));
        acc.row(mix_id, row(&|r| r.prefetch_accuracy() * 100.0));
        amat.row(mix_id, row(&|r| r.amat_mem));
        energy.row(mix_id, row(&|r| r.energy_nj / 1e6));
    }
    println!("== geomean IPC ==\n{}", perf.render());
    println!("== row-buffer conflict rate (%) ==\n{}", conf.render());
    println!("== prefetch accuracy (%) ==\n{}", acc.render());
    println!("== memory AMAT (cycles) ==\n{}", amat.render());
    println!("== HMC energy (mJ) ==\n{}", energy.render());

    let cells = speedup_table(&results);
    println!("== speedup vs BASE (geomean over listed mixes) ==");
    for s in schemes {
        if let Some(v) = average_speedup(&cells, s) {
            println!("  {:>10}: {v:.3}", s.name());
        }
    }
}
