//! Shared experiment driver for the per-figure bench targets.
//!
//! Every table and figure of the paper has a `[[bench]]` target (with
//! `harness = false`) in this crate; each target calls into this library
//! to run the needed (mix × scheme) matrix, print a paper-style table to
//! stdout, and drop a CSV under `target/experiments/` so EXPERIMENTS.md
//! numbers are regenerable.
//!
//! Scale is controlled by the `CAMPS_BENCH_SCALE` environment variable:
//! `quick` (default; minutes for the full set), `standard`, or
//! `thorough`.

#![warn(missing_docs)]

pub mod driver;
pub mod table;

pub use driver::{
    ablation_sweep, bench_length, experiments_dir, figure_results, write_csv, ABLATION_MIXES,
    FIGURE_SEED,
};
pub use table::{bar_chart, TableWriter};
