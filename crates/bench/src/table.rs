//! Paper-style text tables (mix rows × scheme columns).

/// Accumulates a rows × columns table of numbers and prints it aligned,
/// matching the layout of the paper's figures (one row per workload, one
/// column per scheme, AVG last).
#[derive(Debug, Default)]
pub struct TableWriter {
    columns: Vec<String>,
    rows: Vec<(String, Vec<Option<f64>>)>,
    precision: usize,
}

impl TableWriter {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(columns: &[&str], precision: usize) -> Self {
        Self {
            columns: columns.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            precision,
        }
    }

    /// Appends a row; `values.len()` must match the column count.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, label: &str, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.to_string(), values));
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(self.precision + 4))
            .collect::<Vec<_>>();
        let mut out = String::new();
        out.push_str(&format!("{:label_w$}", ""));
        for (c, w) in self.columns.iter().zip(&col_w) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for (v, w) in values.iter().zip(&col_w) {
                match v {
                    Some(x) => out.push_str(&format!("  {x:>w$.p$}", p = self.precision)),
                    None => out.push_str(&format!("  {:>w$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders rows as CSV lines (label first).
    #[must_use]
    pub fn csv_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|(label, values)| {
                let mut cells = vec![label.clone()];
                cells.extend(values.iter().map(|v| match v {
                    Some(x) => format!("{x:.6}"),
                    None => String::new(),
                }));
                cells.join(",")
            })
            .collect()
    }

    /// CSV header line (label column + data columns).
    #[must_use]
    pub fn csv_header(&self) -> String {
        let mut cells = vec!["workload".to_string()];
        cells.extend(self.columns.iter().cloned());
        cells.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = TableWriter::new(&["BASE", "CAMPS-MOD"], 3);
        t.row("HM1", vec![Some(1.0), Some(1.25)]);
        t.row("AVG", vec![Some(1.0), None]);
        let s = t.render();
        assert!(s.contains("BASE"));
        assert!(s.contains("1.250"));
        assert!(s.lines().count() == 3);
        assert!(s.contains('-'));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = TableWriter::new(&["A"], 2);
        t.row("r1", vec![Some(0.5)]);
        assert_eq!(t.csv_header(), "workload,A");
        assert_eq!(t.csv_rows(), vec!["r1,0.500000".to_string()]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = TableWriter::new(&["A", "B"], 2);
        t.row("r", vec![Some(1.0)]);
    }
}

/// Renders a labeled horizontal ASCII bar chart — the figure benches use
/// it to echo the paper's bar plots in the terminal.
///
/// `rows` are `(label, value)`; bars are scaled to `width` columns against
/// the maximum value.
#[must_use]
pub fn bar_chart(rows: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = rows.iter().map(|&(_, v)| v).fold(f64::EPSILON, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = ((value / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:label_w$}  {:<width$}  {value:.3}{unit}\n",
            "#".repeat(filled.min(width)),
        ));
    }
    out
}

#[cfg(test)]
mod bar_tests {
    use super::bar_chart;

    #[test]
    fn bars_scale_to_max() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart(&rows, 10, "x");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("##########"), "max bar fills the width");
        assert!(lines[0].contains("#####"), "half bar is half the width");
        assert!(lines[0].starts_with("a "));
        assert!(s.contains("2.000x"));
    }

    #[test]
    fn empty_and_zero_values_are_safe() {
        assert_eq!(bar_chart(&[], 10, ""), "");
        let s = bar_chart(&[("z".to_string(), 0.0)], 10, "");
        assert!(s.contains("0.000"));
    }
}
