//! Experiment driving, result caching, and CSV output.

use camps::experiment::{run_matrix, RunLength};
use camps::metrics::RunResult;
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::ALL_MIXES;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Seed used by every figure run (fixed → figures are cross-comparable).
pub const FIGURE_SEED: u64 = 0xCA3B5;

/// Resolves the run length from `CAMPS_BENCH_SCALE`
/// (`quick` | `standard` | `thorough`; default `quick`).
#[must_use]
pub fn bench_length() -> RunLength {
    match std::env::var("CAMPS_BENCH_SCALE").as_deref() {
        Ok("standard") => RunLength::standard(),
        Ok("thorough") => RunLength::thorough(),
        _ => RunLength::quick(),
    }
}

fn scale_name() -> &'static str {
    match std::env::var("CAMPS_BENCH_SCALE").as_deref() {
        Ok("standard") => "standard",
        Ok("thorough") => "thorough",
        _ => "quick",
    }
}

/// Directory where figure CSVs and the shared result cache live:
/// `<workspace>/target/experiments` (honors `CARGO_TARGET_DIR`).
#[must_use]
pub fn experiments_dir() -> PathBuf {
    // Bench binaries run with the package directory as CWD, so anchor on
    // the workspace root via this crate's manifest location instead.
    let target = std::env::var("CARGO_TARGET_DIR").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        },
        PathBuf::from,
    );
    let dir = target.join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Runs all twelve Table II mixes under every paper scheme (plus NOPF) on
/// the Table I system at the configured scale.
///
/// Figures 5–9 all consume this one matrix, so the result is cached in
/// `target/experiments/matrix-<scale>.json`; delete the file (or set
/// `CAMPS_BENCH_FRESH=1`) to force a re-run.
#[must_use]
pub fn figure_results() -> Vec<RunResult> {
    let cache = experiments_dir().join(format!("matrix-{}.json", scale_name()));
    let fresh = std::env::var("CAMPS_BENCH_FRESH").is_ok();
    if !fresh {
        if let Ok(body) = fs::read_to_string(&cache) {
            if let Ok(results) = serde_json::from_str::<Vec<RunResult>>(&body) {
                eprintln!("[cache] reusing {}", cache.display());
                return results;
            }
        }
    }
    let cfg = SystemConfig::paper_default();
    let results = run_matrix(
        &cfg,
        &ALL_MIXES,
        &SchemeKind::ALL,
        &bench_length(),
        FIGURE_SEED,
    )
    .expect("figure matrix run (bench-only: fail loudly)");
    let body = serde_json::to_string(&results).expect("serialize results");
    fs::write(&cache, body).expect("write result cache");
    eprintln!("[cache] wrote {}", cache.display());
    results
}

/// Writes rows as CSV to `target/experiments/<name>.csv` and returns the
/// path.
///
/// # Panics
/// Panics if the directory or file cannot be written (bench-only code;
/// failing loudly is correct).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write csv header");
    for row in rows {
        writeln!(f, "{row}").expect("write csv row");
    }
    println!("\n[csv] {}", path.display());
    path
}

/// Ablation helper: runs `scheme` on the given mixes under each labeled
/// configuration variant and returns one geomean-IPC row per variant
/// (columns = mixes, in order).
#[must_use]
pub fn ablation_sweep(
    variants: &[(String, SystemConfig, SchemeKind)],
    mix_ids: &[&str],
) -> Vec<(String, Vec<f64>)> {
    use camps_workloads::Mix;
    use rayon::prelude::*;
    let len = bench_length();
    variants
        .par_iter()
        .map(|(label, cfg, scheme)| {
            let ipcs: Vec<f64> = mix_ids
                .iter()
                .map(|id| {
                    let mix = Mix::by_id(id).expect("known mix");
                    camps::experiment::run_mix(cfg, mix, *scheme, &len, FIGURE_SEED)
                        .expect("ablation run (bench-only: fail loudly)")
                        .geomean_ipc()
                })
                .collect();
            (label.clone(), ipcs)
        })
        .collect()
}

/// The mixes ablations run on: one per intensity class, to keep sweeps
/// affordable while covering the spectrum.
pub const ABLATION_MIXES: [&str; 3] = ["HM1", "LM1", "MX1"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        if std::env::var("CAMPS_BENCH_SCALE").is_err() {
            assert_eq!(bench_length(), RunLength::quick());
        }
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv("unit_test", "a,b", &["1,2".to_string()]);
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }
}
