//! Experiment driving, result caching, and CSV output.

use camps::experiment::RunLength;
use camps::metrics::RunResult;
use camps::sweep::{run_sweep, SweepPolicy, SweepRun};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_workloads::{Mix, ALL_MIXES};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Seed used by every figure run (fixed → figures are cross-comparable).
pub const FIGURE_SEED: u64 = 0xCA3B5;

/// Resolves the run length from `CAMPS_BENCH_SCALE`
/// (`quick` | `standard` | `thorough`; default `quick`).
#[must_use]
pub fn bench_length() -> RunLength {
    match std::env::var("CAMPS_BENCH_SCALE").as_deref() {
        Ok("standard") => RunLength::standard(),
        Ok("thorough") => RunLength::thorough(),
        _ => RunLength::quick(),
    }
}

/// Directory where figure CSVs and the shared result cache live:
/// `<workspace>/target/experiments` (honors `CARGO_TARGET_DIR`).
#[must_use]
pub fn experiments_dir() -> PathBuf {
    // Bench binaries run with the package directory as CWD, so anchor on
    // the workspace root via this crate's manifest location instead.
    let target = std::env::var("CARGO_TARGET_DIR").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        },
        PathBuf::from,
    );
    let dir = target.join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// The shared journal every bench matrix rides on. Results are keyed by
/// (config hash, mix, scheme, seed, run length), so figure runs,
/// ablation variants, and different `CAMPS_BENCH_SCALE`s all coexist in
/// one append-only file without ever reusing the wrong result.
/// `CAMPS_BENCH_FRESH=1` deletes it before running.
#[must_use]
pub fn bench_journal() -> PathBuf {
    let path = experiments_dir().join("bench.journal.jsonl");
    if std::env::var("CAMPS_BENCH_FRESH").is_ok() {
        fs::remove_file(&path).ok();
    }
    path
}

/// Runs a `mixes × schemes` matrix under the resilient sweep supervisor
/// against the shared bench journal: already-journaled jobs are reused
/// per-job (not all-or-nothing), fresh jobs get fault isolation and
/// retry-with-resume. Panics if any job is quarantined — bench code
/// fails loudly.
fn journaled_matrix(
    cfg: &SystemConfig,
    mixes: &[Mix],
    schemes: &[SchemeKind],
    label: &str,
) -> Vec<RunResult> {
    let policy = SweepPolicy {
        journal_path: Some(bench_journal()),
        checkpoint_every: Some(2_000_000),
        max_retries: 1,
        ..SweepPolicy::default()
    };
    let SweepRun {
        results,
        errors,
        report,
    } = run_sweep(cfg, mixes, schemes, &bench_length(), FIGURE_SEED, &policy)
        .unwrap_or_else(|e| panic!("{label} sweep infrastructure: {e}"));
    if let Some(err) = errors.into_iter().flatten().next() {
        panic!("{label} job quarantined (bench-only: fail loudly): {err}");
    }
    let reused = report
        .jobs
        .iter()
        .filter(|j| j.outcome == camps::sweep::JobOutcome::Journaled)
        .count();
    eprintln!(
        "[journal] {label}: {} jobs ({reused} from journal) via {}",
        report.jobs.len(),
        bench_journal().display()
    );
    results.into_iter().flatten().collect()
}

/// Runs all twelve Table II mixes under every paper scheme (plus NOPF) on
/// the Table I system at the configured scale.
///
/// Figures 5–9 all consume this one matrix; completed (mix, scheme)
/// cells are reused from the shared [`bench_journal`], so a re-run after
/// an interruption only pays for the missing cells. Set
/// `CAMPS_BENCH_FRESH=1` to discard the journal and re-run everything.
#[must_use]
pub fn figure_results() -> Vec<RunResult> {
    let cfg = SystemConfig::paper_default();
    journaled_matrix(&cfg, &ALL_MIXES, &SchemeKind::ALL, "figures")
}

/// Writes rows as CSV to `target/experiments/<name>.csv` and returns the
/// path.
///
/// # Panics
/// Panics if the directory or file cannot be written (bench-only code;
/// failing loudly is correct).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write csv header");
    for row in rows {
        writeln!(f, "{row}").expect("write csv row");
    }
    println!("\n[csv] {}", path.display());
    path
}

/// Ablation helper: runs `scheme` on the given mixes under each labeled
/// configuration variant and returns one geomean-IPC row per variant
/// (columns = mixes, in order).
///
/// Each variant's cells ride the shared [`bench_journal`] — the journal
/// key includes the config hash, so variants never cross-pollinate, and
/// an interrupted ablation resumes at the first un-journaled cell. Jobs
/// within a variant run in parallel under the sweep supervisor.
#[must_use]
pub fn ablation_sweep(
    variants: &[(String, SystemConfig, SchemeKind)],
    mix_ids: &[&str],
) -> Vec<(String, Vec<f64>)> {
    let mixes: Vec<Mix> = mix_ids
        .iter()
        .map(|id| *Mix::by_id(id).expect("known mix"))
        .collect();
    variants
        .iter()
        .map(|(label, cfg, scheme)| {
            let results = journaled_matrix(cfg, &mixes, &[*scheme], label);
            let ipcs: Vec<f64> = results.iter().map(RunResult::geomean_ipc).collect();
            assert_eq!(ipcs.len(), mix_ids.len(), "one cell per mix");
            (label.clone(), ipcs)
        })
        .collect()
}

/// The mixes ablations run on: one per intensity class, to keep sweeps
/// affordable while covering the spectrum.
pub const ABLATION_MIXES: [&str; 3] = ["HM1", "LM1", "MX1"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        if std::env::var("CAMPS_BENCH_SCALE").is_err() {
            assert_eq!(bench_length(), RunLength::quick());
        }
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv("unit_test", "a,b", &["1,2".to_string()]);
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }
}
