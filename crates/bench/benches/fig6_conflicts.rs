//! Figure 6 — "Percentage Row Buffer Conflicts Over Different Schemes"
//! (lower is better). BASE is excluded, as in the paper: it precharges
//! after copying every opened row, so it has no row-buffer conflicts by
//! construction.
//!
//! Paper: CAMPS reduces conflicts by 16.3 % vs BASE-HIT and 13.6 % vs MMD
//! on average.
//!
//! Run: `cargo bench -p camps-bench --bench fig6_conflicts`

use camps_bench::{figure_results, write_csv, TableWriter};
use camps_prefetch::SchemeKind;
use camps_stats::geomean;
use camps_workloads::ALL_MIXES;

fn main() {
    let results = figure_results();
    let schemes = [
        SchemeKind::BaseHit,
        SchemeKind::Mmd,
        SchemeKind::Camps,
        SchemeKind::CampsMod,
    ];
    let headers: Vec<&str> = schemes.iter().map(|s| s.name()).collect();

    let mut t = TableWriter::new(&headers, 2);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for mix in &ALL_MIXES {
        let row: Vec<Option<f64>> = schemes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let v = results
                    .iter()
                    .find(|r| r.mix_id == mix.id && r.scheme == s)
                    .map(|r| r.conflict_rate() * 100.0);
                if let Some(v) = v {
                    per_scheme[i].push(v.max(1e-9));
                }
                v
            })
            .collect();
        t.row(mix.id, row);
    }
    t.row("AVG", per_scheme.iter().map(|v| geomean(v)).collect());

    println!("Figure 6: row-buffer conflict rate, % of bank accesses (lower is better)");
    println!("(BASE omitted: it precharges after every row copy — zero conflicts)\n");
    println!("{}", t.render());
    let avg = |i: usize| geomean(&per_scheme[i]).unwrap_or(0.0);
    println!(
        "CAMPS-MOD vs BASE-HIT: {:+.1}% conflicts (paper: -16.3%)",
        (avg(3) / avg(0) - 1.0) * 100.0
    );
    println!(
        "CAMPS-MOD vs MMD     : {:+.1}% conflicts (paper: -13.6%)",
        (avg(3) / avg(1) - 1.0) * 100.0
    );
    write_csv("fig6_conflicts", &t.csv_header(), &t.csv_rows());
}
