//! Ablation: FR-FCFS (Table I) versus plain FCFS memory scheduling, with
//! and without CAMPS-MOD — how much of the prefetcher's benefit survives
//! a scheduler that cannot exploit row-buffer locality on its own.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_scheduler`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::{SchedulerKind, SystemConfig};

fn main() {
    let mut variants = Vec::new();
    for (sname, sched) in [
        ("FR-FCFS", SchedulerKind::FrFcfs),
        ("FCFS", SchedulerKind::Fcfs),
    ] {
        for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.vault.scheduler = sched;
            variants.push((format!("{sname} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: memory scheduler (geomean IPC)\n");
    println!("{:>22}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>22}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_scheduler", "variant,HM1,LM1,MX1", &csv);
}
