//! Figure 5 — "Performance Improvement Over Different Prefetching
//! Schemes": per-mix speedup of every scheme normalized to BASE, plus the
//! AVG (geometric mean) row.
//!
//! Paper's headline numbers: CAMPS-MOD outperforms BASE by 17.9 %,
//! BASE-HIT by 16.8 %, and MMD by 8.7 % on average; HM mixes gain most
//! (24.9 % over BASE), LM least (9.4 %), MX in between (19.6 %).
//!
//! Run: `cargo bench -p camps-bench --bench fig5_speedup`
//! (scale via `CAMPS_BENCH_SCALE=quick|standard|thorough`).

use camps::metrics::{average_speedup, speedup_table};
use camps_bench::{bar_chart, figure_results, write_csv, TableWriter};
use camps_prefetch::SchemeKind;
use camps_workloads::ALL_MIXES;

fn main() {
    let results = figure_results();
    let cells = speedup_table(&results);
    let schemes = SchemeKind::PAPER;
    let headers: Vec<&str> = schemes.iter().map(|s| s.name()).collect();

    let mut t = TableWriter::new(&headers, 3);
    for mix in &ALL_MIXES {
        let row = schemes
            .iter()
            .map(|&s| {
                cells
                    .iter()
                    .find(|c| c.mix_id == mix.id && c.scheme == s)
                    .map(|c| c.speedup)
            })
            .collect();
        t.row(mix.id, row);
    }
    t.row(
        "AVG",
        schemes
            .iter()
            .map(|&s| average_speedup(&cells, s))
            .collect(),
    );

    println!("Figure 5: normalized speedup over BASE (higher is better)\n");
    println!("{}", t.render());
    let bars: Vec<(String, f64)> = schemes
        .iter()
        .filter_map(|&s| average_speedup(&cells, s).map(|v| (s.name().to_string(), v)))
        .collect();
    println!("{}", bar_chart(&bars, 40, "×"));
    if let (Some(cm), Some(mmd), Some(bh)) = (
        average_speedup(&cells, SchemeKind::CampsMod),
        average_speedup(&cells, SchemeKind::Mmd),
        average_speedup(&cells, SchemeKind::BaseHit),
    ) {
        println!(
            "CAMPS-MOD vs BASE    : {:+.1}%  (paper: +17.9%)",
            (cm - 1.0) * 100.0
        );
        println!(
            "CAMPS-MOD vs BASE-HIT: {:+.1}%  (paper: +16.8%)",
            (cm / bh - 1.0) * 100.0
        );
        println!(
            "CAMPS-MOD vs MMD     : {:+.1}%  (paper: +8.7%)",
            (cm / mmd - 1.0) * 100.0
        );
    }
    write_csv("fig5_speedup", &t.csv_header(), &t.csv_rows());
}
