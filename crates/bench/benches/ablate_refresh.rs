//! Ablation: DRAM refresh. §2.1 assigns refresh to the vault controller;
//! this sweep quantifies how much performance the all-bank refresh
//! (tREFI = 7.8 µs, tRFC ≈ 260 ns) costs, with and without CAMPS-MOD.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_refresh`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let mut variants = Vec::new();
    for (name, t_refi) in [("refresh on", 6240u64), ("refresh off", 0)] {
        for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.dram.t_refi = t_refi;
            variants.push((format!("{name} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: all-bank refresh (geomean IPC)\n");
    println!("{:>26}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>26}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_refresh", "variant,HM1,LM1,MX1", &csv);
}
