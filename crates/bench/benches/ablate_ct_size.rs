//! Ablation: Conflict Table capacity (§3.1 uses 32 entries per vault).
//!
//! The CT must be large enough to still remember a row when it gets
//! re-activated; too small and conflict-prone rows age out before their
//! return, too large only wastes area (the paper budgets 20 bits/entry).
//!
//! Run: `cargo bench -p camps-bench --bench ablate_ct_size`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let variants: Vec<_> = [8u32, 16, 32, 64, 128]
        .into_iter()
        .map(|n| {
            let mut cfg = SystemConfig::paper_default();
            cfg.prefetch.ct_entries = n;
            (format!("ct={n}"), cfg, SchemeKind::CampsMod)
        })
        .collect();
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: Conflict Table entries per vault (CAMPS-MOD geomean IPC)\n");
    println!("{:>10}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>10}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_ct_size", "variant,HM1,LM1,MX1", &csv);
}
