//! Table II — "SPEC CPU2006 Benchmark Sets": prints the twelve eight-core
//! multiprogrammed mixes exactly as assigned to cores, and measures each
//! synthetic benchmark's L3 MPKI through the real cache hierarchy to
//! verify the paper's HM (MPKI ≥ 20) / LM (1 ≤ MPKI < 20) classification.
//!
//! Run: `cargo bench -p camps-bench --bench table2_workloads`

use camps_bench::write_csv;
use camps_cache::hierarchy::{CacheHierarchy, HierarchyOutcome};
use camps_cpu::trace::TraceSource;
use camps_obs::Profiler;
use camps_types::config::SystemConfig;
use camps_workloads::generator::SpecTrace;
use camps_workloads::profile::MemClass;
use camps_workloads::spec::{profile_for, BENCHMARKS};
use camps_workloads::ALL_MIXES;

/// Measures a benchmark's solo L3 MPKI functionally.
fn mpki(name: &str) -> f64 {
    let cfg = SystemConfig::paper_default();
    let mut t = SpecTrace::new(
        profile_for(name).expect("known benchmark"),
        0,
        512 << 20,
        1234,
    );
    let mut h = CacheHierarchy::new(&cfg);
    let mut wb = Vec::new();
    let mut drive = |budget: u64, count: bool, misses: &mut u64| {
        let mut instrs = 0u64;
        while instrs < budget {
            let op = t.next_op();
            instrs += op.instructions();
            if let Some((addr, kind)) = op.mem {
                if let HierarchyOutcome::Miss { .. } =
                    h.access(0, addr, !kind.is_read(), &mut wb, &mut Profiler::off())
                {
                    if count {
                        *misses += 1;
                    }
                    h.fill(0, addr, !kind.is_read(), &mut wb);
                }
            }
        }
        instrs
    };
    let mut misses = 0u64;
    drive(150_000, false, &mut misses); // warmup
    let instrs = drive(500_000, true, &mut misses);
    misses as f64 * 1000.0 / instrs as f64
}

fn main() {
    println!("Table II: SPEC CPU2006 benchmark sets (8 cores each)\n");
    let mut rows = Vec::new();
    for mix in &ALL_MIXES {
        println!(
            "{:4} [{:?}]: {}",
            mix.id,
            mix.class,
            mix.benchmarks.join(", ")
        );
        rows.push(format!("{},{}", mix.id, mix.benchmarks.join(",")));
    }

    println!("\nPer-benchmark L3 MPKI of the synthetic generators (solo, Table I caches):\n");
    println!("{:>10}  {:>8}  {:>6}", "benchmark", "MPKI", "class");
    for name in BENCHMARKS {
        let m = mpki(name);
        let class = profile_for(name).expect("known benchmark").class;
        let label = match class {
            MemClass::High => "HM",
            MemClass::Low => "LM",
        };
        println!("{name:>10}  {m:>8.1}  {label:>6}");
        match class {
            MemClass::High => assert!(m >= 20.0, "{name}: HM must have MPKI ≥ 20, got {m:.1}"),
            MemClass::Low => {
                assert!(
                    (1.0..20.0).contains(&m),
                    "{name}: LM must be in [1,20), got {m:.1}"
                )
            }
        }
    }
    println!("\nClassification thresholds hold (HM ≥ 20 MPKI; 1 ≤ LM < 20), per §4.1.");
    write_csv(
        "table2_workloads",
        "mix,core0,core1,core2,core3,core4,core5,core6,core7",
        &rows,
    );
}
