//! Ablation: the CAMPS row-utilization threshold (§3.1 uses 4).
//!
//! Sweeps the RUT trigger from 1 (fetch almost immediately) to 8 (demand
//! near-certainty) under CAMPS-MOD and reports geomean IPC per mix class.
//! The paper's choice of 4 is the break-even point where a whole-row
//! transfer costs the vault's TSV bus as much as the blocks already
//! served.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_threshold`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let variants: Vec<_> = [1u32, 2, 3, 4, 6, 8]
        .into_iter()
        .map(|t| {
            let mut cfg = SystemConfig::paper_default();
            cfg.prefetch.rut_threshold = t;
            (format!("threshold={t}"), cfg, SchemeKind::CampsMod)
        })
        .collect();
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: RUT utilization threshold (CAMPS-MOD geomean IPC)\n");
    println!("{:>14}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>14}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_threshold", "variant,HM1,LM1,MX1", &csv);
}
