//! Ablation: two-level prefetching — a conservative core-side next-line
//! prefetcher combined with the memory-side schemes, the configuration
//! studied by Ahn et al. [13] that the paper's related work discusses.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_two_level`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let mut variants = Vec::new();
    for (name, enable, degree) in [
        ("no core pf", false, 0u32),
        ("core pf d=1", true, 1),
        ("core pf d=2", true, 2),
    ] {
        for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.core_prefetch.enable = enable;
            cfg.core_prefetch.degree = degree.max(1);
            variants.push((format!("{name} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: two-level prefetching (geomean IPC)\n");
    println!("{:>28}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>28}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_two_level", "variant,HM1,LM1,MX1", &csv);
}
