//! Criterion microbenchmarks of the simulator's hot paths: address
//! decode, prefetch-buffer operations, the bank timing state machine, the
//! CAMPS tables, a loaded vault-controller tick, and an end-to-end
//! mini-simulation (simulator throughput).
//!
//! Run: `cargo bench -p camps-bench --bench microbench`

use camps::experiment::{run_mix, RunLength};
use camps_dram::bank::Bank;
use camps_dram::timing::TimingCpu;
use camps_obs::Profiler;
use camps_prefetch::buffer::PrefetchBuffer;
use camps_prefetch::replacement::ReplacementKind;
use camps_prefetch::scheme::SchemeKind;
use camps_prefetch::tables::ConflictTable;
use camps_types::addr::{PhysAddr, RowKey};
use camps_types::config::SystemConfig;
use camps_types::request::{AccessKind, CoreId, MemRequest, RequestId};
use camps_vault::VaultController;
use camps_workloads::Mix;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_addr_decode(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let m = cfg.hmc.address_mapping().unwrap();
    c.bench_function("addr/decode_encode_roundtrip", |b| {
        let mut a = 0x1234_5678u64;
        b.iter(|| {
            a = a.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let d = m.decode(PhysAddr(black_box(a) & 0xFFFF_FFFF));
            black_box(m.encode(&d))
        });
    });
}

fn bench_prefetch_buffer(c: &mut Criterion) {
    for (name, policy) in [
        ("lru", ReplacementKind::Lru),
        ("util_recency", ReplacementKind::UtilRecency),
    ] {
        c.bench_function(&format!("buffer/insert_access_evict/{name}"), |b| {
            let mut buf = PrefetchBuffer::new(16, 16, policy);
            let mut row = 0u32;
            b.iter(|| {
                row = row.wrapping_add(1);
                let key = RowKey {
                    bank: (row % 16) as u16,
                    row,
                };
                buf.insert(key, u64::from(row));
                black_box(buf.access(key, (row % 16) as u16, u64::from(row), false));
            });
        });
    }
}

fn bench_bank_fsm(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let t = TimingCpu::from_config(&cfg.dram, cfg.cpu.freq_hz);
    c.bench_function("dram/act_read_pre_cycle", |b| {
        let mut bank = Bank::new();
        let mut now = 0u64;
        b.iter(|| {
            now = bank.activate_ready_at().max(now);
            bank.activate(now, 5, &t);
            now += t.t_rcd;
            black_box(bank.read(now, &t));
            now = now.max(now + t.t_rtp).max(bank.activate_ready_at());
            while !bank.can_precharge(now) {
                now += 1;
            }
            bank.precharge(now, &t);
        });
    });
}

fn bench_conflict_table(c: &mut Criterion) {
    c.bench_function("tables/ct_insert_probe", |b| {
        let mut ct = ConflictTable::new(32);
        let mut row = 0u32;
        b.iter(|| {
            row = row.wrapping_add(7);
            let key = RowKey {
                bank: (row % 16) as u16,
                row: row % 64,
            };
            ct.insert(key, 1);
            black_box(ct.contains(RowKey {
                bank: 0,
                row: row % 64,
            }));
        });
    });
}

fn bench_vault_tick(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let m = cfg.hmc.address_mapping().unwrap();
    c.bench_function("vault/loaded_tick", |b| {
        let mut v = VaultController::new(0, &cfg, SchemeKind::CampsMod).expect("valid config");
        let mut now = 0u64;
        let mut id = 0u64;
        let mut out = Vec::new();
        b.iter(|| {
            now += 1;
            // Keep the queue warm with a rotating access pattern.
            if v.stats().queue_rejects.get() == 0 && now.is_multiple_of(7) {
                id += 1;
                let d = camps_types::addr::DecodedAddr {
                    vault: 0,
                    bank: (id % 16) as u16,
                    row: (id % 64) as u32,
                    col: (id % 16) as u16,
                    offset: 0,
                };
                let req = MemRequest {
                    id: RequestId(id),
                    addr: m.encode(&d),
                    kind: AccessKind::Read,
                    core: CoreId(0),
                    created_at: now,
                };
                let _ = v.try_enqueue(req, d, now);
            }
            v.tick(now, &mut out, &mut Profiler::off());
            out.clear();
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let len = RunLength {
        warmup_instructions: 1_000,
        instructions: 4_000,
        max_cycles: 500_000,
    };
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("mini_run_hm1_campsmod", |b| {
        b.iter(|| {
            let mix = Mix::by_id("HM1").unwrap();
            black_box(run_mix(&cfg, mix, SchemeKind::CampsMod, &len, 42).expect("bench run"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_addr_decode,
    bench_prefetch_buffer,
    bench_bank_fsm,
    bench_conflict_table,
    bench_vault_tick,
    bench_end_to_end
);
criterion_main!(benches);
