//! Figure 9 — "Average HMC Energy Consumption normalized to BASE" (lower
//! is better), for BASE, MMD, and CAMPS-MOD.
//!
//! Paper: MMD and CAMPS-MOD consume 6.0 % and 8.5 % less energy than BASE
//! respectively, "mainly due to fewer activation and precharge
//! operations" (and, in BASE's case, the wasted whole-row transfers).
//!
//! Run: `cargo bench -p camps-bench --bench fig9_energy`

use camps_bench::{figure_results, write_csv, TableWriter};
use camps_prefetch::SchemeKind;
use camps_stats::geomean;
use camps_workloads::ALL_MIXES;

fn main() {
    let results = figure_results();
    let schemes = [SchemeKind::Base, SchemeKind::Mmd, SchemeKind::CampsMod];
    let headers: Vec<&str> = schemes.iter().map(|s| s.name()).collect();

    let mut t = TableWriter::new(&headers, 3);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for mix in &ALL_MIXES {
        let base = results
            .iter()
            .find(|r| r.mix_id == mix.id && r.scheme == SchemeKind::Base)
            .map(|r| r.energy_nj);
        let row: Vec<Option<f64>> = schemes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let v = results
                    .iter()
                    .find(|r| r.mix_id == mix.id && r.scheme == s)
                    .zip(base)
                    .map(|(r, b)| r.energy_nj / b);
                if let Some(v) = v {
                    per_scheme[i].push(v);
                }
                v
            })
            .collect();
        t.row(mix.id, row);
    }
    t.row("AVG", per_scheme.iter().map(|v| geomean(v)).collect());

    println!("Figure 9: HMC energy normalized to BASE (lower is better)\n");
    println!("{}", t.render());
    let avg = |i: usize| geomean(&per_scheme[i]).unwrap_or(0.0);
    println!(
        "MMD vs BASE      : {:+.1}%  (paper: -6.0%)",
        (avg(1) - 1.0) * 100.0
    );
    println!(
        "CAMPS-MOD vs BASE: {:+.1}%  (paper: -8.5%)",
        (avg(2) - 1.0) * 100.0
    );
    write_csv("fig9_energy", &t.csv_header(), &t.csv_rows());
}
