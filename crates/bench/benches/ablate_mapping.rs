//! Ablation: physical address mapping. `RoRaBaVaCo` (Table I) interleaves
//! consecutive rows across vaults; the alternatives trade vault-level
//! parallelism against bank-level conflict behavior, shifting how much
//! work the prefetcher has to clean up.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_mapping`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::addr::MappingScheme;
use camps_types::config::SystemConfig;

fn main() {
    let mut variants = Vec::new();
    for mapping in MappingScheme::ALL {
        for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.hmc.mapping = mapping;
            variants.push((format!("{mapping} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: address mapping (geomean IPC)\n");
    println!("{:>26}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>26}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_mapping", "variant,HM1,LM1,MX1", &csv);
}
